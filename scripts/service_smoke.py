#!/usr/bin/env python
"""CI smoke test for the simulation service (`repro serve`).

Exercises the full multi-client choreography against a real server
subprocess (the CLI path, not the in-process test harness):

1. start ``python -m repro serve`` on a throwaway store root with 2
   workers and an ephemeral port (clients discover it via
   ``server.json``);
2. submit a quarter-scale sweep from **4 concurrent clients, 2 of them
   duplicates** — asserts both duplicates resolve as dedupe followers
   (hit rate ≥ 0.5) and every job finishes DONE;
3. attach a subscriber to a leader *while it runs* and assert it
   streams live records through to ``run_end``;
4. submit a high-priority job while both worker slots are busy —
   asserts **one full preemption round-trip** (victim suspends, the
   high-priority job finishes first, the victim resumes and completes);
5. ``POST /shutdown`` and assert the server exits cleanly (code 0,
   address manifest removed).

Exits non-zero on any violated invariant; prints a one-line JSON
summary on success.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.service.client import ServiceClient  # noqa: E402


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    root = tempfile.mkdtemp(prefix="repro-service-smoke-")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.pop("REPRO_NO_CACHE", None)
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", root,
         "--workers", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        client = ServiceClient(root=root, timeout_s=30)

        # -- 4 concurrent clients, 2 duplicates ---------------------------
        sweep = {"kind": "sweep", "workload": "oltp", "config": "P2",
                 "scale": 0.25, "field": "l2.size_bytes",
                 "values": ["512K", "1M"], "preempt_every_us": 5.0}
        specs = [sweep, dict(sweep, config="P4"),
                 sweep, dict(sweep, config="P4")]  # 2 distinct + 2 dupes
        submitted: list = [None] * len(specs)

        def submit(i: int) -> None:
            # each client owns its own connection (per-request HTTP)
            submitted[i] = ServiceClient(root=root).submit(specs[i])

        clients = [threading.Thread(target=submit, args=(i,))
                   for i in range(len(specs))]
        for t in clients:
            t.start()
        for t in clients:
            t.join()
        if any(doc is None for doc in submitted):
            fail("a concurrent submission failed")
        ids = [doc["job_id"] for doc in submitted]
        by_key: dict = {}
        for doc in submitted:
            by_key.setdefault(doc["dedupe_key"], []).append(doc)
        if sorted(len(docs) for docs in by_key.values()) != [2, 2]:
            fail(f"expected 2+2 submissions per spec, got {by_key}")

        # -- live subscriber on a leader ----------------------------------
        leaders = [docs[0] for docs in by_key.values()]
        deadline = time.monotonic() + 60
        watched = None
        while time.monotonic() < deadline and watched is None:
            for doc in leaders:
                if client.job(doc["job_id"])["state"] == "RUNNING":
                    watched = doc["job_id"]
                    break
            time.sleep(0.05)
        if watched is None:
            fail("no leader ever reached RUNNING")
        live_kinds: list = []

        def subscribe() -> None:
            for record in ServiceClient(root=root).attach(watched):
                live_kinds.append(record["kind"])

        subscriber = threading.Thread(target=subscribe)
        subscriber.start()

        # -- preemption round-trip ----------------------------------------
        # both slots hold priority-0 sweeps; a priority-10 arrival must
        # preempt one at its next point boundary
        high = client.submit({"kind": "run", "workload": "migratory",
                              "config": "P8", "scale": 1.0,
                              "tag": "smoke-high"}, priority=10)
        final_high = client.wait(high["job_id"], timeout_s=120)
        if final_high["state"] != "DONE":
            fail(f"high-priority job finished {final_high['state']}")

        finals = [client.wait(i, timeout_s=300) for i in ids]
        bad = [f["job_id"] for f in finals if f["state"] != "DONE"]
        if bad:
            fail(f"jobs did not finish DONE: {bad}")
        if final_high["finished_wall"] > max(f["finished_wall"]
                                             for f in finals):
            fail("high-priority job finished after the low-priority pool")

        subscriber.join(timeout=60)
        if subscriber.is_alive():
            fail("subscriber never saw run_end")
        if live_kinds[-1] != "run_end" or "sweep_point" not in live_kinds:
            fail(f"subscriber stream incomplete: {live_kinds}")

        stats = client.stats()
        counters = stats["counters"]
        # hit rate over the 4 sweep clients: the 2 duplicates must have
        # resolved as followers, not as independent simulations
        dupes = [f for f in finals if f.get("dedup_of")]
        hit_rate = len(dupes) / len(finals)
        if hit_rate < 0.5:
            fail(f"dedupe hit rate {hit_rate:.2f} < 0.5 "
                 f"(finals: {[(f['job_id'], f.get('dedup_of')) for f in finals]})")
        if counters["dedupe_hits"] < len(dupes):
            fail(f"server counters disagree with manifests: {counters}")
        if counters["preemptions"] < 1 or counters["resumes"] < 1:
            fail(f"no preemption round-trip observed: {counters}")
        preempted = [f for f in finals if f["preemptions"] >= 1]
        if not preempted:
            fail("no sweep job recorded a preemption")
        kinds = [r["kind"]
                 for r in client.attach(preempted[0]["job_id"])]
        if "job_preempted" not in kinds or "job_resumed" not in kinds:
            fail(f"victim telemetry missing round-trip records: {kinds}")

        # -- clean shutdown -----------------------------------------------
        client.shutdown()
        try:
            code = server.wait(timeout=90)
        except subprocess.TimeoutExpired:
            server.kill()
            fail("server did not exit within 90s of /shutdown")
        if code != 0:
            fail(f"server exited {code}")
        manifest = os.path.join(root, "service", "server.json")
        if os.path.exists(manifest):
            fail("server.json still present after clean shutdown")

        print(json.dumps({
            "ok": True,
            "jobs": len(ids) + 1,
            "dedupe_hit_rate": round(hit_rate, 3),
            "preemptions": counters["preemptions"],
            "resumes": counters["resumes"],
            "live_records": len(live_kinds),
        }))
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
        out = server.stdout.read() if server.stdout else ""
        if out.strip():
            print("-- server log --\n" + out, file=sys.stderr)
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
