"""Calibration helper: run OLTP across configs and print paper-target ratios."""
import sys
import time

from repro.core import PiranhaSystem, preset
from repro.workloads.oltp import OltpWorkload, OltpParams


def run(cfg_name, params, cpus=None):
    cfg = preset(cfg_name)
    if cpus:
        cfg = cfg.with_cpus(cpus)
    wl = OltpWorkload(params, cpus_per_node=cfg.cpus, num_nodes=1)
    sysm = PiranhaSystem(cfg, num_nodes=1)
    sysm.attach_workload(wl)
    t0 = time.time()
    sysm.run_to_completion()
    s = sysm.execution_summary()
    mb = sysm.miss_breakdown()
    tot = sum(mb.values()) or 1
    time_per_txn = max(c.total_ps for c in sysm.all_cpus()) / params.transactions
    tps = cfg.cpus * 1e12 / time_per_txn
    cpu0 = next(iter(sysm.all_cpus()))
    print(f"{cfg_name:4s}x{cfg.cpus}: t/txn={time_per_txn/1000:7.1f}ns "
          f"busy={s['busy_ps']/s['total_ps']:.2f} l2={s['l2_stall_ps']/s['total_ps']:.2f} "
          f"mem={s['mem_stall_ps']/s['total_ps']:.2f} "
          f"miss[hit={mb['l2_hit']/tot:.2f} fwd={mb['l2_fwd']/tot:.2f} mem={mb['l2_miss']/tot:.2f}] "
          f"I/M={cpu0.instructions/max(1,cpu0.misses):.1f} wall={time.time()-t0:.0f}s")
    return tps


def main():
    kwargs = {}
    for arg in sys.argv[1:]:
        k, v = arg.split("=")
        kwargs[k] = type(getattr(OltpParams(), k))(eval(v))
    params = OltpParams(**kwargs)
    results = {}
    for name in ("P1", "P2", "P4", "P8", "OOO", "INO", "P8F"):
        results[name] = run(name, params)
    r = results
    print(f"\nOOO/P1 = {r['OOO']/r['P1']:.2f} (2.3)   INO/P1 = {r['INO']/r['P1']:.2f} (1.6)")
    print(f"P8/P1  = {r['P8']/r['P1']:.2f} (~7)    P8/OOO = {r['P8']/r['OOO']:.2f} (2.9)")
    print(f"P8F/OOO= {r['P8F']/r['OOO']:.2f} (5.0)  P2/P1={r['P2']/r['P1']:.2f} P4/P1={r['P4']/r['P1']:.2f}")


if __name__ == "__main__":
    main()
