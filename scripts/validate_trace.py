#!/usr/bin/env python
"""Validate an emitted span-trace document (CI trace-smoke gate).

Checks three things about a ``repro run --trace-spans --trace-out
trace.json`` file:

1. **Schema**: the document passes
   :func:`repro.observe.validate_trace` (versioned schema id, required
   blocks, and the causal invariants — within each transaction the
   child spans are contiguous, cover exactly [t0, t1], and their
   durations sum to ``latency_ps``).
2. **Coverage**: enough transactions were kept, every retained
   transaction carries at least the issue->fill pair of spans, and the
   expected transaction classes appear.
3. **Perfetto-loadability**: the ``traceEvents`` array is well-formed
   Chrome trace-event JSON — metadata rows name every track, every
   complete ("X") event has non-negative ``ts``/``dur``, and each
   span event lands on a declared track tid.

Usage::

    PYTHONPATH=src python scripts/validate_trace.py trace.json
    PYTHONPATH=src python scripts/validate_trace.py trace.json \
        --min-txns 16 --expect-class l2_hit --expect-class local_mem

Exits non-zero (with a list of problems) on any failure.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def check(doc: dict, min_txns: int, expect_classes: list) -> list:
    from repro.observe import validate_trace
    from repro.observe.spans import TRACKS

    problems = list(validate_trace(doc))

    txns = doc.get("txns") or []
    if len(txns) < min_txns:
        problems.append(
            f"only {len(txns)} transactions kept (need >= {min_txns}); "
            f"raise --trace-spans or the workload size")
    seen_classes = {t.get("class") for t in txns if isinstance(t, dict)}
    for cls in expect_classes:
        if cls not in seen_classes:
            problems.append(
                f"expected transaction class {cls!r} absent from the "
                f"trace (saw: {sorted(c for c in seen_classes if c)})")

    events = doc.get("traceEvents") or []
    tids = {i for i, _ in enumerate(TRACKS)}
    named = set()
    n_x = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            continue
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "thread_name":
            named.add(ev.get("args", {}).get("name"))
        elif ph == "X":
            n_x += 1
            if ev.get("ts", -1) < 0 or ev.get("dur", -1) < 0:
                problems.append(
                    f"traceEvents[{i}]: negative ts/dur "
                    f"({ev.get('ts')}, {ev.get('dur')})")
            if ev.get("tid") not in tids:
                problems.append(
                    f"traceEvents[{i}]: tid {ev.get('tid')!r} names no "
                    f"declared track")
    missing = set(TRACKS) - named
    if events and missing:
        problems.append(f"track rows never named in metadata: "
                        f"{sorted(missing)}")
    n_spans = sum(len(t.get("spans") or []) for t in txns
                  if isinstance(t, dict))
    if events and n_x != len(txns) + n_spans:
        problems.append(
            f"traceEvents carries {n_x} 'X' events, expected "
            f"{len(txns)} roots + {n_spans} spans")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="trace JSON file to validate")
    parser.add_argument("--min-txns", type=int, default=16,
                        help="minimum kept transactions (default 16)")
    parser.add_argument("--expect-class", action="append", default=[],
                        metavar="CLASS",
                        help="require this transaction class to appear "
                             "(repeatable)")
    args = parser.parse_args(argv)

    try:
        with open(args.path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2

    problems = check(doc, args.min_txns, args.expect_class)
    if problems:
        print(f"{args.path}: {len(problems)} problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1

    txns = doc.get("txns") or []
    classes = sorted({t["class"] for t in txns})
    print(f"{args.path}: OK — schema {doc['schema']}, "
          f"{len(txns)} transactions ({', '.join(classes)}), "
          f"{len(doc.get('traceEvents') or [])} trace events "
          f"across {doc.get('num_nodes')} node(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
