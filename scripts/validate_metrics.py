#!/usr/bin/env python
"""Validate an emitted metrics document (CI metrics-smoke gate).

Checks three things about a ``repro run --metrics out.json`` file:

1. **Schema**: the document passes
   :func:`repro.harness.metrics.validate_metrics` (versioned schema id,
   required blocks, histogram mass = class count, intervals well-formed).
2. **Coverage**: the probe collector completed a sensible number of
   probes and the time series has at least two intervals.
3. **Cross-check**: the probe-measured mean L2-hit latency agrees with
   the counter-derived mean (CPU stall accounting) within a tolerance —
   two fully independent measurement paths over the same simulation.

Usage::

    PYTHONPATH=src python scripts/validate_metrics.py out.json
    PYTHONPATH=src python scripts/validate_metrics.py out.json \
        --tolerance 0.15 --min-intervals 2

Exits non-zero (with a list of problems) on any failure.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def check(doc: dict, tolerance: float, min_intervals: int,
          min_probes: int) -> list:
    from repro.harness.metrics import validate_metrics

    problems = list(validate_metrics(doc))

    probes = doc.get("probes") or {}
    if probes.get("completed", 0) < min_probes:
        problems.append(
            f"only {probes.get('completed', 0)} probes completed "
            f"(need >= {min_probes}); raise the workload size or lower "
            f"--probe-rate")
    ts = doc.get("timeseries") or {}
    if ts.get("count", 0) < min_intervals:
        problems.append(
            f"time series has {ts.get('count', 0)} intervals "
            f"(need >= {min_intervals}); lower --sample-interval")

    # Probe-vs-counter latency cross-check on the L2-hit class: both
    # sides measure the same population (issue -> fill), one via probe
    # timestamps, the other via CPU stall accounting.
    cls = (probes.get("classes") or {}).get("l2_hit") or {}
    counter = (doc.get("stall_latency") or {}).get("l2_hit") or {}
    if cls.get("count") and counter.get("count"):
        probe_ns = cls["mean_ns"]
        counter_ns = counter["mean_ns"]
        if counter_ns > 0:
            err = abs(probe_ns - counter_ns) / counter_ns
            if err > tolerance:
                problems.append(
                    f"L2-hit latency cross-check failed: probe mean "
                    f"{probe_ns:.1f} ns vs counter-derived "
                    f"{counter_ns:.1f} ns ({err:.0%} > {tolerance:.0%})")
    elif not cls.get("count"):
        problems.append("no completed l2_hit probes to cross-check")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="metrics JSON file to validate")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="relative tolerance for the probe-vs-counter "
                             "L2-hit latency check (default 0.15; sampled "
                             "probes see a subset of misses, so a sampling "
                             "margin is expected at high rates)")
    parser.add_argument("--min-intervals", type=int, default=2,
                        help="minimum time-series intervals (default 2)")
    parser.add_argument("--min-probes", type=int, default=20,
                        help="minimum completed probes (default 20)")
    args = parser.parse_args(argv)

    try:
        with open(args.path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2

    problems = check(doc, args.tolerance, args.min_intervals,
                     args.min_probes)
    if problems:
        print(f"{args.path}: {len(problems)} problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1

    probes = doc.get("probes") or {}
    ts = doc.get("timeseries") or {}
    print(f"{args.path}: OK — schema {doc['schema']}, "
          f"{probes.get('completed', 0)} probes across "
          f"{sum(1 for b in (probes.get('classes') or {}).values() if b.get('count'))} classes, "
          f"{ts.get('count', 0)} time-series intervals")
    return 0


if __name__ == "__main__":
    sys.exit(main())
