#!/usr/bin/env python
"""Wall-clock benchmark for the simulation harness.

Times a fixed OLTP/DSS workload mix through every performance layer and
appends a record to ``BENCH_harness.json`` so the perf trajectory is
tracked PR over PR:

* **engine**: pure event-engine throughput (trivial self-rescheduling
  callbacks) — isolates the ``Simulator.run``/``schedule`` fast path.
* **single_sim**: one P8 OLTP and one P8 DSS simulation, uncached —
  the end-to-end hot path (engine + caches + protocol + workload).
* **sweep**: a multi-point L2-size sweep run three ways — serial and
  uncached, through the parallel layer with a cold disk cache, and
  again with a warm disk cache.  ``speedup_warm`` is the headline
  "re-runs are near-instant" number; ``speedup_parallel`` only exceeds
  1 on multi-core hosts (the record notes the core count).

Usage::

    PYTHONPATH=src python scripts/bench_wallclock.py
    PYTHONPATH=src python scripts/bench_wallclock.py --scale 0.25 --jobs 4
    PYTHONPATH=src python scripts/bench_wallclock.py --quick
    PYTHONPATH=src python scripts/bench_wallclock.py --observability

``--observability`` times the same P8 OLTP run with latency probes and
the interval sampler off/on and appends the overhead comparison to
``BENCH_observability.json`` instead.

``--checkpoint`` times a warm-up-heavy 8-point sweep three ways —
baseline, cold-with-snapshot-capture, and restored-from-warm-checkpoint
— and appends the amortised warm-up speedup to
``BENCH_checkpoint.json``.

``--fastforward`` times one P8 OLTP point detailed vs sampled (cold and
warm-start), asserts the two sampled payloads are bit-identical, and
appends effective ev/s, speedup and measured per-class error to
``BENCH_fastforward.json``.

``--isa`` runs the full ISA kernel cross-validation (functional
reference vs the timed machine) at the requested scale, asserts every
kernel's final memory is bit-exact and every tolerance check passes,
and appends wall-clock plus instruction-throughput numbers for both
execution models to ``BENCH_isa.json``.

``--service`` benches the simulation service: a burst of duplicate-heavy
submissions through an in-process server (jobs/s + dedupe hit rate),
plus the preempt-suspend-resume round-trip overhead vs an uninterrupted
run (asserting the two artifacts are byte-identical).  Appends to
``BENCH_service.json``.

Determinism makes the measurements comparable across runs: the simulated
results are bit-for-bit identical in every mode, only wall-clock varies.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from dataclasses import replace

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def bench_engine(events: int = 400_000, chains: int = 16,
                 repeats: int = 3) -> float:
    """Events/second through the bare engine (best of *repeats*)."""
    from repro.sim import Simulator

    best = 0.0
    for _ in range(repeats):
        sim = Simulator()
        per = events // chains

        def chain(left: int, period: int) -> None:
            if left:
                sim.schedule(period, chain, left - 1, period)

        for i in range(chains):
            sim.schedule(i + 1, chain, per, 7 + i)
        t0 = time.perf_counter()
        sim.run()
        rate = sim.events_fired / (time.perf_counter() - t0)
        best = max(best, rate)
    return best


def bench_single_sims(scale: float) -> dict:
    """One uncached P8 OLTP + P8 DSS simulation (the fixed mix)."""
    from repro.core import PiranhaSystem, preset
    from repro.workloads import DssParams, DssWorkload, OltpParams, OltpWorkload

    op = OltpParams()
    op = replace(op, transactions=max(20, int(op.transactions * scale)),
                 warmup_transactions=max(40, int(op.warmup_transactions * scale)))
    dp = DssParams()
    dp = replace(dp, rows=max(60, int(dp.rows * scale)))

    out = {}
    for key, workload in (
        ("oltp", lambda: OltpWorkload(op, cpus_per_node=8)),
        ("dss", lambda: DssWorkload(dp, cpus_per_node=8)),
    ):
        system = PiranhaSystem(preset("P8"), num_nodes=1)
        system.attach_workload(workload())
        t0 = time.perf_counter()
        system.run_to_completion()
        wall = time.perf_counter() - t0
        out[key] = {
            "wall_s": round(wall, 4),
            "events": system.sim.events_fired,
            "events_per_s": round(system.sim.events_fired / wall),
        }
    out["total_s"] = round(out["oltp"]["wall_s"] + out["dss"]["wall_s"], 4)
    return out


def bench_sweep(scale: float, jobs: int, points: int) -> dict:
    """The same multi-point sweep: serial-uncached, parallel-cold, warm."""
    from repro.harness import OltpFactory, clear_cache
    from repro.harness.sweep import sweep_field
    from repro.workloads import OltpParams

    params = OltpParams(
        transactions=max(10, int(40 * scale)),
        warmup_transactions=max(15, int(60 * scale)),
    )
    factory = OltpFactory(params)
    values = [(256 + 256 * i) << 10 for i in range(points)]

    def timed(jobs_n: int) -> "tuple[float, list]":
        clear_cache()
        t0 = time.perf_counter()
        records = sweep_field("P2", factory, "l2.size_bytes", values,
                              jobs=jobs_n)
        return time.perf_counter() - t0, records

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    old_cache_dir = os.environ.get("REPRO_CACHE_DIR")
    old_no_cache = os.environ.get("REPRO_NO_CACHE")
    try:
        os.environ["REPRO_CACHE_DIR"] = cache_dir

        os.environ["REPRO_NO_CACHE"] = "1"
        serial_s, serial_records = timed(1)

        del os.environ["REPRO_NO_CACHE"]
        parallel_s, parallel_records = timed(jobs)
        warm_s, warm_records = timed(jobs)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
        if old_cache_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old_cache_dir
        if old_no_cache is not None:
            os.environ["REPRO_NO_CACHE"] = old_no_cache

    assert parallel_records == serial_records, \
        "parallel sweep diverged from serial records"
    assert warm_records == serial_records, \
        "cache-served sweep diverged from serial records"
    return {
        "points": points,
        "jobs": jobs,
        "serial_uncached_s": round(serial_s, 4),
        "parallel_cold_s": round(parallel_s, 4),
        "warm_cached_s": round(warm_s, 4),
        "speedup_parallel": round(serial_s / parallel_s, 3),
        "speedup_warm": round(serial_s / warm_s, 1),
        "records_identical": True,
    }


def bench_observability(scale: float, probe_rate: int = 64,
                        sample_us: float = 50.0) -> dict:
    """Wall-clock cost of the observability layer on one P8 OLTP run.

    Five passes over the identical workload: instrumentation off (the
    baseline the ``<= 2%`` disabled-path budget is judged against),
    probes+sampler at the default CI settings, probes at rate 1 (every
    miss tagged — the worst case), the causal span tracer on top of the
    default probes, and the host self-profiler at its default 1/16
    sampling rate (the ``<= 5%`` enabled-path budget)."""
    from repro.core import PiranhaSystem, preset
    from repro.workloads import OltpParams, OltpWorkload

    op = OltpParams()
    op = replace(op, transactions=max(20, int(op.transactions * scale)),
                 warmup_transactions=max(40, int(op.warmup_transactions * scale)))

    def run(rate: int, interval_us: float, spans: int = 0,
            profile: int = 0) -> dict:
        system = PiranhaSystem(preset("P8"), num_nodes=1)
        system.attach_workload(OltpWorkload(op, cpus_per_node=8))
        if rate:
            system.enable_probes(rate)
        if spans:
            system.enable_span_trace(spans)
        if profile:
            from repro.observe import HostProfiler

            system.sim.profiler = HostProfiler(profile)
        if interval_us:
            system.enable_sampler(int(interval_us * 1e6))
        t0 = time.perf_counter()
        system.run_to_completion()
        wall = time.perf_counter() - t0
        rec = {"wall_s": round(wall, 4),
               "events": system.sim.events_fired}
        if system.probes is not None:
            rec["probes_completed"] = system.probes.completed
        if system.spans is not None:
            rec["spans_kept"] = len(system.spans.txns)
        if system.sim.profiler is not None:
            rec["profile_sampled"] = system.sim.profiler.events_sampled
        return rec

    def pct(rec: dict) -> float:
        return round((rec["wall_s"] / base["wall_s"] - 1) * 100, 2)

    base = run(0, 0)
    probed = run(probe_rate, sample_us)
    full = run(1, sample_us)
    traced = run(probe_rate, sample_us, spans=256)
    profiled = run(0, 0, profile=16)
    return {
        "probe_rate": probe_rate,
        "sample_interval_us": sample_us,
        "disabled": base,
        "probed": probed,
        "probe_every_miss": full,
        "span_traced": traced,
        "host_profiled": profiled,
        "overhead_probed_pct": pct(probed),
        "overhead_every_miss_pct": pct(full),
        "overhead_traced_pct": pct(traced),
        "overhead_profiled_pct": pct(profiled),
    }


def bench_checkpoint(points: int = 8, jobs: int = 1) -> dict:
    """Amortised warm-up speedup from measurement-boundary snapshots.

    A warm-up-heavy OLTP mix (120 warm-up vs 20 measured transactions)
    swept over *points* L2 sizes, three ways over identical records:

    * **baseline**: every point simulates warm-up + measurement;
    * **cold capture**: ``warmup=True`` with an empty warm store — same
      work plus the snapshot cost (captures the overhead);
    * **warm restore**: ``warmup=True`` again with the result caches
      cleared but the snapshots kept — every point restores its warm
      state and simulates only the measurement phase.

    ``speedup_restore`` (baseline / warm-restore) is the headline
    amortisation number for ``--resume`` and repeated measurement fans.
    """
    from repro.harness import OltpFactory, clear_cache
    from repro.harness.runner import DISK_CACHE
    from repro.harness.sweep import sweep_field
    from repro.workloads import OltpParams

    params = OltpParams(transactions=20, warmup_transactions=120)
    factory = OltpFactory(params)
    values = [(256 + 128 * i) << 10 for i in range(points)]

    def timed(warmup: bool) -> "tuple[float, list]":
        # clear the result caches (memo + disk json) every pass so each
        # pass actually simulates; warm .ckpt snapshots survive
        clear_cache()
        DISK_CACHE.clear()
        t0 = time.perf_counter()
        records = sweep_field("P2", factory, "l2.size_bytes", values,
                              jobs=jobs, warmup=warmup)
        return time.perf_counter() - t0, records

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-ckpt-")
    old_cache_dir = os.environ.get("REPRO_CACHE_DIR")
    old_no_cache = os.environ.pop("REPRO_NO_CACHE", None)
    try:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        baseline_s, baseline_records = timed(False)
        cold_s, cold_records = timed(True)
        warm_s, warm_records = timed(True)
        from repro.checkpoint import WARM_STORE

        store = WARM_STORE.info()
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
        if old_cache_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old_cache_dir
        if old_no_cache is not None:
            os.environ["REPRO_NO_CACHE"] = old_no_cache

    assert cold_records == baseline_records, \
        "cold-capture sweep diverged from baseline records"
    assert warm_records == baseline_records, \
        "warm-restore sweep diverged from baseline records"
    return {
        "points": points,
        "jobs": jobs,
        "warmup_transactions": params.warmup_transactions,
        "measured_transactions": params.transactions,
        "baseline_s": round(baseline_s, 4),
        "cold_capture_s": round(cold_s, 4),
        "warm_restore_s": round(warm_s, 4),
        "capture_overhead_pct": round((cold_s / baseline_s - 1) * 100, 2),
        "speedup_restore": round(baseline_s / warm_s, 2),
        "snapshots": store["entries"],
        "snapshot_bytes": store["bytes"],
        "records_identical": True,
    }


def bench_fastforward(scale: float) -> dict:
    """Sampled-simulation speedup and measured error vs full detailed.

    Three passes over the identical P8 OLTP point:

    * **detailed**: the full event-driven run — the accuracy reference
      and the event count the sampled runs are credited against;
    * **sampled cold**: ``mode="sampled", warmup=True`` with an empty
      warm store — functional warm-up + measurement windows + boundary
      snapshot capture;
    * **sampled warm-start**: the same call again — restores the warm
      boundary snapshot and pays only windows + fast-forward, which is
      where the headline sampled speedup lives.

    The cold and warm-start sampled payloads must be bit-identical
    (restoring the snapshot is not allowed to change anything
    measurable); their error is reported against the detailed run per
    metric class.  ``effective_events_per_s`` divides the *detailed*
    event count by the sampled wall — the rate at which sampled mode
    retires work the detailed model would have had to simulate.
    """
    from repro.core import preset
    from repro.harness import OltpFactory
    from repro.harness.runner import (SAMPLED_PERIOD, SAMPLED_WINDOW,
                                      assemble_result, build_system, simulate)
    from repro.workloads import OltpParams

    op = OltpParams()
    op = replace(op, transactions=max(20, int(op.transactions * scale)),
                 warmup_transactions=max(40, int(op.warmup_transactions * scale)))
    factory = OltpFactory(op)
    config = preset("P8")

    system, workload = build_system(config, factory, 1)
    t0 = time.perf_counter()
    system.run_to_completion()
    detailed_s = time.perf_counter() - t0
    detailed_events = system.sim.events_fired
    detailed = assemble_result(system, workload, config, 1, "transactions",
                               0, 0, detailed_s)

    classes = ("busy_frac", "l2_frac", "mem_frac", "miss_hit_frac",
               "miss_fwd_frac", "miss_mem_frac")

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-ff-")
    old_cache_dir = os.environ.get("REPRO_CACHE_DIR")
    old_no_cache = os.environ.pop("REPRO_NO_CACHE", None)
    try:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        t0 = time.perf_counter()
        cold = simulate(config, factory, mode="sampled", warmup=True)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = simulate(config, factory, mode="sampled", warmup=True)
        warm_s = time.perf_counter() - t0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
        if old_cache_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old_cache_dir
        if old_no_cache is not None:
            os.environ["REPRO_NO_CACHE"] = old_no_cache

    assert warm.extras["sampling"]["skip_warm"], \
        "warm-start sampled run did not restore from the warm store"
    assert cold.payload_tuple() == warm.payload_tuple(), \
        "warm-start sampled payload diverged from the cold run"

    err = {c: round(abs(getattr(cold, c) - getattr(detailed, c)), 4)
           for c in classes}
    err["time_per_unit_rel"] = round(
        abs(cold.time_per_unit_ns / detailed.time_per_unit_ns - 1), 4)
    sampling = cold.extras["sampling"]
    return {
        "scale": scale,
        "window": SAMPLED_WINDOW,
        "period": SAMPLED_PERIOD,
        "detailed": {
            "wall_s": round(detailed_s, 4),
            "events": detailed_events,
            "events_per_s": round(detailed_events / detailed_s),
        },
        "sampled_cold": {
            "wall_s": round(cold_s, 4),
            "speedup": round(detailed_s / cold_s, 2),
            "effective_events_per_s": round(detailed_events / cold_s),
            "windows": sampling["windows"],
            "measured_items": sampling["measured_items"],
            "ff_items": sampling["ff_items"],
        },
        "sampled_warm_start": {
            "wall_s": round(warm_s, 4),
            "speedup": round(detailed_s / warm_s, 2),
            "effective_events_per_s": round(detailed_events / warm_s),
        },
        "error": err,
        "max_class_error": max(err[c] for c in classes),
        "payloads_identical": True,
    }


def bench_isa(scale: float) -> dict:
    """Cross-validate every kernel and time both execution models.

    One ``run_suite`` pass (uncached) over the five kernels on P8 —
    which must come back all-green: bit-exact memory and every
    tolerance check passing — plus a separate pure-functional timing
    pass, so the record tracks the speed of the architectural
    reference and the timed machine separately.
    """
    from repro.isa.kernels import (KERNEL_NAMES, run_functional,
                                   scaled_params)
    from repro.isa.validate import fit_params, run_suite, validate_report

    old_no_cache = os.environ.get("REPRO_NO_CACHE")
    os.environ["REPRO_NO_CACHE"] = "1"
    try:
        t0 = time.perf_counter()
        doc = run_suite(config="P8", nodes=1, scale=scale, seeds=(0, 1, 2))
        suite_s = time.perf_counter() - t0
    finally:
        if old_no_cache is None:
            os.environ.pop("REPRO_NO_CACHE", None)
        else:
            os.environ["REPRO_NO_CACHE"] = old_no_cache

    assert doc["ok"], (
        "ISA cross-validation failed: "
        + ", ".join(f"{k}:{[c['name'] for c in r['checks'] if not c['ok']]}"
                    for k, r in doc["kernels"].items() if not r["ok"]))
    assert validate_report(doc) == [], "repro-xval/1 report invalid"

    t0 = time.perf_counter()
    functional_retired = 0
    for kernel in KERNEL_NAMES:
        params = fit_params(kernel, 8, scaled_params(kernel, scale))
        functional_retired += sum(run_functional(kernel, 8, params).retired)
    functional_s = time.perf_counter() - t0

    timed_instructions = sum(
        r["timed"]["counters"]["instructions"]
        for r in doc["kernels"].values())
    per_kernel = {
        name: {
            "memory_match": rep["memory_match"],
            "checks": len(rep["checks"]),
            "instructions": rep["timed"]["counters"]["instructions"],
            "membars": rep["timed"]["membars"],
            "wh64_issued": rep["timed"]["wh64_issued"],
        }
        for name, rep in doc["kernels"].items()
    }
    return {
        "scale": scale,
        "kernels": per_kernel,
        "checks_passed": doc["summary"]["checks"]
        - doc["summary"]["checks_failed"],
        "checks_total": doc["summary"]["checks"],
        "all_green": True,
        "suite_wall_s": round(suite_s, 4),
        "timed_instructions": timed_instructions,
        "timed_instructions_per_s": round(timed_instructions / suite_s),
        "functional_wall_s": round(functional_s, 4),
        "functional_retired": functional_retired,
        "functional_instructions_per_s": round(
            functional_retired / max(functional_s, 1e-9)),
    }


def bench_service(scale: float, workers: int = 2) -> dict:
    """Service-layer numbers on a throwaway store root.

    * **burst**: 8 submissions (4 distinct run specs + 4 duplicates)
      through a live in-process server with *workers* subprocess
      workers — wall-clock to all-DONE, jobs/s, dedupe hit rate (0.5 by
      construction; the assertion is that the *server* sees it).
    * **preempt**: one preempt-suspend-resume round-trip measured
      in-process against the identical uninterrupted run, with the
      byte-identity of the two artifacts asserted (the overhead number
      is only meaningful if the work really is equivalent).
    """
    from repro.service.client import ServiceClient
    from repro.service.queue import JobQueue
    from repro.service.server import ServerThread
    from repro.service.worker import execute_job
    from repro.observe.telemetry import TelemetryStream

    root = tempfile.mkdtemp(prefix="repro-bench-service-")
    saved = {k: os.environ.get(k)
             for k in ("REPRO_CACHE_DIR", "REPRO_NO_CACHE")}
    os.environ["REPRO_CACHE_DIR"] = root
    os.environ.pop("REPRO_NO_CACHE", None)
    try:
        distinct = 4
        specs = [{"kind": "run", "workload": "migratory", "config": "P2",
                  "scale": scale, "tag": f"bench-{i}"}
                 for i in range(distinct)]
        submissions = specs + specs  # every spec submitted twice

        t0 = time.perf_counter()
        with ServerThread(root=root, workers=workers) as srv:
            client = ServiceClient(*srv.address)
            ids = [client.submit(spec)["job_id"] for spec in submissions]
            finals = [client.wait(i, timeout_s=600) for i in ids]
            burst_wall = time.perf_counter() - t0
            assert all(f["state"] == "DONE" for f in finals), \
                [f["state"] for f in finals]
            counters = client.stats()["counters"]
        hit_rate = counters["dedupe_hits"] / counters["submitted"]

        # preempt-resume overhead, in-process for tight timing: the
        # suspended and plain runs share nothing through the cache
        os.environ["REPRO_NO_CACHE"] = "1"
        queue = JobQueue(os.path.join(root, "service", "bench-jobs"))
        spec = {"kind": "run", "workload": "migratory", "config": "P2",
                "scale": scale, "preempt_every_us": 2.0}

        t0 = time.perf_counter()
        plain = queue.create(dict(spec, tag="plain"))
        with TelemetryStream(plain.telemetry_path) as stream:
            outcome, art_plain = execute_job(plain, stream)
        plain_s = time.perf_counter() - t0
        assert outcome == "done"

        preempted = queue.create(dict(spec, tag="preempted"))
        with open(preempted.preempt_path, "w", encoding="utf-8") as fh:
            json.dump({"by": "bench"}, fh)
        t0 = time.perf_counter()
        with TelemetryStream(preempted.telemetry_path) as stream:
            outcome, _ = execute_job(preempted, stream)
        suspend_s = time.perf_counter() - t0
        assert outcome == "suspended"
        t0 = time.perf_counter()
        with TelemetryStream(preempted.telemetry_path,
                             append=True) as stream:
            outcome, art_resumed = execute_job(preempted, stream)
        resume_s = time.perf_counter() - t0
        assert outcome == "done"

        a = dict(art_resumed["result"])
        b = dict(art_plain["result"])
        a.pop("sim_wall_s")
        b.pop("sim_wall_s")
        a.pop("extras")
        b.pop("extras")
        assert json.dumps(a, sort_keys=True) == \
            json.dumps(b, sort_keys=True), \
            "preempted+resumed run diverged from the uninterrupted run"

        overhead_s = (suspend_s + resume_s) - plain_s
        return {
            "workers": workers,
            "burst": {
                "submitted": len(submissions),
                "distinct": distinct,
                "wall_s": round(burst_wall, 3),
                "jobs_per_s": round(len(submissions) / burst_wall, 3),
                "dedupe_hits": counters["dedupe_hits"],
                "dedupe_hit_rate": round(hit_rate, 3),
            },
            "preempt": {
                "uninterrupted_s": round(plain_s, 3),
                "suspend_leg_s": round(suspend_s, 3),
                "resume_leg_s": round(resume_s, 3),
                "overhead_s": round(overhead_s, 3),
                "overhead_pct": round(100.0 * overhead_s / plain_s, 1),
                "artifacts_identical": True,
            },
        }
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        shutil.rmtree(root, ignore_errors=True)


def run_service(args) -> int:
    """``--service``: record job-server throughput and preemption cost."""
    print(f"simulation service (burst of 8, scale={args.scale})...")
    service = bench_service(args.scale,
                            workers=args.jobs if args.jobs else 2)
    burst, preempt = service["burst"], service["preempt"]
    print(f"  burst {burst['submitted']} jobs ({burst['distinct']} "
          f"distinct) in {burst['wall_s']}s = {burst['jobs_per_s']} "
          f"jobs/s, dedupe hit rate {burst['dedupe_hit_rate']}")
    print(f"  preempt round-trip: uninterrupted "
          f"{preempt['uninterrupted_s']}s vs suspend "
          f"{preempt['suspend_leg_s']}s + resume "
          f"{preempt['resume_leg_s']}s → overhead "
          f"{preempt['overhead_s']}s ({preempt['overhead_pct']:+.1f}%), "
          f"artifacts byte-identical")
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale": args.scale,
        "cores": os.cpu_count() or 1,
        "python": sys.version.split()[0],
        "service": service,
    }
    out = os.path.join(REPO_ROOT, "BENCH_service.json")
    history = {"records": []}
    if os.path.exists(out):
        try:
            with open(out, "r", encoding="utf-8") as f:
                history = json.load(f)
        except (OSError, ValueError):
            pass
    history.setdefault("records", []).append(record)
    with open(out, "w", encoding="utf-8") as f:
        json.dump(history, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"appended record to {out}")
    return 0


def run_isa(args) -> int:
    """``--isa``: record the kernel cross-validation trajectory."""
    print(f"ISA kernel cross-validation (P8, scale={args.scale})...")
    isa = bench_isa(args.scale)
    print(f"  {len(isa['kernels'])} kernels all green "
          f"({isa['checks_passed']}/{isa['checks_total']} checks), "
          f"suite {isa['suite_wall_s']}s "
          f"({isa['timed_instructions_per_s']:,} timed instr/s), "
          f"functional reference {isa['functional_wall_s']}s "
          f"({isa['functional_instructions_per_s']:,} instr/s)")
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale": args.scale,
        "cores": os.cpu_count() or 1,
        "python": sys.version.split()[0],
        "isa": isa,
    }
    out = os.path.join(REPO_ROOT, "BENCH_isa.json")
    history = {"records": []}
    if os.path.exists(out):
        try:
            with open(out, "r", encoding="utf-8") as f:
                history = json.load(f)
        except (OSError, ValueError):
            pass
    history.setdefault("records", []).append(record)
    with open(out, "w", encoding="utf-8") as f:
        json.dump(history, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"appended record to {out}")
    return 0


def run_fastforward(args) -> int:
    """``--fastforward``: record sampled-mode speedup/accuracy numbers."""
    print(f"sampled simulation (P8 OLTP, scale={args.scale})...")
    ff = bench_fastforward(args.scale)
    print(f"  detailed {ff['detailed']['wall_s']}s "
          f"({ff['detailed']['events_per_s']:,} ev/s), "
          f"sampled cold {ff['sampled_cold']['wall_s']}s "
          f"({ff['sampled_cold']['speedup']}x), "
          f"warm-start {ff['sampled_warm_start']['wall_s']}s "
          f"({ff['sampled_warm_start']['speedup']}x, "
          f"{ff['sampled_warm_start']['effective_events_per_s']:,} "
          f"effective ev/s)")
    print(f"  max class error {ff['max_class_error']:.4f}, "
          f"time/unit rel error {ff['error']['time_per_unit_rel']:.4f}")
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale": args.scale,
        "cores": os.cpu_count() or 1,
        "python": sys.version.split()[0],
        "fastforward": ff,
    }
    out = os.path.join(REPO_ROOT, "BENCH_fastforward.json")
    history = {"records": []}
    if os.path.exists(out):
        try:
            with open(out, "r", encoding="utf-8") as f:
                history = json.load(f)
        except (OSError, ValueError):
            pass
    history.setdefault("records", []).append(record)
    with open(out, "w", encoding="utf-8") as f:
        json.dump(history, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"appended record to {out}")
    return 0


def run_checkpoint(args) -> int:
    """``--checkpoint``: record the warm-restore amortisation numbers."""
    points = 3 if args.quick else 8
    jobs = args.jobs if args.jobs is not None else 1
    print(f"checkpoint amortisation ({points}-point L2 sweep, "
          f"warm-up-heavy OLTP, jobs={jobs})...")
    ckpt = bench_checkpoint(points=points, jobs=jobs)
    print(f"  baseline {ckpt['baseline_s']}s, "
          f"cold+capture {ckpt['cold_capture_s']}s "
          f"({ckpt['capture_overhead_pct']:+.1f}%), "
          f"warm-restore {ckpt['warm_restore_s']}s "
          f"(speedup {ckpt['speedup_restore']}x, "
          f"{ckpt['snapshots']} snapshots)")
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cores": os.cpu_count() or 1,
        "python": sys.version.split()[0],
        "checkpoint": ckpt,
    }
    out = os.path.join(REPO_ROOT, "BENCH_checkpoint.json")
    history = {"records": []}
    if os.path.exists(out):
        try:
            with open(out, "r", encoding="utf-8") as f:
                history = json.load(f)
        except (OSError, ValueError):
            pass
    history.setdefault("records", []).append(record)
    with open(out, "w", encoding="utf-8") as f:
        json.dump(history, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"appended record to {out}")
    return 0


def run_observability(args) -> int:
    """``--observability``: record the probe-overhead comparison."""
    print(f"observability overhead (P8 OLTP, scale={args.scale})...")
    obs = bench_observability(args.scale)
    print(f"  disabled {obs['disabled']['wall_s']}s, "
          f"probed(1/{obs['probe_rate']}) {obs['probed']['wall_s']}s "
          f"({obs['overhead_probed_pct']:+.1f}%), "
          f"every-miss {obs['probe_every_miss']['wall_s']}s "
          f"({obs['overhead_every_miss_pct']:+.1f}%), "
          f"spans {obs['span_traced']['wall_s']}s "
          f"({obs['overhead_traced_pct']:+.1f}%), "
          f"profiler(1/16) {obs['host_profiled']['wall_s']}s "
          f"({obs['overhead_profiled_pct']:+.1f}%)")
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale": args.scale,
        "cores": os.cpu_count() or 1,
        "python": sys.version.split()[0],
        "observability": obs,
    }
    out = os.path.join(REPO_ROOT, "BENCH_observability.json")
    history = {"records": []}
    if os.path.exists(out):
        try:
            with open(out, "r", encoding="utf-8") as f:
                history = json.load(f)
        except (OSError, ValueError):
            pass
    history.setdefault("records", []).append(record)
    with open(out, "w", encoding="utf-8") as f:
        json.dump(history, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"appended record to {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get("REPRO_SCALE", "0.25")),
                        help="workload scale for the timed mix")
    parser.add_argument("--jobs", type=int, default=None,
                        help="workers for the parallel sweep "
                             "(default: min(4, cores))")
    parser.add_argument("--points", type=int, default=6,
                        help="sweep points (default 6)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller engine bench + 3-point sweep")
    parser.add_argument("--out", default=os.path.join(REPO_ROOT,
                                                      "BENCH_harness.json"))
    parser.add_argument("--observability", action="store_true",
                        help="only run the probes-off/probes-on overhead "
                             "comparison (appends to "
                             "BENCH_observability.json)")
    parser.add_argument("--checkpoint", action="store_true",
                        help="only run the warm-checkpoint amortisation "
                             "comparison (appends to "
                             "BENCH_checkpoint.json)")
    parser.add_argument("--fastforward", action="store_true",
                        help="only run the sampled-simulation speedup/"
                             "accuracy comparison (appends to "
                             "BENCH_fastforward.json)")
    parser.add_argument("--isa", action="store_true",
                        help="only run the ISA kernel cross-validation "
                             "benchmark (appends to BENCH_isa.json)")
    parser.add_argument("--service", action="store_true",
                        help="only run the job-server throughput / dedupe "
                             "/ preemption-overhead benchmark (appends to "
                             "BENCH_service.json)")
    args = parser.parse_args(argv)

    if args.service:
        return run_service(args)
    if args.observability:
        return run_observability(args)
    if args.checkpoint:
        return run_checkpoint(args)
    if args.fastforward:
        return run_fastforward(args)
    if args.isa:
        return run_isa(args)

    os.environ["REPRO_SCALE"] = str(args.scale)
    cores = os.cpu_count() or 1
    jobs = args.jobs if args.jobs is not None else min(4, cores)
    points = 3 if args.quick else args.points
    engine_events = 100_000 if args.quick else 400_000

    print(f"engine microbench ({engine_events} events)...")
    engine_rate = bench_engine(events=engine_events)
    print(f"  {engine_rate:,.0f} events/s")

    print(f"single sims (P8 OLTP + P8 DSS, scale={args.scale})...")
    single = bench_single_sims(args.scale)
    print(f"  oltp {single['oltp']['wall_s']}s, dss {single['dss']['wall_s']}s"
          f" ({single['oltp']['events_per_s']:,} ev/s)")

    print(f"{points}-point L2 sweep (serial / jobs={jobs} cold / warm)...")
    sweep = bench_sweep(args.scale, jobs, points)
    print(f"  serial {sweep['serial_uncached_s']}s, "
          f"parallel {sweep['parallel_cold_s']}s, "
          f"warm {sweep['warm_cached_s']}s "
          f"(warm speedup {sweep['speedup_warm']}x)")

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale": args.scale,
        "cores": cores,
        "python": sys.version.split()[0],
        "engine_events_per_s": round(engine_rate),
        "single_sim": single,
        "sweep": sweep,
    }

    history = {"records": []}
    if os.path.exists(args.out):
        try:
            with open(args.out, "r", encoding="utf-8") as f:
                history = json.load(f)
        except (OSError, ValueError):
            pass
    history.setdefault("records", []).append(record)
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(history, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"appended record to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
