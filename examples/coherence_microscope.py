#!/usr/bin/env python3
"""Coherence microscope: watch individual protocol transactions.

Drives single memory accesses through a two-node system and prints what
the protocol did for each: service class, latency, directory state, and
engine activity.  Then runs the assembled spinlock kernel on four timing
CPUs to show ldq_l/stq_c contention through the same machinery.

Run:  python examples/coherence_microscope.py
"""

from repro import AccessKind, CoherenceChecker, MESI, PiranhaSystem, preset
from repro.core.messages import MemRequest, request_for
from repro.isa import make_isa_workload, spinlock_increment


def probe(system, node, cpu, kind, addr, label):
    out = {}

    def done(latency_ps, source):
        out["latency"] = latency_ps / 1000.0
        out["source"] = source

    req = MemRequest(cpu_id=cpu, kind=kind, addr=addr, is_instr=False,
                     done=done, node=node)
    req.issue_time = system.sim.now
    system.nodes[node].issue_miss(req, request_for(kind, MESI.INVALID))
    system.sim.run()
    home = system.address_map.home_of(addr)
    direntry = system.dirstores[home].read(addr)
    print(f"  {label:44s} {out['latency']:7.1f} ns  "
          f"[{out['source'].name:12s}] dir={direntry.state.name}")
    return out


def main() -> None:
    print("== single transactions on a 2-node P8 system ==")
    system = PiranhaSystem(preset("P8"), num_nodes=2,
                           checker=CoherenceChecker())
    LINE = 0x0000          # homed at node 0
    print("\nTable-1 service classes, one at a time:")
    probe(system, 0, 0, AccessKind.LOAD, LINE,
          "local read, cold (memory fill, no L2 alloc)")
    probe(system, 0, 1, AccessKind.LOAD, LINE,
          "local read, owner on-chip (L1-to-L1 forward)")
    probe(system, 1, 0, AccessKind.LOAD, LINE,
          "remote read (2-hop to home memory)")
    probe(system, 1, 0, AccessKind.STORE, LINE,
          "remote upgrade (home-serialised exclusive)")
    probe(system, 0, 2, AccessKind.LOAD, LINE,
          "local read, dirty at remote node (3-hop)")
    probe(system, 1, 1, AccessKind.WH64, 0x4000,
          "wh64: exclusive-without-data")

    re = system.nodes[1].remote_engine
    he = system.nodes[0].home_engine
    print(f"\nprotocol-engine activity: home engine ran "
          f"{he.c_threads.value} threads / {he.c_instructions.value} "
          f"microinstructions;")
    print(f"remote engine ran {re.c_threads.value} threads / "
          f"{re.c_instructions.value} microinstructions")
    system.checker.verify_quiesced()
    print("coherence checker: all invariants held")

    print("\n== assembled spinlock on four timing CPUs (P4 chip) ==")
    LOCK, COUNTER = 0x4000, 0x4080
    programs = {(0, c): spinlock_increment(LOCK, COUNTER, 25)
                for c in range(4)}
    workload, cpus, memory = make_isa_workload(programs)
    checker = CoherenceChecker()
    lock_system = PiranhaSystem(preset("P4"), num_nodes=1, checker=checker)
    lock_system.attach_workload(workload)
    finish = lock_system.run_to_completion()
    checker.verify_quiesced()
    failures = sum(c.state.stq_c_failures for c in cpus.values())
    mb = lock_system.miss_breakdown()
    print(f"  counter = {memory.load_q(COUNTER)} (expected 100)")
    print(f"  simulated time {finish / 1e6:.2f} us, "
          f"{failures} stq_c failures under contention")
    print(f"  lock lines ping-ponged between L1s: "
          f"{mb['l2_fwd']} L1-to-L1 forwards")


if __name__ == "__main__":
    main()
