#!/usr/bin/env python3
"""The Piranha I/O node: coherent DMA and the on-chip driver CPU (Fig. 2).

Builds one processing node plus one I/O node (a stripped-down chip: one
CPU, one L2/MC, a two-link router, and a dL1-fronted PCI/X bridge), then:

1. a CPU on the processing node dirties a buffer;
2. the device DMA-reads it — the bridge's dL1 pulls the dirty lines
   through the ordinary coherence protocol (no flush needed);
3. the device DMA-writes a result buffer with wh64 semantics;
4. completion raises an interrupt, and the I/O node's own CPU — a
   full-fledged Alpha, per the paper — runs the driver's completion work.

Run:  python examples/io_node_dma.py
"""

from repro import AccessKind, CoherenceChecker, PiranhaSystem, preset
from repro.core.messages import MemRequest, RequestType
from repro.workloads.base import WorkloadThread

BUFFER = 0x0000        # homed at the processing node
RESULT = 0x2000        # homed at the I/O node
LINES = 16


def main() -> None:
    checker = CoherenceChecker()
    system = PiranhaSystem(preset("P4"), num_nodes=1, io_nodes=1,
                           checker=checker)
    proc, io = system.nodes[0], system.io[0]
    print(f"topology: {[(n, system.topology.kind(n)) for n in system.topology.nodes]}")
    print(f"I/O node config: {io.config.cpus} CPU, "
          f"{io.config.l2.banks} L2 bank "
          f"({io.config.l2.size_bytes // 1024} KB), 2-link router\n")

    # 1. the processing node's CPU dirties the DMA buffer
    pending = [0]

    def store_done(latency, source):
        pending[0] -= 1

    for i in range(LINES):
        req = MemRequest(cpu_id=0, kind=AccessKind.STORE,
                         addr=BUFFER + i * 64, is_instr=False,
                         done=store_done, node=0)
        req.issue_time = system.sim.now
        pending[0] += 1
        proc.issue_miss(req, RequestType.READ_EXCLUSIVE)
    system.sim.run()
    print(f"CPU dirtied {LINES} buffer lines in the processing node's L1")

    # 2. device DMA-read: coherent fetch of the dirty data
    done_reads = []
    t_read = io.pci.dma(BUFFER, lines=LINES, is_write=False,
                        on_done=done_reads.append)
    system.sim.run()
    versions = [io.pci.dl1.peek(BUFFER + i * 64).version
                for i in range(LINES)]
    print(f"DMA read : {t_read.done_lines} lines in "
          f"{(t_read.end_ps - t_read.start_ps) / 1000:.0f} ns — every line "
          f"carried the CPU's write (versions {set(versions)})")

    # 3. device DMA-write with completion interrupt
    t_write = io.pci.dma(RESULT, lines=LINES, is_write=True,
                         interrupt_vector=9)
    system.sim.run()
    print(f"DMA write: {t_write.done_lines} lines in "
          f"{(t_write.end_ps - t_write.start_ps) / 1000:.0f} ns "
          f"(wh64 — no fetch of old contents)")
    sc = io.chip.syscontrol
    print(f"interrupt: vector 9 pending at the I/O node "
          f"(mask {sc.read_register(3):#x})")

    # 4. the I/O node's driver CPU handles completion locally
    io.cpu.attach(WorkloadThread(iter(
        [(200, AccessKind.LOAD, RESULT + i * 64, True) for i in range(4)])))
    io.cpu.start()
    system.sim.run()
    print(f"driver CPU on the I/O node touched the result buffer "
          f"locally: {io.cpu.misses} misses, "
          f"{io.cpu.stall_on_chip_ps / 1000:.0f} ns on-chip stall")

    checker.verify_quiesced()
    print("\ncoherence checker: device and CPUs stayed coherent throughout")


if __name__ == "__main__":
    main()
