#!/usr/bin/env python3
"""Glueless multi-chip Piranha (Figures 3 and 7).

Builds 1-, 2- and 4-node systems of 4-CPU Piranha chips connected by the
hot-potato interconnect, runs OLTP across them, and reports the NUMA
scaling curve plus inter-node protocol statistics: engine traffic, remote
miss latencies, and write-back activity.

Run:  python examples/multichip_numa.py
"""

from repro import OltpParams, OltpWorkload, PiranhaSystem, preset
from repro.harness import format_table


def run(nodes: int, params: OltpParams):
    config = preset("P4")
    system = PiranhaSystem(config, num_nodes=nodes)
    system.attach_workload(
        OltpWorkload(params, cpus_per_node=config.cpus, num_nodes=nodes))
    system.run_to_completion()
    per_cpu_ps = max(cpu.total_ps for cpu in system.all_cpus())
    throughput = config.cpus * nodes * 1e12 / (per_cpu_ps / params.transactions)
    he_threads = sum(n.home_engine.c_threads.value for n in system.nodes)
    re_instrs = sum(n.remote_engine.c_instructions.value
                    for n in system.nodes)
    packets = sum(n.c_packets_sent.value for n in system.nodes)
    return throughput, he_threads, re_instrs, packets


def main() -> None:
    params = OltpParams(transactions=30, warmup_transactions=60)
    # (shortened for a quick demo; the benchmark suite uses the full
    #  calibrated scale, where the ratios match the paper most closely)
    rows = []
    base = None
    for nodes in (1, 2, 4):
        print(f"running {nodes}-node system "
              f"({nodes * 4} CPUs total) ...")
        tput, he, re_i, pkts = run(nodes, params)
        if base is None:
            base = tput
        rows.append([nodes, nodes * 4, f"{tput / base:.2f}",
                     he, re_i, pkts])
    print()
    print(format_table(
        ["chips", "CPUs", "speedup", "home-engine txns",
         "remote-engine instrs", "packets"],
        rows, title="Figure 7: multi-chip OLTP scaling (P4 chips)"))
    print("\npaper: 3.0x at four Piranha chips (vs 2.6x for OOO chips);")
    print("the protocol engines and interconnect stay idle at one node and")
    print("carry all coherence traffic beyond it.")


if __name__ == "__main__":
    main()
