#!/usr/bin/env python3
"""Design-space exploration around the Piranha design point (Section 4).

Uses the sweep harness to revisit three trade-offs the paper discusses:

1. cores vs L2 capacity ("such a trade-off does not seem advantageous");
2. the non-inclusive L2 vs a conventional inclusive one (Section 2.3);
3. the memory controller's page keep-open window (Section 2.4).

Run:  python examples/design_space.py
"""

import dataclasses

from repro import OltpParams, OltpWorkload, preset
from repro.core import PiranhaSystem
from repro.harness import format_table
from repro.harness.sweep import replace_field, run_config, sweep_field

PARAMS = OltpParams(transactions=30, warmup_transactions=60)


def oltp_factory(config, num_nodes):
    return OltpWorkload(PARAMS, cpus_per_node=config.cpus,
                        num_nodes=num_nodes)


def cores_vs_cache() -> None:
    print("1. trading CPUs for L2 capacity (OLTP throughput per chip)")
    variants = [(8, 1024), (6, 1280), (4, 1536), (2, 1792)]
    rows = []
    base = None
    for cpus, kb in variants:
        config = preset("P8").with_cpus(cpus, f"P{cpus}")
        config = replace_field(config, "l2.size_bytes", kb * 1024)
        record = run_config(config, oltp_factory)
        if base is None:
            base = record["throughput"]
        rows.append([cpus, kb, f"{record['throughput'] / base:.2f}",
                     f"{record['mem_frac']:.2f}"])
    print(format_table(["CPUs", "L2 KB", "throughput vs P8", "mem stall"],
                       rows))
    print("   -> every trade-down loses; the paper: 'does not seem "
          "advantageous'\n")


def inclusion() -> None:
    print("2. non-inclusive vs inclusive L2 (the Section 2.3 choice)")
    rows = []
    for inclusive in (False, True):
        config = dataclasses.replace(
            preset("P8"),
            l2=dataclasses.replace(preset("P8").l2, inclusive=inclusive))
        record = run_config(config, oltp_factory)
        rows.append(["inclusive" if inclusive else "non-inclusive",
                     f"{record['time_per_unit_ns']:.0f}",
                     f"{record['miss_mem_frac']:.2f}"])
    print(format_table(["policy", "ns per transaction", "L1-miss mem share"],
                       rows))
    print("   -> inclusion forfeits the aggregate-L1 megabyte of on-chip "
          "capacity\n")


def keep_open() -> None:
    print("3. RDRAM page keep-open window (Section 2.4)")
    rows = []
    params = dataclasses.replace(PARAMS, block_io_lines_per_txn=32)

    def factory(config, num_nodes):
        return OltpWorkload(params, cpus_per_node=config.cpus)

    for window_ns in (0.0, 500.0, 1000.0, 4000.0):
        config = replace_field(preset("P8"), "memory.page_keep_open_ns",
                               window_ns)
        system = PiranhaSystem(config, num_nodes=1)
        system.attach_workload(factory(config, 1))
        system.run_to_completion()
        hits = sum(mc.channel.c_page_hits.value
                   for mc in system.nodes[0].mcs)
        accesses = sum(mc.channel.c_accesses.value
                       for mc in system.nodes[0].mcs)
        rows.append([f"{window_ns:.0f}",
                     f"{hits / max(1, accesses):.2f}"])
    print(format_table(["keep-open (ns)", "page-hit rate"], rows))
    print("   -> the knee sits just below the paper's ~1 us policy")


def main() -> None:
    cores_vs_cache()
    inclusion()
    keep_open()


if __name__ == "__main__":
    main()
