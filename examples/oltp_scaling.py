#!/usr/bin/env python3
"""OLTP scaling study: Piranha vs the out-of-order baseline (Figures 5/6).

Sweeps the on-chip CPU count (P1, P2, P4, P8), runs the same OLTP workload
on the 1 GHz 4-issue out-of-order chip (OOO) and its in-order twin (INO),
and prints the speedup curve and miss-breakdown trends of Figure 6 along
with the per-chip comparison of Figure 5.

Run:  python examples/oltp_scaling.py
"""

from repro import OltpParams, OltpWorkload, PiranhaSystem, preset
from repro.harness import format_table


def run(config_name: str, params: OltpParams):
    config = preset(config_name)
    system = PiranhaSystem(config, num_nodes=1)
    system.attach_workload(OltpWorkload(params, cpus_per_node=config.cpus))
    system.run_to_completion()
    per_cpu_ps = max(cpu.total_ps for cpu in system.all_cpus())
    throughput = config.cpus * 1e12 / (per_cpu_ps / params.transactions)
    mb = system.miss_breakdown()
    misses = sum(mb.values()) or 1
    return {
        "throughput": throughput,
        "hit": mb["l2_hit"] / misses,
        "fwd": mb["l2_fwd"] / misses,
        "mem": mb["l2_miss"] / misses,
    }


def main() -> None:
    # the calibrated defaults (80 measured / 150 warm-up transactions);
    # smaller runs under-warm the caches and inflate the ratios
    params = OltpParams()
    configs = ["P1", "P2", "P4", "P8", "INO", "OOO"]
    print(f"running {len(configs)} configurations ...")
    results = {}
    for name in configs:
        results[name] = run(name, params)
        print(f"  {name} done")

    base = results["P1"]["throughput"]
    rows = []
    for name in configs:
        r = results[name]
        rows.append([
            name,
            f"{r['throughput'] / base:.2f}",
            f"{r['hit']:.2f}", f"{r['fwd']:.2f}", f"{r['mem']:.2f}",
        ])
    print()
    print(format_table(
        ["config", "speedup vs P1", "L2 hit", "L2 fwd", "L2 miss"],
        rows, title="OLTP scaling (Figure 6a speedups, Figure 6b breakdown)"))

    p8, ooo, ino = (results[k]["throughput"] for k in ("P8", "OOO", "INO"))
    print(f"\nFigure 5 headline factors:")
    print(f"  OOO / P1  = {ooo / base:.2f}   (paper ~2.3)")
    print(f"  INO / P1  = {ino / base:.2f}   (paper ~1.6)")
    print(f"  P8  / OOO = {p8 / ooo:.2f}   (paper ~2.9)")
    print(f"  P8  / P1  = {p8 / base:.2f}   (paper: speedup of nearly 7)")


if __name__ == "__main__":
    main()
