#!/usr/bin/env python3
"""Quickstart: simulate the eight-CPU Piranha chip running OLTP.

Builds a single-chip P8 system, attaches the TPC-B-like OLTP workload,
runs it to completion, and prints the Figure 5-style execution-time
breakdown plus the Figure 6b-style L1-miss decomposition.

Run:  python examples/quickstart.py
"""

from repro import OltpParams, OltpWorkload, PIRANHA_P8, PiranhaSystem
from repro.harness import breakdown_bar


def main() -> None:
    params = OltpParams(transactions=40, warmup_transactions=60)
    # (shortened for a quick demo; the benchmark suite uses the full
    #  calibrated scale, where the ratios match the paper most closely)
    workload = OltpWorkload(params, cpus_per_node=PIRANHA_P8.cpus)

    system = PiranhaSystem(PIRANHA_P8, num_nodes=1)
    system.attach_workload(workload)

    print(f"simulating {PIRANHA_P8.cpus} CPUs x "
          f"{params.transactions} transactions (after "
          f"{params.warmup_transactions} warm-up) ...")
    finish_ps = system.run_to_completion()

    summary = system.execution_summary()
    total = summary["total_ps"]
    txns = params.transactions * PIRANHA_P8.cpus
    print(f"\nsimulated time : {finish_ps / 1e6:.1f} us")
    print(f"instructions   : {summary['instructions']:,}")
    print(f"throughput     : {txns / (finish_ps / 1e12) / 1e3:.0f}k "
          f"transactions/s per chip")

    print("\nexecution-time breakdown (Figure 5 style):")
    print("  " + breakdown_bar(
        "P8 OLTP",
        summary["busy_ps"] / total,
        summary["l2_stall_ps"] / total,
        summary["mem_stall_ps"] / total,
    ))
    print("  (# = CPU busy, = = L2 hit/forward stall, . = memory stall)")

    mb = system.miss_breakdown()
    misses = sum(mb.values())
    print("\nL1-miss service breakdown (Figure 6b style):")
    print(f"  served by the shared L2      : {mb['l2_hit'] / misses:6.1%}")
    print(f"  forwarded to another L1      : {mb['l2_fwd'] / misses:6.1%}")
    print(f"  served by memory             : {mb['l2_miss'] / misses:6.1%}")

    chip = system.nodes[0]
    print(f"\non-chip resident data: {chip.on_chip_resident_bytes() / 1024:.0f} KB "
          f"(non-inclusive L1s + L2)")
    rates = [mc.channel.page_hit_rate for mc in chip.mcs]
    print(f"RDRAM open-page hit rate: {sum(rates) / len(rates):.0%}")


if __name__ == "__main__":
    main()
