"""Deterministic random-number substreams.

Every stochastic element of the simulation (workload address streams,
router arbitration tie-breaks, the DC-balanced encoder's random 19th bit)
draws from a named substream derived from a single root seed.  This makes
every experiment bit-reproducible while keeping streams statistically
independent of one another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Tag = Union[str, int]


def substream(root_seed: int, *tags: Tag) -> random.Random:
    """Return an independent :class:`random.Random` for ``(root_seed, *tags)``.

    The same (seed, tags) pair always produces the same stream; distinct
    tags produce statistically independent streams.  SHA-256 is used purely
    as a stable mixing function (Python's ``hash`` is salted per-process and
    unsuitable).
    """
    material = repr((root_seed,) + tags).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def derive_seed(root_seed: int, *tags: Tag) -> int:
    """Return a stable 63-bit integer seed for ``(root_seed, *tags)``."""
    material = repr((root_seed,) + tags).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


def state_dict(rng: random.Random) -> tuple:
    """Capture a substream's full Mersenne-Twister state for checkpointing.

    ``random.Random`` already pickles (its C-level ``__getstate__`` returns
    the 625-word internal state), but exposing the state as an explicit
    ``state_dict``/``load_state`` pair keeps RNG checkpointing symmetric
    with every other stateful component and lets tests assert round-trip
    identity without going through pickle.
    """
    return rng.getstate()


def load_state(rng: random.Random, state: tuple) -> None:
    """Restore a substream captured by :func:`state_dict`."""
    rng.setstate(state)
