"""Interval time-series sampler.

Snapshots a flat dictionary of monotonic counters on a fixed simulated-time
period and emits per-interval *deltas* plus instantaneous gauges.  The
series is the raw material for warm-up detection and phase plots: a run
that has reached steady state shows flat per-interval IPC / miss-rate
curves, while the cold-cache ramp is clearly visible in the first
intervals.

Design notes:

* The sampler never resets its own history at the warm-up boundary — the
  whole point of the series is to *see* the warm-up transient.  Instead,
  :meth:`note_reset` re-baselines the counter snapshot and flags the
  interval that contains the reset, so downstream consumers can mark it.
* Deltas are clamped at zero.  Per-CPU accounting (instructions, stall
  time) is zeroed at each CPU's own warm-up point rather than the global
  module-stats reset, so an interval that straddles those per-CPU resets
  can observe a counter moving backwards; the clamp keeps the series sane
  and the ``reset`` flag marks the global boundary.
* :meth:`tick` returns True while the workload is still running, which is
  exactly the contract of :meth:`Simulator.schedule_every` — the sampler
  stops rescheduling itself once the last CPU finishes so the event queue
  can drain.
* :meth:`finalize` emits one final partial interval so even runs shorter
  than two periods produce a usable (>= 2 point) series.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

CounterFn = Callable[[], Dict[str, float]]
GaugeFn = Callable[[], Dict[str, float]]
DeriveFn = Callable[[Dict[str, float], int], Dict[str, float]]


class IntervalSampler:
    """Periodic delta sampler over a flat counter dictionary."""

    def __init__(
        self,
        sim,
        interval_ps: int,
        collect_counters: CounterFn,
        collect_gauges: Optional[GaugeFn] = None,
        derive: Optional[DeriveFn] = None,
        running: Optional[Callable[[], bool]] = None,
    ) -> None:
        if interval_ps <= 0:
            raise ValueError("sample interval must be positive")
        self.sim = sim
        self.interval_ps = int(interval_ps)
        self._collect = collect_counters
        self._gauges = collect_gauges
        self._derive = derive
        self._running = running
        self.intervals: List[Dict[str, object]] = []
        #: optional ``cb(record)`` invoked after each interval record is
        #: appended — the live-telemetry stream hangs here.  Host-side
        #: observer: stripped from checkpoints (see :meth:`state_dict`).
        self.on_record: Optional[Callable[[Dict[str, object]], None]] = None
        self._prev: Optional[Dict[str, float]] = None
        self._prev_time = 0
        self._reset_pending = False
        self._started = False
        self._finalized = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Baseline the counters and begin periodic sampling."""
        if self._started:
            return
        self._started = True
        self._prev = dict(self._collect())
        self._prev_time = self.sim.now
        self.sim.schedule_every(self.interval_ps, self.tick)

    def tick(self) -> bool:
        """Record one interval; return True to stay scheduled."""
        self._record(self.sim.now)
        if self._running is not None and not self._running():
            return False
        return True

    def flush(self) -> None:
        """Emit the current partial interval (if any time has elapsed).
        Call *before* zeroing counters so the record sees true deltas."""
        if self._started and self.sim.now > self._prev_time:
            self._record(self.sim.now)

    def note_reset(self) -> None:
        """The system zeroed its module statistics (warm-up boundary).

        Call :meth:`flush` before the zeroing and this after: the
        baseline restarts at the reset instant and the next interval —
        the one beginning at the reset — carries the ``reset`` flag
        (and, when the reset landed mid-interval, the ``partial`` flag,
        so its deltas are never attributed to a full period).  The
        series itself is never discarded (warm-up detection needs the
        ramp).
        """
        if not self._started:
            return
        self._prev = dict(self._collect())
        self._prev_time = self.sim.now
        self._reset_pending = True

    def finalize(self) -> None:
        """Emit the final partial interval (if any time has elapsed).

        Idempotent at a fixed time via :meth:`_record`'s zero-width skip
        rather than a latch, so an early-terminated run (max-events
        bound, operator interrupt) that later *resumes* still flushes
        the true tail: each finalize emits whatever partial interval has
        accumulated since the last record, flagged ``partial``.
        """
        if not self._started:
            return
        self._finalized = True
        if self.sim.now > self._prev_time:
            self._record(self.sim.now)

    # -- internals -------------------------------------------------------

    def _record(self, now_ps: int) -> None:
        dt = now_ps - self._prev_time
        if dt <= 0:
            # A tick (or flush/finalize race) landing exactly on the
            # previous anchor — e.g. a sampling-window boundary at a
            # snapshot/reset timestamp — must not emit a zero-width
            # record: downstream rate computations would divide by a
            # zero interval, and a pending ``reset`` flag would be
            # consumed by an interval no time ever passed through.
            # Skip without re-baselining so the flag survives to the
            # first real interval.
            return
        cur = dict(self._collect())
        prev = self._prev or {}
        deltas = {
            key: max(0.0, value - prev.get(key, 0.0))
            for key, value in cur.items()
        }
        record: Dict[str, object] = {
            "index": len(self.intervals),
            "t0_ps": self._prev_time,
            "t1_ps": now_ps,
            "reset": self._reset_pending,
            # Intervals whose width differs from the period (the flush
            # before a module-stats reset, the re-baselined interval
            # after it, the final finalize() tail) carry a ``partial``
            # marker so consumers never attribute their deltas to a
            # full period.
            "partial": dt != self.interval_ps,
            "deltas": deltas,
        }
        if self._gauges is not None:
            record["gauges"] = dict(self._gauges())
        if self._derive is not None:
            record["derived"] = dict(self._derive(deltas, dt))
        self.intervals.append(record)
        self._prev = cur
        self._prev_time = now_ps
        self._reset_pending = False
        cb = getattr(self, "on_record", None)
        if cb is not None:
            cb(record)

    # -- checkpoint/restore ------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Interval history, counter baseline and lifecycle flags, plus
        the collector callables (bound methods / closures over the system
        graph — the checkpoint pickler serialises them so a restored
        sampler keeps collecting from the restored components).  The
        pending ``schedule_every`` tick is *not* here: it rides the
        simulator's pickled event queue, so a restored sampler resumes
        sampling without being re-armed (and without double-arming).

        ``on_record`` is excluded: it points at host-side sinks (an open
        telemetry file handle) that can neither pickle nor meaningfully
        transfer across processes; a restored sampler re-attaches its
        stream through the harness."""
        state = dict(self.__dict__)
        state.pop("on_record", None)
        return state

    def load_state(self, state: Dict[str, object]) -> None:
        self.on_record = None
        self.__dict__.update(state)

    def __getstate__(self) -> Dict[str, object]:
        return self.state_dict()

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.load_state(state)

    # -- export ----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "interval_ps": self.interval_ps,
            "count": len(self.intervals),
            "intervals": self.intervals,
        }
