"""Discrete-event simulation engine.

The whole library runs on a single global-time event queue with an integer
picosecond clock.  Integer picoseconds make every clock domain in the paper
exact: the 500 MHz ASIC Piranha core has a 2000 ps cycle, the 1 GHz
out-of-order baseline a 1000 ps cycle, and the 1.25 GHz full-custom Piranha
an 800 ps cycle.  Using integers (rather than float nanoseconds) keeps event
ordering deterministic and reproducible across platforms.

The engine is deliberately minimal: modules interact by scheduling plain
callbacks.  Higher-level abstractions (transactional ports, pipelined
resources) live in :mod:`repro.sim.ports`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

#: Picoseconds per nanosecond; all latency constants in the config are
#: expressed in nanoseconds and converted once at configuration time.
PS_PER_NS = 1000


def ns(value: float) -> int:
    """Convert a nanosecond quantity into integer picoseconds."""
    return int(round(value * PS_PER_NS))


class Clock:
    """A clock domain.

    Piranha is explicitly organised around per-module clock domains with
    transactional interfaces between them (Section 2 of the paper); this
    class provides cycle/time conversion for one such domain.
    """

    def __init__(self, freq_mhz: float) -> None:
        if freq_mhz <= 0:
            raise ValueError(f"clock frequency must be positive, got {freq_mhz}")
        self.freq_mhz = freq_mhz
        #: period in integer picoseconds (1e12 ps/s divided by freq in Hz)
        self.period_ps = int(round(1e6 / freq_mhz))

    def cycles(self, n: float) -> int:
        """Return the duration of *n* cycles in picoseconds."""
        return int(round(n * self.period_ps))

    def next_edge(self, now_ps: int) -> int:
        """Return the first clock-edge time at or after *now_ps*."""
        rem = now_ps % self.period_ps
        if rem == 0:
            return now_ps
        return now_ps + (self.period_ps - rem)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock({self.freq_mhz} MHz, {self.period_ps} ps)"


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: int, fn: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped when it fires."""
        self.cancelled = True


class Simulator:
    """The event queue and global simulated time.

    Events at equal times fire in scheduling order (FIFO), which the
    coherence protocol relies on for the ordering properties the intra-chip
    switch guarantees in hardware.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[tuple] = []
        self._seq: int = 0
        self._events_fired: int = 0

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay_ps: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay_ps`` picoseconds from now."""
        if delay_ps < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ps})")
        return self.schedule_at(self.now + delay_ps, fn, *args)

    def schedule_at(self, time_ps: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time_ps``."""
        if time_ps < self.now:
            raise ValueError(
                f"cannot schedule into the past (t={time_ps}, now={self.now})"
            )
        handle = EventHandle(time_ps, fn, args)
        heapq.heappush(self._queue, (time_ps, self._seq, handle))
        self._seq += 1
        return handle

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        while self._queue:
            time_ps, _seq, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self.now = time_ps
            self._events_fired += 1
            handle.fn(*handle.args)
            return True
        return False

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, *until_ps* passes, or
        *max_events* fire.  Returns the number of events fired."""
        fired = 0
        while self._queue:
            time_ps = self._queue[0][0]
            if until_ps is not None and time_ps > until_ps:
                self.now = until_ps
                break
            if max_events is not None and fired >= max_events:
                break
            if self.step():
                fired += 1
        return fired

    @property
    def pending(self) -> int:
        """Number of events currently queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now} ps, pending={self.pending})"


class Component:
    """Base class for simulated hardware modules.

    Gives every module a reference to the simulator, a hierarchical name,
    and a stats group.  Matches the paper's strict hierarchical
    decomposition: modules communicate exclusively through explicit
    interfaces, never by reaching into each other's internals.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        from .stats import StatGroup

        self.sim = sim
        self.name = name
        self.stats = StatGroup(name)

    def schedule(self, delay_ps: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Convenience wrapper around :meth:`Simulator.schedule`."""
        return self.sim.schedule(delay_ps, fn, *args)

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
