"""Discrete-event simulation engine.

The whole library runs on a single global-time event queue with an integer
picosecond clock.  Integer picoseconds make every clock domain in the paper
exact: the 500 MHz ASIC Piranha core has a 2000 ps cycle, the 1 GHz
out-of-order baseline a 1000 ps cycle, and the 1.25 GHz full-custom Piranha
an 800 ps cycle.  Using integers (rather than float nanoseconds) keeps event
ordering deterministic and reproducible across platforms.

The engine is deliberately minimal: modules interact by scheduling plain
callbacks.  Higher-level abstractions (transactional ports, pipelined
resources) live in :mod:`repro.sim.ports`.

``schedule`` and ``run`` are the two hottest functions in the whole
library (every simulated L1 miss, DRAM access and CPU batch goes through
both), so they trade a little repetition for flat, single-frame code
paths: ``run`` pops the heap directly instead of delegating to
:meth:`Simulator.step`, and ``schedule`` builds the heap entry inline
instead of delegating to :meth:`Simulator.schedule_at`.

Cancellation is lazy: :meth:`EventHandle.cancel` only flags the handle,
and the dead heap entry is discarded when it surfaces.  The simulator
keeps an exact count of dead entries so :attr:`Simulator.pending` reports
live events only, and compacts the heap when dead entries outnumber live
ones, so long-lived simulations that cancel heavily (timeout patterns)
don't accumulate an ever-growing queue.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

#: Picoseconds per nanosecond; all latency constants in the config are
#: expressed in nanoseconds and converted once at configuration time.
PS_PER_NS = 1000


def ns(value: float) -> int:
    """Convert a nanosecond quantity into integer picoseconds."""
    return int(round(value * PS_PER_NS))


class Clock:
    """A clock domain.

    Piranha is explicitly organised around per-module clock domains with
    transactional interfaces between them (Section 2 of the paper); this
    class provides cycle/time conversion for one such domain.
    """

    def __init__(self, freq_mhz: float) -> None:
        if freq_mhz <= 0:
            raise ValueError(f"clock frequency must be positive, got {freq_mhz}")
        self.freq_mhz = freq_mhz
        #: period in integer picoseconds (1e12 ps/s divided by freq in Hz)
        self.period_ps = int(round(1e6 / freq_mhz))

    def cycles(self, n: float) -> int:
        """Return the duration of *n* cycles in picoseconds."""
        return int(round(n * self.period_ps))

    def next_edge(self, now_ps: int) -> int:
        """Return the first clock-edge time at or after *now_ps*."""
        rem = now_ps % self.period_ps
        if rem == 0:
            return now_ps
        return now_ps + (self.period_ps - rem)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock({self.freq_mhz} MHz, {self.period_ps} ps)"


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("time", "fn", "args", "cancelled", "sim")

    def __init__(self, time: int, fn: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: owning simulator while the event is pending; cleared when the
        #: event fires so a late ``cancel()`` cannot corrupt the
        #: simulator's dead-entry accounting.
        self.sim = sim

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped when it fires.

        Cancelling an event that already fired (or cancelling twice) is a
        harmless no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            sim._note_cancelled()


class Simulator:
    """The event queue and global simulated time.

    Events at equal times fire in scheduling order (FIFO), which the
    coherence protocol relies on for the ordering properties the intra-chip
    switch guarantees in hardware.
    """

    #: minimum number of dead (cancelled-but-queued) entries before the
    #: heap is considered for compaction; below this, scanning the heap
    #: costs more than lazily discarding the entries.
    COMPACT_MIN_DEAD = 64

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[tuple] = []
        self._seq: int = 0
        self._events_fired: int = 0
        self._dead: int = 0              # cancelled entries still queued
        self._events_cancelled: int = 0  # cumulative cancel() count
        #: optional :class:`~repro.observe.hostprof.HostProfiler`; when
        #: set, :meth:`run` dispatches through :meth:`_run_profiled`.
        #: Checked once per run() call, so the hot loop below is
        #: untouched (and event order bit-identical) when disabled.
        self.profiler = None

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay_ps: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay_ps`` picoseconds from now."""
        if delay_ps < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ps})")
        time_ps = self.now + delay_ps
        handle = EventHandle(time_ps, fn, args, self)
        heapq.heappush(self._queue, (time_ps, self._seq, handle))
        self._seq += 1
        return handle

    def schedule_every(self, interval_ps: int,
                       fn: Callable[[], Any]) -> EventHandle:
        """Run ``fn()`` every *interval_ps*, starting one interval from
        now, for as long as it returns a truthy value.

        Used for periodic observers (the interval telemetry sampler, the
        continuous protocol audit) that must stop rescheduling once the
        simulation goes quiescent — a perpetual timer would keep the
        event queue alive forever under run-to-drain.  Returns the handle
        for the first tick; cancelling it stops the timer only until the
        next reschedule, so observers should stop via their return value.

        The ticker is a :class:`_PeriodicTick` instance rather than a
        closure so a pending tick can ride a checkpoint: a restored event
        queue re-registers the periodic chain by simply firing the queued
        tick — no re-arming, no duplicate tickers.
        """
        if interval_ps <= 0:
            raise ValueError(
                f"repeat interval must be positive, got {interval_ps}")
        return self.schedule(interval_ps, _PeriodicTick(self, interval_ps, fn))

    def schedule_at(self, time_ps: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time_ps``."""
        if time_ps < self.now:
            raise ValueError(
                f"cannot schedule into the past (t={time_ps}, now={self.now})"
            )
        handle = EventHandle(time_ps, fn, args, self)
        heapq.heappush(self._queue, (time_ps, self._seq, handle))
        self._seq += 1
        return handle

    # -- cancellation bookkeeping ---------------------------------------

    def _note_cancelled(self) -> None:
        """Record one cancellation; compact the heap when dead entries
        outnumber live ones."""
        self._events_cancelled += 1
        self._dead += 1
        if self._dead >= self.COMPACT_MIN_DEAD and self._dead * 2 >= len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        ``(time, seq)`` keys are unique, so heapify preserves the exact
        FIFO-within-timestamp firing order.
        """
        self._queue = [e for e in self._queue if not e[2].cancelled]
        heapq.heapify(self._queue)
        self._dead = 0

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        q = self._queue
        while q:
            time_ps, _seq, handle = heapq.heappop(q)
            if handle.cancelled:
                self._dead -= 1
                continue
            handle.sim = None
            self.now = time_ps
            self._events_fired += 1
            handle.fn(*handle.args)
            return True
        return False

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, *until_ps* passes, or
        *max_events* fire.  Returns the number of events fired."""
        if self.profiler is not None:
            return self._run_profiled(until_ps, max_events)
        q = self._queue
        pop = heapq.heappop
        fired = 0
        if until_ps is None and max_events is None:
            # Hot path: run-to-drain (what every workload simulation uses).
            # No bound checks, locals bound outside the loop.
            while q:
                time_ps, _seq, handle = pop(q)
                if handle.cancelled:
                    self._dead -= 1
                    continue
                handle.sim = None
                self.now = time_ps
                self._events_fired += 1
                handle.fn(*handle.args)
                fired += 1
            return fired
        # Bounded path.  The until_ps check only needs the head timestamp;
        # once an event at time T is admitted, every other event at exactly
        # T is admissible too, so the inner loop drains the whole timestamp
        # batch without re-checking the bound.
        while q:
            head_ps = q[0][0]
            if until_ps is not None and head_ps > until_ps:
                self.now = until_ps
                break
            if max_events is not None and fired >= max_events:
                break
            time_ps, _seq, handle = pop(q)
            if handle.cancelled:
                self._dead -= 1
                continue
            handle.sim = None
            self.now = time_ps
            self._events_fired += 1
            handle.fn(*handle.args)
            fired += 1
            while q and q[0][0] == time_ps:
                if max_events is not None and fired >= max_events:
                    break
                _t, _s, h = pop(q)
                if h.cancelled:
                    self._dead -= 1
                    continue
                h.sim = None
                self._events_fired += 1
                h.fn(*h.args)
                fired += 1
        return fired

    def _run_profiled(self, until_ps: Optional[int] = None,
                      max_events: Optional[int] = None) -> int:
        """The :meth:`run` loop with sampled wall-clock attribution.

        A separate method (rather than branches inside ``run``) so the
        unprofiled hot loop carries zero per-event cost.  Heap
        operations, cancellation handling and time advancement are
        identical to :meth:`run`'s bounded path — the only additions are
        the per-event sample decision and the ``perf_counter_ns``
        bracket around sampled callbacks — so simulated behaviour is
        bit-identical with or without the profiler.
        """
        from time import perf_counter_ns

        prof = self.profiler
        rate = prof.rate
        record = prof.record
        q = self._queue
        pop = heapq.heappop
        fired = 0
        while q:
            head_ps = q[0][0]
            if until_ps is not None and head_ps > until_ps:
                self.now = until_ps
                break
            if max_events is not None and fired >= max_events:
                break
            time_ps, _seq, handle = pop(q)
            if handle.cancelled:
                self._dead -= 1
                continue
            handle.sim = None
            self.now = time_ps
            self._events_fired += 1
            prof.events_seen += 1
            fn = handle.fn
            if prof.events_seen % rate == 0:
                t0 = perf_counter_ns()
                fn(*handle.args)
                record(fn, perf_counter_ns() - t0)
            else:
                fn(*handle.args)
            fired += 1
        return fired

    def halt(self) -> None:
        """Discard every pending event (the queue drains immediately).

        Used by checkpoint capture when the caller only needs the system
        state up to the snapshot point and not the rest of the run; the
        simulator itself stays usable (new events can be scheduled)."""
        self._queue = []
        self._dead = 0

    def advance_to(self, time_ps: int) -> None:
        """Jump the clock to *time_ps* without firing anything.

        Statistical fast-forward phases advance machine state outside the
        event queue and then use this to move simulated time by their
        estimate.  Jumping over pending work would make those events fire
        in their own past, so any live event earlier than the target must
        be drained (``run()``) or cancelled first; this raises otherwise.
        """
        if time_ps < self.now:
            raise ValueError(
                f"cannot advance into the past (t={time_ps}, now={self.now})"
            )
        for entry in self._queue:
            if not entry[2].cancelled and entry[0] < time_ps:
                raise RuntimeError(
                    f"cannot fast-forward to {time_ps} ps past a pending "
                    f"event at {entry[0]} ps; drain the queue first"
                )
        self.now = time_ps

    # -- checkpoint/restore ----------------------------------------------

    def state_dict(self) -> dict:
        """Complete serialisable state: clock, event queue (handles carry
        their callbacks), sequence counter and cancellation accounting.
        The queue rides the snapshot verbatim, so FIFO-within-timestamp
        ordering is preserved exactly across a restore."""
        return dict(self.__dict__)

    def load_state(self, state: dict) -> None:
        # Snapshots written before the profiler existed carry no
        # "profiler" key; default it so run() stays attribute-safe.
        self.profiler = None
        self.__dict__.update(state)

    def __getstate__(self) -> dict:
        return self.state_dict()

    def __setstate__(self, state: dict) -> None:
        self.load_state(state)

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events currently queued."""
        return len(self._queue) - self._dead

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def events_cancelled(self) -> int:
        """Total number of events cancelled so far."""
        return self._events_cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now} ps, pending={self.pending})"


class _PeriodicTick:
    """Picklable self-rescheduling callback behind
    :meth:`Simulator.schedule_every`.

    A plain class (not a closure) so a pending tick serialises with the
    event queue: after a restore the queued tick keeps the periodic chain
    alive on its original phase, with no re-registration step and no way
    to end up with duplicate tickers or a dropped interval.
    """

    __slots__ = ("sim", "interval_ps", "fn")

    def __init__(self, sim: Simulator, interval_ps: int,
                 fn: Callable[[], Any]) -> None:
        self.sim = sim
        self.interval_ps = interval_ps
        self.fn = fn

    def __call__(self) -> None:
        if self.fn():
            self.sim.schedule(self.interval_ps, self)


class Component:
    """Base class for simulated hardware modules.

    Gives every module a reference to the simulator, a hierarchical name,
    and a stats group.  Matches the paper's strict hierarchical
    decomposition: modules communicate exclusively through explicit
    interfaces, never by reaching into each other's internals.

    ``self.schedule`` is bound directly to :meth:`Simulator.schedule` (an
    instance attribute, not a wrapper method): every simulated event is
    scheduled through it, and the extra delegating frame showed up as
    measurable overhead in profiles.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        from .stats import StatGroup

        self.sim = sim
        self.name = name
        self.stats = StatGroup(name)
        self.schedule: Callable[..., EventHandle] = sim.schedule

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self.sim.now

    # -- checkpoint/restore ----------------------------------------------
    #
    # Every simulated module keeps its complete mutable state in instance
    # attributes (DESIGN.md "Determinism"), so the default component
    # snapshot is simply the instance dictionary.  Subclasses with state
    # outside __dict__ override the pair; the checkpoint layer routes
    # pickling through these hooks so a component's notion of "its state"
    # stays in one place.

    def state_dict(self) -> dict:
        return dict(self.__dict__)

    def load_state(self, state: dict) -> None:
        self.__dict__.update(state)

    def __getstate__(self) -> dict:
        return self.state_dict()

    def __setstate__(self, state: dict) -> None:
        self.load_state(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
