"""Discrete-event simulation substrate (engine, stats, deterministic RNG)."""

from .engine import PS_PER_NS, Clock, Component, EventHandle, Simulator, ns
from .rng import derive_seed, substream
from .sampler import IntervalSampler
from .stats import Accumulator, Counter, Histogram, StatGroup, TimeWeighted

__all__ = [
    "IntervalSampler",
    "PS_PER_NS",
    "Clock",
    "Component",
    "EventHandle",
    "Simulator",
    "ns",
    "substream",
    "derive_seed",
    "Counter",
    "Accumulator",
    "Histogram",
    "StatGroup",
    "TimeWeighted",
]
