"""Statistics primitives for simulated components.

Every module keeps its counters in a :class:`StatGroup`.  The harness
(:mod:`repro.harness`) collects these into the execution-time breakdowns and
miss decompositions that the paper's Figures 5 and 6 report.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Accumulator:
    """Tracks sum / count / min / max of a sampled quantity (e.g. latency)."""

    __slots__ = ("name", "count", "total", "min", "max", "_sumsq")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._sumsq = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._sumsq += value * value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stdev(self) -> float:
        if self.count < 2:
            return 0.0
        var = max(0.0, self._sumsq / self.count - self.mean**2)
        return math.sqrt(var)

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self._sumsq = 0.0
        self.min = None
        self.max = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"Accumulator({self.name}: n={self.count}, mean={self.mean:.2f})"


class Histogram:
    """Fixed-bin histogram for distributions (queue depths, latencies)."""

    def __init__(self, name: str, bin_edges: Iterable[float]) -> None:
        self.name = name
        self.edges: List[float] = sorted(bin_edges)
        if not self.edges:
            raise ValueError("histogram needs at least one bin edge")
        # bins[i] counts values in [edges[i-1], edges[i]); bins[0] is
        # underflow, bins[-1] is overflow.
        self.bins: List[int] = [0] * (len(self.edges) + 1)
        self.samples = 0

    def add(self, value: float) -> None:
        # bisect_right finds the first edge > value, which is exactly the
        # bin index for the [edges[i-1], edges[i]) convention above.
        self.samples += 1
        self.bins[bisect_right(self.edges, value)] += 1

    def reset(self) -> None:
        self.bins = [0] * (len(self.edges) + 1)
        self.samples = 0

    def percentile(self, q: float) -> float:
        """Upper bound on the q-quantile (``0 <= q <= 1``): the smallest
        bin edge whose cumulative sample count is non-zero and whose
        cumulative fraction is >= *q*.  The non-zero requirement matters
        for ``q == 0``: ``need`` is 0, which every bin trivially
        satisfies, so without it p0 would report the first edge even
        when every sample sits in a higher (or the overflow) bin.
        Returns ``float("inf")`` when the quantile falls in the overflow
        bin and ``0.0`` when the histogram is empty — callers exporting
        JSON should map non-finite values themselves."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.samples == 0:
            return 0.0
        need = q * self.samples
        cum = 0
        for i, edge in enumerate(self.edges):
            cum += self.bins[i]
            if cum >= need and cum > 0:
                return edge
        return float("inf")

    def fraction_below(self, edge: float) -> float:
        """Fraction of samples strictly below *edge* (must be a bin edge)."""
        if self.samples == 0:
            return 0.0
        try:
            idx = self.edges.index(edge)
        except ValueError:
            raise ValueError(
                f"histogram {self.name!r}: {edge!r} is not a bin edge; "
                f"valid edges are {self.edges}"
            ) from None
        return sum(self.bins[: idx + 1]) / self.samples

    def __repr__(self) -> str:  # pragma: no cover
        return f"Histogram({self.name}: n={self.samples})"


class TimeWeighted:
    """Time-weighted average of a level (e.g. occupancy, queue depth)."""

    __slots__ = ("name", "_level", "_last_time", "_area", "_max",
                 "_start_time")

    def __init__(self, name: str) -> None:
        self.name = name
        self._level = 0.0
        self._last_time = 0
        self._area = 0.0
        self._max = 0.0
        self._start_time = 0

    def set(self, now_ps: int, level: float) -> None:
        """Record that the tracked level changed to *level* at *now_ps*."""
        self._area += self._level * (now_ps - self._last_time)
        self._last_time = now_ps
        self._level = level
        if level > self._max:
            self._max = level

    def adjust(self, now_ps: int, delta: float) -> None:
        """Add *delta* to the current level at *now_ps*."""
        self.set(now_ps, self._level + delta)

    def reset(self, now_ps: int) -> None:
        """Time-anchored reset: discard accumulated area (and the peak)
        and restart the measurement window at *now_ps*, preserving the
        current level — the tracked quantity (queue depth, occupancy)
        does not change just because measurement restarts.  Used at the
        warm-up boundary so warm-up area cannot pollute steady-state
        time-weighted means."""
        self._area = 0.0
        self._last_time = now_ps
        self._start_time = now_ps
        self._max = self._level

    def mean(self, now_ps: int) -> float:
        """Time-weighted mean level over the measurement window (from the
        last reset — time 0 by default — to *now_ps*)."""
        span = now_ps - self._start_time
        if span <= 0:
            return 0.0
        area = self._area + self._level * (now_ps - self._last_time)
        return area / span

    @property
    def peak(self) -> float:
        return self._max

    @property
    def level(self) -> float:
        return self._level


class StatGroup:
    """A named collection of statistics owned by one component."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._stats: Dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        stat = self._stats.get(name)
        if stat is None:
            stat = Counter(name)
            self._stats[name] = stat
        if not isinstance(stat, Counter):
            raise TypeError(f"{name} already exists with type {type(stat).__name__}")
        return stat

    def accumulator(self, name: str) -> Accumulator:
        """Get or create an accumulator."""
        stat = self._stats.get(name)
        if stat is None:
            stat = Accumulator(name)
            self._stats[name] = stat
        if not isinstance(stat, Accumulator):
            raise TypeError(f"{name} already exists with type {type(stat).__name__}")
        return stat

    def histogram(self, name: str, bin_edges: Iterable[float]) -> Histogram:
        """Get or create a histogram."""
        stat = self._stats.get(name)
        if stat is None:
            stat = Histogram(name, bin_edges)
            self._stats[name] = stat
        if not isinstance(stat, Histogram):
            raise TypeError(f"{name} already exists with type {type(stat).__name__}")
        return stat

    def time_weighted(self, name: str) -> TimeWeighted:
        """Get or create a time-weighted level tracker."""
        stat = self._stats.get(name)
        if stat is None:
            stat = TimeWeighted(name)
            self._stats[name] = stat
        if not isinstance(stat, TimeWeighted):
            raise TypeError(f"{name} already exists with type {type(stat).__name__}")
        return stat

    def get(self, name: str):
        return self._stats.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def reset_all(self, now_ps: int = 0) -> None:
        """Zero every statistic (used at warm-up boundaries).

        *now_ps* anchors :class:`TimeWeighted` trackers at the reset
        time; without it their warm-up area would pollute every
        post-reset time-weighted mean.
        """
        for stat in self._stats.values():
            if isinstance(stat, TimeWeighted):
                stat.reset(now_ps)
            else:
                stat.reset()

    def as_dict(self, now_ps: Optional[int] = None) -> Dict[str, object]:
        """Flatten to plain numbers for reporting.

        Pass *now_ps* to close the measurement window of any
        :class:`TimeWeighted` trackers: their time-weighted ``mean`` is
        only defined up to a point in time.  Without one the mean is
        reported as an explicit 0.0 — downstream consumers (the metrics
        schema, report diffing) rely on every group exposing the same
        key set regardless of whether a tracker was ever updated.
        """
        out: Dict[str, object] = {}
        for name, stat in self._stats.items():
            if isinstance(stat, Counter):
                out[name] = stat.value
            elif isinstance(stat, Accumulator):
                out[name] = {
                    "count": stat.count,
                    "mean": stat.mean,
                    "stdev": stat.stdev,
                    "min": stat.min,
                    "max": stat.max,
                }
            elif isinstance(stat, Histogram):
                out[name] = {"samples": stat.samples,
                             "edges": list(stat.edges),
                             "bins": list(stat.bins)}
            elif isinstance(stat, TimeWeighted):
                out[name] = {
                    "peak": stat.peak,
                    "level": stat.level,
                    "mean": stat.mean(now_ps) if now_ps is not None else 0.0,
                }
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"StatGroup({self.owner}: {sorted(self._stats)})"
