"""Piranha: a scalable architecture based on single-chip multiprocessing.

A transaction-level, cycle-approximate reproduction of Barroso et al.,
ISCA 2000: the eight-core Piranha chip multiprocessor, its non-inclusive
two-level cache hierarchy with duplicate-L1-tag intra-chip coherence, the
microcoded home/remote protocol engines with the NAK-free inter-node
protocol (cruise-missile invalidates, eager exclusive replies, reply
forwarding), the hot-potato interconnect with DC-balanced links, the I/O
node architecture, and the baseline out-of-order / in-order processor
models — plus the synthetic OLTP / DSS / TPC-C workload models that stand
in for SimOS + Oracle, and the harness regenerating every evaluation
figure and table.

Quick start::

    from repro import PiranhaSystem, PIRANHA_P8, OltpWorkload

    system = PiranhaSystem(PIRANHA_P8)
    system.attach_workload(OltpWorkload(cpus_per_node=8))
    system.run_to_completion()
    print(system.execution_summary())
"""

from .core import (
    INO,
    OOO,
    PIRANHA_P1,
    PIRANHA_P2,
    PIRANHA_P4,
    PIRANHA_P8,
    PIRANHA_P8F,
    PIRANHA_P8_PESSIMISTIC,
    PRESETS,
    AccessKind,
    ChipConfig,
    CoherenceChecker,
    CoherenceViolation,
    MESI,
    PiranhaChip,
    PiranhaSystem,
    ReplySource,
    preset,
    table1,
)
from .harness import (
    RunResult,
    figure5,
    figure6a,
    figure6b,
    figure7,
    figure8,
    run_dss,
    run_oltp,
    run_tpcc,
)
from .sim import Clock, Simulator
from .workloads import (
    DssParams,
    DssWorkload,
    OltpParams,
    OltpWorkload,
    TpccWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "INO",
    "OOO",
    "PIRANHA_P1",
    "PIRANHA_P2",
    "PIRANHA_P4",
    "PIRANHA_P8",
    "PIRANHA_P8F",
    "PIRANHA_P8_PESSIMISTIC",
    "PRESETS",
    "AccessKind",
    "ChipConfig",
    "CoherenceChecker",
    "CoherenceViolation",
    "MESI",
    "PiranhaChip",
    "PiranhaSystem",
    "ReplySource",
    "preset",
    "table1",
    "RunResult",
    "figure5",
    "figure6a",
    "figure6b",
    "figure7",
    "figure8",
    "run_dss",
    "run_oltp",
    "run_tpcc",
    "Clock",
    "Simulator",
    "DssParams",
    "DssWorkload",
    "OltpParams",
    "OltpWorkload",
    "TpccWorkload",
    "__version__",
]
