"""Physical address geometry.

Piranha uses 64-byte cache lines throughout.  The shared L2 is interleaved
into eight banks using the low-order bits of a line's physical address
(Section 2.3), and in multi-chip systems the physical address space is
distributed across nodes ("homes") at a coarse page granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Cache-line size used by every cache level in Piranha (bytes).
LINE_BYTES = 64
LINE_SHIFT = 6
assert (1 << LINE_SHIFT) == LINE_BYTES


def line_addr(addr: int) -> int:
    """Align *addr* down to its cache-line base address."""
    return addr & ~(LINE_BYTES - 1)


def line_index(addr: int) -> int:
    """Return the line number (address >> 6) of *addr*."""
    return addr >> LINE_SHIFT

def line_offset(addr: int) -> int:
    """Byte offset of *addr* within its cache line."""
    return addr & (LINE_BYTES - 1)


def l2_bank(addr: int, banks: int = 8) -> int:
    """L2 bank selection: low-order bits of the *line* address (§2.3)."""
    if banks & (banks - 1):
        raise ValueError(f"bank count must be a power of two, got {banks}")
    return line_index(addr) & (banks - 1)


@dataclass(frozen=True)
class AddressMap:
    """Distribution of the physical address space across NUMA nodes.

    Homes are assigned by interleaving at ``home_granularity`` bytes (a
    coarse 8 KB "page" by default, so that a workload's data structures
    spread across nodes while lines within a structure share a home).
    """

    num_nodes: int = 1
    home_granularity: int = 8192

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("need at least one node")
        if self.num_nodes > 1024:
            raise ValueError("Piranha scales to at most 1024 nodes")
        if self.home_granularity < LINE_BYTES:
            raise ValueError("home granularity must be at least one line")
        if self.home_granularity & (self.home_granularity - 1):
            raise ValueError("home granularity must be a power of two")

    def home_of(self, addr: int) -> int:
        """Node id that is home for *addr*."""
        return (addr // self.home_granularity) % self.num_nodes

    def is_local(self, addr: int, node: int) -> bool:
        """True when *node* is the home of *addr*."""
        return self.home_of(addr) == node
