"""Physical-address helpers shared by all memory-system modules."""

from .addr import LINE_BYTES, LINE_SHIFT, AddressMap, l2_bank, line_addr, line_index, line_offset

__all__ = [
    "LINE_BYTES",
    "LINE_SHIFT",
    "AddressMap",
    "l2_bank",
    "line_addr",
    "line_index",
    "line_offset",
]
