"""Functional (event-free) warming of the memory hierarchy.

Fast-forward phases advance the machine *without the event queue*: work
items are pulled straight off each CPU's workload thread in batches and
their cache effects applied synchronously — L1 lookups (with their LRU /
silent-upgrade side effects), TLB touches, and for L1 misses the L2
bank's :meth:`~repro.core.l2.L2Bank.warm_request` mirror of the detailed
service path (duplicate tags, victim-cache flow, DRAM page state,
checker hooks).  No simulated time passes and no timing is charged; the
point is that a detailed measurement window opened right after a
fast-forward phase sees the L1s, L2, duplicate tags, directory and DRAM
row buffers in the state a monolithic run would have left them.

Batches are pulled as flat per-CPU reference-stream chunks so the
instruction accounting vectorises (numpy when available, plain Python
otherwise); the cache mutations themselves are inherently sequential.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Dict, Optional, Tuple

from ..core.cpu import WARMUP_DONE
from ..core.messages import AccessKind, request_for
from ..mem.addr import line_addr

try:  # numpy is optional: aggregation falls back to pure Python
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: work items pulled from a thread per batch during fast-forward periods
CHUNK_ITEMS = 2048


class FunctionalWarmer:
    """Event-free executor for workload reference streams.

    One warmer serves a whole sampled run; it keeps aggregate telemetry
    (items, instructions, references, warm-served vs declined misses)
    that the orchestrator surfaces under ``extras["sampling"]["warm"]``.
    """

    def __init__(self) -> None:
        self.items = 0
        self.instructions = 0
        self.refs = 0
        self.l1_hits = 0
        self.warmed = 0    # L1 misses served by the warm path
        self.skipped = 0   # L1 misses declined (not warm-eligible)
        self.skimmed = 0   # items consumed without cache application
        self.membars = 0

    def summary(self) -> Dict[str, int]:
        return {
            "items": self.items,
            "instructions": self.instructions,
            "refs": self.refs,
            "l1_hits": self.l1_hits,
            "warmed_misses": self.warmed,
            "skipped_misses": self.skipped,
            "skimmed_items": self.skimmed,
            "membars": self.membars,
        }

    # -- stream consumption ------------------------------------------------

    def collect(self, cpu, max_items: Optional[int] = None,
                stop_at_boundary: bool = False,
                tail: Optional[int] = None):
        """Consume items from *cpu*'s thread WITHOUT applying them yet.

        Counts instructions as it goes and keeps the last *tail* items
        (all of them when ``tail`` is None) for later application via
        :meth:`apply_interleaved` — items are plain tuples, so applying
        them after collection is identical to applying them at
        consumption time (the warm path is time-free).  Dropping all but
        the tail of a long span is the classic warming-window
        approximation: the recency state the next detailed window reads
        is rebuilt by the tail, while the skimmed prefix only costs
        stream generation (~1 µs/item instead of a full cache update).

        With ``stop_at_boundary=True`` consumption stops after the
        warm-up sentinel (which is never buffered).  Returns
        ``(buffered_items, consumed, hit_boundary, exhausted)``.
        """
        thread = cpu.thread
        consumed = 0
        hit_boundary = False
        exhausted = False
        buf = deque(maxlen=tail)
        if stop_at_boundary:
            instructions = 0
            for item in thread:
                consumed += 1
                if item[1] is None and item[2] == WARMUP_DONE:
                    hit_boundary = True
                    break
                instructions += item[0]
                buf.append(item)
            else:
                exhausted = True
            self.instructions += instructions
        else:
            remaining = int(max_items) if max_items is not None else -1
            while remaining:
                want = CHUNK_ITEMS if remaining < 0 else min(CHUNK_ITEMS,
                                                             remaining)
                batch = list(islice(thread, want))
                if not batch:
                    exhausted = True
                    break
                consumed += len(batch)
                if remaining > 0:
                    remaining -= len(batch)
                if _np is not None:
                    self.instructions += int(_np.fromiter(
                        (it[0] for it in batch), dtype=_np.int64,
                        count=len(batch)).sum())
                else:
                    self.instructions += sum(it[0] for it in batch)
                buf.extend(batch)
        self.items += consumed
        self.skimmed += consumed - len(buf)
        return buf, consumed, hit_boundary, exhausted

    def apply_interleaved(self, buffers, batch: int = 128) -> None:
        """Apply collected item buffers, round-robin across CPUs.

        *buffers* is a list of ``(cpu, items)`` pairs.  Interleaving in
        small batches matters for shared lines: applying one CPU's whole
        span before the next would leave every contended line owned by
        the last CPU processed, skewing the L1-forward mix the following
        detailed window measures.
        """
        work = []
        for cpu, items in buffers:
            chip = cpu.chip
            work.append((chip, cpu, chip.l1_of(cpu.cpu_id, True),
                         chip.l1_of(cpu.cpu_id, False), iter(items)))
        apply = self._apply
        while work:
            still = []
            for entry in work:
                chip, cpu, l1i, l1d, it = entry
                n = 0
                for item in it:
                    apply(chip, cpu, l1i, l1d, item)
                    n += 1
                    if n >= batch:
                        still.append(entry)
                        break
            work = still

    def advance(self, cpu, max_items: Optional[int] = None,
                stop_at_boundary: bool = False,
                tail: Optional[int] = None) -> Tuple[int, bool, bool]:
        """Collect-and-apply for a single CPU (no interleaving)."""
        buf, consumed, hit_boundary, exhausted = self.collect(
            cpu, max_items, stop_at_boundary, tail)
        self.apply_interleaved([(cpu, buf)])
        return consumed, hit_boundary, exhausted

    def _apply(self, chip, cpu, l1i, l1d, item) -> None:
        """Apply one work item's cache effects (no time, no events)."""
        _instrs, kind, addr, _dep = item
        if kind is None:
            return
        if kind == AccessKind.MEMBAR:
            # no eager-grant acks can be outstanding between events, so a
            # fence is an instant no-op here; keep its counter moving
            self.membars += 1
            cpu.c_membar.inc()
            return
        self.refs += 1
        is_instr = kind == AccessKind.IFETCH
        if cpu.tlb_refill_ps:
            tlb = cpu.itlb if is_instr else cpu.dtlb
            tlb.lookup(addr)
        l1 = l1i if is_instr else l1d
        result = l1.lookup(addr, kind)
        if result.hit:
            self.l1_hits += 1
            return
        if kind == AccessKind.WH64:
            cpu.c_wh64.inc()
        reqtype = request_for(kind, result.state)
        line = line_addr(addr)
        if chip.bank_for(addr).warm_request(
                cpu.cpu_id, is_instr, reqtype, line) is None:
            self.skipped += 1
        else:
            self.warmed += 1
