"""SMARTS-style sampled simulation: fast-forward + detailed windows.

A :class:`SampledRun` alternates two regimes over one built system:

* **fast-forward** — the :class:`~repro.fastforward.warm.FunctionalWarmer`
  consumes ``period`` work items per CPU off the reference streams,
  warming L1/L2/duplicate-tag/directory/DRAM state with no events and no
  timing, then jumps the clock statistically
  (:meth:`~repro.sim.engine.Simulator.advance_to`) using the per-item
  cycle rate observed in the last detailed window;
* **detailed window** — each CPU's thread is wrapped in a budget-limited
  :class:`PhaseStream` (``window`` items) and the full event-driven model
  runs to drain; per-CPU deltas of busy/stall time and the system miss
  breakdown are recorded as one measurement.

Between phases the machine is optionally round-tripped through the
checkpoint subsystem (:class:`~repro.checkpoint.machine.WindowHandoff`),
so every measurement window provably runs on a snapshot-restored
machine — that is the hand-off the bit-identity gate validates with
``warming="detailed"``, where fast-forward is replaced by running the
skipped spans through the detailed model too.

End-to-end metrics are ratio estimates over the windows; per-class 95%
confidence intervals (1.96·s/√n across windows) ride along in
``extras["sampling"]["error"]``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..checkpoint.machine import WindowHandoff
from ..core.cpu import WARMUP_DONE
from .warm import FunctionalWarmer

try:  # numpy is optional everywhere in this package
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

CpuKey = Tuple[int, int]  # (node_id, cpu_id)


class PhaseStream:
    """Budget-limited view of one CPU's workload thread for one phase.

    Installed as ``cpu.thread`` for the duration of a detailed phase; it
    delegates to the real thread (so ``emitted`` keeps counting and
    checkpoints stay consistent) and raises StopIteration when the
    phase's item budget is spent.  ``grant_until_warm`` instead hands
    items out up to and including the warm-up sentinel, which lets the
    detailed model run exactly the warm-up span as one phase.  ``ilp``
    mirrors the thread's so out-of-order CPUs keep their issue width.
    """

    def __init__(self, thread) -> None:
        self.thread = thread
        self.ilp = getattr(thread, "ilp", 1.0)
        self.budget = 0
        self.consumed = 0
        self.until_warm = False
        self.exhausted = False
        self._boundary_emitted = False

    def grant(self, items: int) -> None:
        self.budget = int(items)
        self.consumed = 0
        self.until_warm = False

    def grant_until_warm(self) -> None:
        self.until_warm = True
        self.consumed = 0
        self._boundary_emitted = False

    def __iter__(self) -> "PhaseStream":
        return self

    def __next__(self):
        if self.until_warm:
            if self._boundary_emitted:
                raise StopIteration
        elif self.budget <= 0:
            raise StopIteration
        try:
            item = next(self.thread)
        except StopIteration:
            self.exhausted = True
            self.budget = 0
            raise
        self.consumed += 1
        if self.until_warm:
            if item[1] is None and item[2] == WARMUP_DONE:
                self._boundary_emitted = True
        else:
            self.budget -= 1
        return item


class SampledRun:
    """Drive one system through warm-up, then window/period alternation.

    Parameters
    ----------
    window:
        work items per CPU per detailed measurement window.
    period:
        work items per CPU fast-forwarded between windows (0 disables
        fast-forward entirely: one window runs the remaining stream).
    warming:
        ``"functional"`` (default) warms via the event-free path;
        ``"detailed"`` runs warm-up and the inter-window spans through
        the full model too — same phase structure, no approximation —
        which is what the bit-identity gate compares against.
    handoff:
        ``"capture"`` (default) snapshots the machine at every window
        boundary through the checkpoint subsystem and keeps running the
        live machine — the boundary snapshot is the resumable hand-off
        artifact, and restore equivalence is proven by the bit-identity
        gate; ``"restore"`` additionally rebuilds the machine from each
        snapshot before the window runs (what the gate test does);
        ``"none"`` skips snapshots entirely.
    reuse_generators:
        with ``handoff="restore"``, move the live workload generators
        onto the restored threads instead of replaying them from seed
        (identical streams either way; replay is the slow, fully
        self-contained path the gate test exercises).
    warm_tail:
        per-CPU warming window for the *warm-up* span: ``None`` (default)
        applies every item's cache effects; an integer N skims all but
        the most recent N items (stream position and instruction counts
        only).  Warm-up state has long memory (the L2 victim cache is
        built from the whole span), so skimming here trades accuracy for
        speed steeply.  Ignored with ``warming="detailed"``.
    ff_tail:
        per-CPU warming window for the *inter-window* fast-forward
        periods, same convention (``None`` = apply everything, N = apply
        the last N, 0 = pure skim).  Between-window spans are short, so
        a small tail here is much cheaper in accuracy than ``warm_tail``.
    window_warm:
        detailed (unrecorded) items run per CPU immediately before each
        measurement window — SMARTS-style detailed warming that repairs
        any staleness a skimmed fast-forward period left behind.  0
        disables.
    skip_warm:
        the system was already warmed (e.g. restored from the warm
        checkpoint store at its boundary): skip straight to sampling.
    on_warm:
        callback invoked as ``on_warm(system)`` once the warm boundary
        is reached (event queue drained, CPUs parked) — the runner uses
        it to persist the warm state for later sampled runs.
    telemetry:
        optional :class:`~repro.observe.telemetry.TelemetryStream`; each
        measurement window emits a ``window`` record with its running
        per-class 95% CI half-widths (convergence visible live), and
        each window-boundary handoff capture a ``checkpoint`` record.
    """

    def __init__(self, system, window: int, period: int,
                 warming: str = "functional", handoff: str = "capture",
                 reuse_generators: bool = True,
                 warm_tail: Optional[int] = None,
                 ff_tail: Optional[int] = 1000,
                 window_warm: int = 0,
                 skip_warm: bool = False,
                 on_warm=None,
                 telemetry=None) -> None:
        if window <= 0:
            raise ValueError("window must be a positive item count")
        if period < 0:
            raise ValueError("period must be >= 0")
        if warm_tail is not None and warm_tail < 0:
            raise ValueError("warm_tail must be >= 0 or None")
        if ff_tail is not None and ff_tail < 0:
            raise ValueError("ff_tail must be >= 0 or None")
        if window_warm < 0:
            raise ValueError("window_warm must be >= 0")
        if warming not in ("functional", "detailed"):
            raise ValueError(f"unknown warming mode {warming!r}")
        if handoff not in ("restore", "capture", "none"):
            raise ValueError(f"unknown handoff mode {handoff!r}")
        self.system = system
        self.window = int(window)
        self.period = int(period)
        self.warming = warming
        self.warm_tail = None if warm_tail is None else int(warm_tail)
        self.ff_tail = None if ff_tail is None else int(ff_tail)
        self.window_warm = int(window_warm)
        self.skip_warm = bool(skip_warm)
        self.on_warm = on_warm
        self.telemetry = telemetry
        self._handoff_mode = handoff
        self.handoff: Optional[WindowHandoff] = (
            None if handoff == "none"
            else WindowHandoff(reuse_generators=reuse_generators))
        self.warmer = FunctionalWarmer()
        self.windows: List[Dict[str, object]] = []
        self.measured_items = 0
        self.ff_items = 0
        self._exhausted: set = set()
        self._rate: Dict[CpuKey, float] = {}     # ps per item, last window
        self._est_ps: Dict[CpuKey, float] = {}   # estimated post-warm time
        self._ran = False

    # -- bookkeeping helpers ----------------------------------------------

    @staticmethod
    def _key(cpu) -> CpuKey:
        return (cpu.chip.node_id, cpu.cpu_id)

    def _live(self) -> list:
        out = []
        for node in self.system.nodes:
            for cpu in node.cpus:
                if cpu.thread is None:
                    continue
                if (node.node_id, cpu.cpu_id) in self._exhausted:
                    continue
                out.append(cpu)
        return out

    def _settle_warm_state(self) -> None:
        """Drain warm-path protocol events and drop any DRAM channel
        backlog the warm phase stacked at the frozen clock (eviction
        write-backs route through the detailed channel path)."""
        system = self.system
        system.sim.run()
        for node in system.nodes:
            for mc in node.mcs:
                mc.channel.forgive_backlog()

    # -- warm-up -----------------------------------------------------------

    def _functional_warm(self) -> None:
        """Consume each thread through its warm-up sentinel event-free,
        then reproduce the monolithic warm-boundary reset."""
        system = self.system
        buffers = []
        for cpu in self._live():
            buf, consumed, _hit, exhausted = self.warmer.collect(
                cpu, stop_at_boundary=True, tail=self.warm_tail)
            buffers.append((cpu, buf))
            self.ff_items += consumed
            if exhausted:
                self._exhausted.add(self._key(cpu))
        self.warmer.apply_interleaved(buffers)
        self._settle_warm_state()
        for node in system.nodes:
            for cpu in node.cpus:
                if cpu.thread is not None:
                    cpu.reset_accounting()
        system._warmed_cpus = sum(
            1 for n in system.nodes for c in n.cpus if c.thread is not None)
        system.reset_module_stats()
        if system.on_warm_boundary is not None:
            callback, system.on_warm_boundary = system.on_warm_boundary, None
            callback()

    # -- detailed phases ---------------------------------------------------

    def _start_cpus(self, system, cpus) -> None:
        """Restart parked CPUs for one phase, mirroring what
        ``System.start``/``Chip.start_cpus`` do for the first run."""
        for cpu in cpus:
            cpu.finished = False
            cpu.finish_time = None
            if hasattr(cpu, "_drained_cb"):
                cpu._drained_cb = False
                cpu._blocked = False
                cpu._draining_fence = False
            cpu.chip._cpus_running += 1
            system._running_cpus += 1
            cpu.start()
        system._started = True
        if system._audit_interval_ps and system._running_cpus:
            system.sim.schedule_every(system._audit_interval_ps,
                                      system._continuous_audit)
        if system.sampler is not None and system._running_cpus:
            if not system.sampler._started:
                system.sampler.start()
            else:
                # the fast-forwarded span shows up as one partial
                # interval; the ticker chain ended with the last drain
                system.sampler.flush()
                system.sim.schedule_every(system.sampler.interval_ps,
                                          system.sampler.tick)

    def _run_detailed(self, budget: Optional[int], until_warm: bool,
                      record: bool) -> None:
        system = self.system
        cpus = self._live()
        if not cpus:
            return
        pre = self._measure_pre(system, cpus) if record else None
        totals0 = {self._key(c): c.total_ps for c in cpus}
        streams = []
        for cpu in cpus:
            stream = PhaseStream(cpu.thread)
            if until_warm:
                stream.grant_until_warm()
            else:
                stream.grant(budget)
            cpu.thread = stream
            streams.append((cpu, stream))
        self._start_cpus(system, cpus)
        system.sim.run()
        if system._running_cpus != 0:
            raise RuntimeError(
                f"sampled phase stalled with {system._running_cpus} "
                f"CPUs still running")
        consumed: Dict[CpuKey, int] = {}
        for cpu, stream in streams:
            cpu.thread = stream.thread
            key = self._key(cpu)
            consumed[key] = stream.consumed
            if record:
                self.measured_items += stream.consumed
            else:
                self.ff_items += stream.consumed
            if stream.exhausted:
                self._exhausted.add(key)
        for cpu in cpus:
            key = self._key(cpu)
            if until_warm:
                # accounting was reset at the warm boundary mid-phase;
                # the post-boundary contribution is what remains on the
                # counters now (normally zero)
                self._est_ps[key] = float(cpu.total_ps)
            else:
                delta = cpu.total_ps - totals0[key]
                self._est_ps[key] = self._est_ps.get(key, 0.0) + delta
                if record and consumed[key]:
                    self._rate[key] = delta / consumed[key]
        if record:
            self._measure_post(system, cpus, pre, consumed)

    def _measure_pre(self, system, cpus) -> Dict[str, object]:
        return {
            "cpu": {self._key(c): (c.busy_ps, c.stall_on_chip_ps,
                                   c.stall_memory_ps, c.instructions)
                    for c in cpus},
            "mb": dict(system.miss_breakdown()),
        }

    def _measure_post(self, system, cpus, pre, consumed) -> None:
        busy = onchip = mem = instrs = items = 0
        for cpu in cpus:
            key = self._key(cpu)
            b0, o0, m0, i0 = pre["cpu"][key]
            busy += cpu.busy_ps - b0
            onchip += cpu.stall_on_chip_ps - o0
            mem += cpu.stall_memory_ps - m0
            instrs += cpu.instructions - i0
            items += consumed[key]
        mb0, mb1 = pre["mb"], system.miss_breakdown()
        self.windows.append({
            "index": len(self.windows),
            "items": items,
            "instructions": instrs,
            "busy_ps": busy,
            "onchip_ps": onchip,
            "mem_ps": mem,
            "miss": {k: mb1[k] - mb0.get(k, 0) for k in mb1},
        })
        if self.telemetry is not None:
            # running CI half-widths over the windows so far: a watcher
            # sees convergence (or its absence) while the run is live
            self.telemetry.emit(
                "window", index=len(self.windows) - 1, items=items,
                windows=len(self.windows),
                ci={name: stats["rel_err"]
                    for name, stats in self.error_bounds().items()
                    if stats["n"] > 1})

    # -- fast-forward ------------------------------------------------------

    def _fast_forward(self, items: int) -> None:
        system = self.system
        advance = 0
        buffers = []
        for cpu in self._live():
            key = self._key(cpu)
            buf, consumed, _hit, exhausted = self.warmer.collect(
                cpu, max_items=items, tail=self.ff_tail)
            buffers.append((cpu, buf))
            self.ff_items += consumed
            est = consumed * self._rate.get(key, 0.0)
            self._est_ps[key] = self._est_ps.get(key, 0.0) + est
            advance = max(advance, int(est))
            if exhausted:
                self._exhausted.add(key)
        self.warmer.apply_interleaved(buffers)
        # the warm path may have scheduled protocol events (multi-node
        # remote write-backs): drain them before jumping the clock
        self._settle_warm_state()
        if advance:
            system.sim.advance_to(system.sim.now + advance)

    # -- driver ------------------------------------------------------------

    def run(self) -> List[Dict[str, object]]:
        if self._ran:
            raise RuntimeError("SampledRun.run() is single-shot")
        self._ran = True
        if not self.skip_warm:
            if self.warming == "functional":
                self._functional_warm()
            else:
                self._run_detailed(None, until_warm=True, record=False)
            if self.on_warm is not None:
                self.on_warm(self.system)
        while self._live():
            if self._handoff_mode == "restore":
                self.system = self.handoff.handoff(self.system)
            elif self._handoff_mode == "capture":
                self.handoff.capture(self.system)
            if self.telemetry is not None and self.handoff is not None:
                self.telemetry.emit(
                    "checkpoint", time_ps=self.system.sim.now,
                    captures=self.handoff.captures,
                    bytes=self.handoff.bytes_total)
            if self.window_warm and self.windows:
                # detailed warming ahead of the window proper: repairs
                # staleness left by a skimmed fast-forward period
                self._run_detailed(self.window_warm, until_warm=False,
                                   record=False)
            self._run_detailed(self.window, until_warm=False, record=True)
            if not self._live() or not self.period:
                break
            if self.warming == "functional":
                self._fast_forward(self.period)
            else:
                self._run_detailed(self.period, until_warm=False,
                                   record=False)
        if self.system.sampler is not None:
            self.system.sampler.finalize()
        return self.windows

    # -- statistics --------------------------------------------------------

    @staticmethod
    def _mean_ci(vals: List[float]) -> Dict[str, float]:
        n = len(vals)
        if n == 0:
            return {"n": 0, "mean": 0.0, "ci95": 0.0, "rel_err": 0.0}
        if _np is not None:
            arr = _np.asarray(vals, dtype=float)
            mean = float(arr.mean())
            sd = float(arr.std(ddof=1)) if n > 1 else 0.0
        else:
            mean = sum(vals) / n
            sd = (math.fsum((v - mean) ** 2 for v in vals)
                  / (n - 1)) ** 0.5 if n > 1 else 0.0
        ci = 1.96 * sd / math.sqrt(n) if n > 1 else 0.0
        return {"n": n, "mean": mean, "ci95": ci,
                "rel_err": ci / abs(mean) if mean else 0.0}

    def error_bounds(self) -> Dict[str, Dict[str, float]]:
        """Per-metric-class 95% confidence intervals across windows."""
        obs: Dict[str, List[float]] = {
            "busy_frac": [], "l2_frac": [], "mem_frac": [],
            "miss_hit_frac": [], "miss_fwd_frac": [], "miss_mem_frac": [],
            "ps_per_item": [],
        }
        for w in self.windows:
            total = w["busy_ps"] + w["onchip_ps"] + w["mem_ps"]
            if total > 0:
                obs["busy_frac"].append(w["busy_ps"] / total)
                obs["l2_frac"].append(w["onchip_ps"] / total)
                obs["mem_frac"].append(w["mem_ps"] / total)
            if w["items"]:
                obs["ps_per_item"].append(total / w["items"])
            miss = w["miss"]
            served = sum(miss.values())
            if served > 0:
                obs["miss_hit_frac"].append(miss.get("l2_hit", 0) / served)
                obs["miss_fwd_frac"].append(miss.get("l2_fwd", 0) / served)
                obs["miss_mem_frac"].append(miss.get("l2_miss", 0) / served)
        return {name: self._mean_ci(vals) for name, vals in obs.items()}

    def sampling_summary(self) -> Dict[str, object]:
        return {
            "mode": "sampled",
            "warming": self.warming,
            "window": self.window,
            "period": self.period,
            "warm_tail": self.warm_tail,
            "ff_tail": self.ff_tail,
            "window_warm": self.window_warm,
            "skip_warm": self.skip_warm,
            "windows": len(self.windows),
            "measured_items": self.measured_items,
            "ff_items": self.ff_items,
            "handoffs": self.handoff.captures if self.handoff else 0,
            "handoff_bytes": self.handoff.bytes_total if self.handoff else 0,
            "warm": self.warmer.summary(),
            "error": self.error_bounds(),
        }

    # -- result assembly ---------------------------------------------------

    def to_result(self, config, num_nodes: int,
                  units_attr: str = "transactions",
                  probe_rate: int = 0, sample_interval_ps: int = 0,
                  wall: float = 0.0):
        """Build a :class:`~repro.harness.runner.RunResult` whose totals
        are the sampled (extrapolated) estimates."""
        from ..harness.runner import RunResult

        system = self.system
        workload = system.workload
        sanitizer: Dict[str, object] = {}
        if system.checker is not None:
            sanitizer = dict(system.verify())
        busy = sum(w["busy_ps"] for w in self.windows)
        onchip = sum(w["onchip_ps"] for w in self.windows)
        mem = sum(w["mem_ps"] for w in self.windows)
        total = (busy + onchip + mem) or 1
        miss: Dict[str, int] = {}
        for w in self.windows:
            for k, v in w["miss"].items():
                miss[k] = miss.get(k, 0) + v
        served = sum(miss.values()) or 1
        units = getattr(workload.params, units_attr)
        per_cpu_ps = max(self._est_ps.values()) if self._est_ps else 0.0
        time_per_unit_ns = per_cpu_ps / units / 1000.0 if units else 0.0
        total_cpus = config.cpus * num_nodes
        throughput = (total_cpus * 1e9 / time_per_unit_ns
                      if time_per_unit_ns else 0.0)
        result = RunResult(
            config=config.name,
            cpus=config.cpus,
            nodes=num_nodes,
            workload=getattr(workload, "name", "?"),
            units=units,
            time_per_unit_ns=time_per_unit_ns,
            throughput=throughput,
            busy_frac=busy / total,
            l2_frac=onchip / total,
            mem_frac=mem / total,
            miss_hit_frac=miss.get("l2_hit", 0) / served,
            miss_fwd_frac=miss.get("l2_fwd", 0) / served,
            miss_mem_frac=miss.get("l2_miss", 0) / served,
            sim_wall_s=wall,
            extras=dict(sanitizer),
        )
        result.extras["sampling"] = self.sampling_summary()
        if probe_rate or sample_interval_ps:
            from ..harness.metrics import metrics_doc

            result.extras["metrics"] = metrics_doc(
                system, result, probe_rate, sample_interval_ps)
        post = getattr(workload, "post_run", None)
        if post is not None:
            post(system, result)
        return result


def run_sampled(system, window: int, period: int,
                warming: str = "functional", handoff: str = "restore",
                reuse_generators: bool = True, **kw) -> SampledRun:
    """Convenience wrapper: build, run, and return a :class:`SampledRun`."""
    run = SampledRun(system, window, period, warming=warming,
                     handoff=handoff, reuse_generators=reuse_generators, **kw)
    run.run()
    return run
