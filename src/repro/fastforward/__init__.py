"""Fast-forward / sampled-simulation subsystem (SMARTS-style).

Alternates event-free functional warming of the memory hierarchy with
short detailed measurement windows, handing off between the two through
the checkpoint subsystem, and reports per-metric-class confidence
intervals for the sampled estimates.
"""

from .orchestrator import PhaseStream, SampledRun, run_sampled
from .warm import CHUNK_ITEMS, FunctionalWarmer

__all__ = [
    "CHUNK_ITEMS",
    "FunctionalWarmer",
    "PhaseStream",
    "SampledRun",
    "run_sampled",
]
