"""Causal span tracer: transaction timelines from probe hop stamps.

:class:`~repro.core.probe.TxnProbe` already records the full causal
history of a sampled coherence transaction as ordered ``(label,
time_ps)`` stamps.  The :class:`SpanCollector` promotes each completed
probe into a *span tree*: one root span covering the whole miss
(issue → fill) with one child span per consecutive stamp pair, each
assigned to a component **track** (cpu, l2 bank, protocol engine,
router, RDRAM channel, ...).  Because each child span is the delta
between two stamps — assigned to the *later* stamp's label, exactly
like :meth:`TxnProbe.hop_decomposition` — the children partition the
root span with no gaps and no overlap, and the sum of child durations
equals the end-to-end latency by construction (tested as an invariant
against the probe latency histograms).

Export is a single ``repro-trace/1`` JSON document that is
*simultaneously* valid Chrome trace-event / Perfetto input: the Chrome
JSON object format ignores unknown top-level keys, so the document
carries both the structured ``txns`` span trees (for tooling and the
validator) and a ``traceEvents`` array (for ``ui.perfetto.dev`` /
``chrome://tracing``).  In the viewer each node is a process row and
each component track a thread row; the root span renders on a ``txn``
track above its children.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..sim.engine import PS_PER_NS

#: Schema identifier carried in (and checked against) every trace doc.
TRACE_SCHEMA = "repro-trace/1"

#: Hop label → component track.  Tracks group spans into per-component
#: timeline rows; unknown labels fall into "misc" rather than failing,
#: so new stamp points degrade gracefully.
HOP_TRACKS: Dict[str, str] = {
    "issue": "cpu",
    "bank": "l2_bank",
    "l2_tag": "l2_bank",
    "l2_data": "l2_bank",
    "fwd_owner": "owner_l1",
    "mem_data": "rdram",
    "owner_fetch": "owner_node",
    "pe_dispatch": "protocol_engine",
    "pkt_send": "network_if",
    "pkt_recv": "network_if",
    "pkt_transit": "router",
    "fill": "l1_fill",
}

#: Track display order: "txn" is the root-span row, then components in
#: roughly the order a remote miss visits them.  Doubles as the tid
#: assignment for the Chrome export (index in this tuple).
TRACKS = (
    "txn", "cpu", "l2_bank", "protocol_engine", "network_if", "router",
    "owner_node", "owner_l1", "rdram", "l1_fill", "misc",
)

_TRACK_TID = {name: i for i, name in enumerate(TRACKS)}


class SpanCollector:
    """Builds one span tree per completed probe, up to ``max_txns``.

    Installed as the :class:`~repro.core.probe.ProbeCollector`'s
    ``on_finish`` hook by :meth:`PiranhaSystem.enable_span_trace`; runs
    only for probed transactions (1-in-``rate`` of misses), so the
    untagged hot path is untouched.  Like the collector's verbatim
    samples, txn records deliberately omit the process-global ``txn_id``
    so the trace document is deterministic across serial / parallel /
    cached execution paths.
    """

    def __init__(self, max_txns: int = 256) -> None:
        if max_txns < 1:
            raise ValueError(f"max_txns must be >= 1, got {max_txns}")
        self.max_txns = int(max_txns)
        self.seen = 0
        self.txns: List[Dict[str, object]] = []

    # -- collection ------------------------------------------------------

    def on_probe_finish(self, probe, source, cls: str) -> None:
        """ProbeCollector.finish hook: promote *probe* into a span tree."""
        self.seen += 1
        if len(self.txns) >= self.max_txns:
            return
        stamps = probe.stamps
        t0 = stamps[0][1]
        t1 = stamps[-1][1]
        spans: List[Dict[str, object]] = []
        prev_t = t0
        for label, t in stamps[1:]:
            # Zero-duration spans are kept: dropping them would break the
            # "children partition the root" invariant that the validator
            # and the reconcile test rely on.
            spans.append({
                "label": label,
                "track": HOP_TRACKS.get(label, "misc"),
                "t0_ps": prev_t,
                "t1_ps": t,
                "dur_ps": t - prev_t,
            })
            prev_t = t
        self.txns.append({
            "seq": self.seen,
            "node": probe.node,
            "cpu": probe.cpu_id,
            "class": cls,
            "source": source.name.lower(),
            "reqtype": probe.reqtype.name.lower(),
            "t0_ps": t0,
            "t1_ps": t1,
            "latency_ps": t1 - t0,
            "spans": spans,
            "notes": dict(probe.notes),
        })

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Drop warm-up transactions (module-stats reset boundary)."""
        self.seen = 0
        self.txns = []

    # -- checkpoint/restore ----------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)

    def load_state(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    def __getstate__(self) -> Dict[str, object]:
        return self.state_dict()

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.load_state(state)

    # -- export ----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "max_txns": self.max_txns,
            "seen": self.seen,
            "kept": len(self.txns),
            "txns": self.txns,
        }


# -- Chrome trace-event export -------------------------------------------

def chrome_events(txns: List[Dict[str, object]],
                  protocol_events: Optional[List] = None) -> List[Dict]:
    """Render span trees as Chrome trace-event dicts.

    Layout: ``pid`` = Piranha node, ``tid`` = component track (per
    :data:`TRACKS`).  Each transaction emits one complete ("X") root
    event on the ``txn`` track plus one "X" child per span on its
    component track.  Timestamps are microseconds of *simulated* time
    (Chrome's ``ts`` unit), durations likewise — fractional µs keeps
    full picosecond precision as Perfetto parses doubles into ns.

    *protocol_events* (optional :class:`~repro.core.trace.TraceEvent`
    records) become instant ("i") markers on the protocol-engine track,
    giving the timeline fills/invals/dispatches context between spans.
    """
    _ps_to_us = 1.0 / (PS_PER_NS * 1000.0)
    events: List[Dict] = []
    nodes = sorted({t["node"] for t in txns})
    if protocol_events:
        nodes = sorted(set(nodes) | {ev.node for ev in protocol_events})
    for node in nodes:
        events.append({
            "name": "process_name", "ph": "M", "pid": node, "tid": 0,
            "args": {"name": f"node {node}"},
        })
        for track, tid in _TRACK_TID.items():
            events.append({
                "name": "thread_name", "ph": "M", "pid": node, "tid": tid,
                "args": {"name": track},
            })
            events.append({
                "name": "thread_sort_index", "ph": "M", "pid": node,
                "tid": tid, "args": {"sort_index": tid},
            })
    for txn in txns:
        pid = txn["node"]
        root_args = {
            "class": txn["class"], "source": txn["source"],
            "reqtype": txn["reqtype"], "cpu": txn["cpu"],
            "latency_ns": txn["latency_ps"] / PS_PER_NS,
        }
        root_args.update(txn.get("notes") or {})
        events.append({
            "name": f"{txn['class']} miss",
            "cat": txn["class"],
            "ph": "X",
            "ts": txn["t0_ps"] * _ps_to_us,
            "dur": txn["latency_ps"] * _ps_to_us,
            "pid": pid,
            "tid": _TRACK_TID["txn"],
            "args": root_args,
        })
        for span in txn["spans"]:
            events.append({
                "name": span["label"],
                "cat": txn["class"],
                "ph": "X",
                "ts": span["t0_ps"] * _ps_to_us,
                "dur": span["dur_ps"] * _ps_to_us,
                "pid": pid,
                "tid": _TRACK_TID.get(span["track"], _TRACK_TID["misc"]),
                "args": {"txn_seq": txn["seq"]},
            })
    if protocol_events:
        pe_tid = _TRACK_TID["protocol_engine"]
        for ev in protocol_events:
            events.append({
                "name": ev.kind,
                "cat": "protocol",
                "ph": "i",
                "s": "t",
                "ts": ev.time_ps * _ps_to_us,
                "pid": ev.node,
                "tid": pe_tid,
                "args": {"line": ev.line, "detail": ev.detail},
            })
    return events


def trace_doc(spans: SpanCollector, config: str, num_nodes: int,
              probe_rate: int,
              protocol_events: Optional[List] = None) -> Dict[str, object]:
    """Assemble the ``repro-trace/1`` document.

    One document, two audiences: ``txns`` holds the structured span
    trees (schema-validated, machine-consumable), ``traceEvents`` the
    Chrome rendering of the same data.  Both Perfetto and
    ``chrome://tracing`` accept the object format with extra top-level
    keys, so the file loads in a viewer unmodified.
    """
    return {
        "schema": TRACE_SCHEMA,
        "config": config,
        "num_nodes": num_nodes,
        "probe_rate": probe_rate,
        "time_unit": "ps",
        "displayTimeUnit": "ns",
        "tracks": list(TRACKS),
        "max_txns": spans.max_txns,
        "seen": spans.seen,
        "kept": len(spans.txns),
        "txns": spans.txns,
        "traceEvents": chrome_events(spans.txns, protocol_events),
    }


def write_trace(path: str, doc: Dict[str, object]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")


# -- validation ----------------------------------------------------------

_TXN_KEYS = ("seq", "node", "cpu", "class", "source", "reqtype",
             "t0_ps", "t1_ps", "latency_ps", "spans", "notes")
_SPAN_KEYS = ("label", "track", "t0_ps", "t1_ps", "dur_ps")


def validate_trace(doc: Dict[str, object]) -> List[str]:
    """Check *doc* against ``repro-trace/1``; return a list of problems
    (empty == valid).  Mirrors ``validate_metrics``'s contract so the
    two validators compose in CI.

    Beyond shape, this enforces the causal invariants the tracer
    guarantees: within each transaction the child spans are contiguous
    (span[i].t1 == span[i+1].t0), cover exactly [t0, t1], have
    non-negative durations, and their durations sum to ``latency_ps``.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != TRACE_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {TRACE_SCHEMA!r}")
    for key in ("config", "num_nodes", "probe_rate", "tracks", "txns",
                "traceEvents"):
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    txns = doc.get("txns")
    if not isinstance(txns, list):
        problems.append("txns is not a list")
        txns = []
    known_tracks = set(doc.get("tracks") or TRACKS)
    for i, txn in enumerate(txns):
        where = f"txns[{i}]"
        if not isinstance(txn, dict):
            problems.append(f"{where} is not an object")
            continue
        for key in _TXN_KEYS:
            if key not in txn:
                problems.append(f"{where} missing key {key!r}")
        spans = txn.get("spans")
        if not isinstance(spans, list) or not spans:
            problems.append(f"{where}.spans missing or empty")
            continue
        t0, t1 = txn.get("t0_ps"), txn.get("t1_ps")
        lat = txn.get("latency_ps")
        if t0 is None or t1 is None or lat is None:
            continue
        if t1 - t0 != lat:
            problems.append(f"{where}: latency_ps {lat} != t1-t0 {t1 - t0}")
        prev_t = t0
        dur_sum = 0
        for j, span in enumerate(spans):
            swhere = f"{where}.spans[{j}]"
            for key in _SPAN_KEYS:
                if key not in span:
                    problems.append(f"{swhere} missing key {key!r}")
            if span.get("track") not in known_tracks:
                problems.append(
                    f"{swhere} unknown track {span.get('track')!r}")
            s0, s1, dur = (span.get("t0_ps"), span.get("t1_ps"),
                           span.get("dur_ps"))
            if s0 is None or s1 is None or dur is None:
                continue
            if s0 != prev_t:
                problems.append(
                    f"{swhere} not contiguous: t0_ps {s0} != prev t1 {prev_t}")
            if s1 - s0 != dur:
                problems.append(f"{swhere}: dur_ps {dur} != t1-t0 {s1 - s0}")
            if dur < 0:
                problems.append(f"{swhere}: negative duration {dur}")
            prev_t = s1
            dur_sum += dur
        if prev_t != t1:
            problems.append(
                f"{where}: spans end at {prev_t}, txn ends at {t1}")
        if dur_sum != lat:
            problems.append(
                f"{where}: span durations sum to {dur_sum}, "
                f"latency_ps is {lat}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        problems.append("traceEvents is not a list")
    else:
        for i, ev in enumerate(events):
            if not isinstance(ev, dict) or "ph" not in ev or "pid" not in ev:
                problems.append(f"traceEvents[{i}] malformed")
                break
            if ev["ph"] == "X" and ("ts" not in ev or "dur" not in ev):
                problems.append(f"traceEvents[{i}] 'X' event missing ts/dur")
                break
    return problems
