"""Live run telemetry: heartbeat / progress JSONL stream.

A running simulation is a black box from the outside — the interval
sampler, sampled-window CI bounds and checkpoint cadence all exist *in*
the process but are only visible after the run ends.
:class:`TelemetryStream` flips that: hooked into the harness, it writes
one flushed JSON line per event to a file, fd, or file-like object, so
an operator (or the future job-server's subscribers — see ROADMAP
"simulation-as-a-service") can follow the run live with ``repro watch``.

Record kinds, all carrying ``{"kind": ..., "wall": <unix seconds>}``:

``run_start``
    config/workload/nodes banner, emitted before the first event fires.
``interval``
    one interval-sampler record (deltas + derived IPC/miss gauges),
    emitted from the sampler's ``on_record`` hook as the simulation
    crosses each sampling period.
``window``
    one sampled-mode measurement window with running per-class 95% CI
    half-widths — convergence is visible while the run is in flight.
``checkpoint``
    a periodic checkpointer capture (simulated time + snapshot size).
``run_end``
    terminal record with exit summary; ``repro watch`` stops here.
``job_queued`` / ``job_preempted`` / ``job_resumed``
    service lifecycle markers (see :mod:`repro.service`): the job
    entered the server queue, was checkpoint-suspended for a
    higher-priority job, or resumed from its suspend snapshot.  They
    ride the same per-job stream as the run records, so a subscriber
    attached via ``repro attach`` sees scheduling and simulation
    progress interleaved in causal order.

Streams are host-side observers: they are never part of the
deterministic result payload, never pickled into checkpoints (the
sampler's ``state_dict`` strips its ``on_record`` hook), and their
settings fold into the result-cache key only as an enable marker — a
cache hit answers without re-streaming, which the CLI reports.

Readers are torn-line safe: the writer flushes whole lines, but a
reader polling the file can still observe a *partial* final line —
including one cut mid-way through a multi-byte UTF-8 sequence, which a
text-mode read would turn into a :class:`UnicodeDecodeError` rather
than a skippable bad line.  Both :func:`read_records` and
:func:`follow_records` therefore read *bytes*, split on newlines, and
decode/parse only complete lines; the unfinished tail is retried on the
next poll instead of raised.
"""

from __future__ import annotations

import io
import json
import os
import time
from typing import Dict, Iterator, List, Optional, Union

Target = Union[str, int, io.IOBase]


class TelemetryStream:
    """Writes telemetry records as JSON lines to a path, fd, or file.

    *append* opens a path target in append mode instead of truncating —
    a resumed service job continues the telemetry stream its suspended
    incarnation started, so subscribers see one continuous record
    sequence across a preempt/resume round-trip.
    """

    def __init__(self, target: Target, append: bool = False) -> None:
        self._owns = False
        mode = "a" if append else "w"
        if isinstance(target, str):
            self._fh = open(target, mode, encoding="utf-8")
            self._owns = True
        elif isinstance(target, int):
            self._fh = os.fdopen(target, mode, encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
        self.records_written = 0

    def emit(self, kind: str, **fields) -> None:
        """Write one record; flushes so a tailing reader sees it now."""
        record: Dict[str, object] = {"kind": kind, "wall": time.time()}
        record.update(fields)
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        self.records_written += 1

    # Hook adapters ------------------------------------------------------

    def on_interval(self, record: Dict[str, object]) -> None:
        """IntervalSampler ``on_record`` hook."""
        self.emit("interval", **record)

    def close(self) -> None:
        """Flush (always) and close (if this stream opened the handle).

        The flush covers non-owned targets too: a caller handing in a
        buffered file object gets its terminal ``run_end`` pushed to
        disk here even if it never closes the handle itself — a watcher
        tailing the file must not hang on a finished stream whose last
        line is stuck in a userspace buffer.
        """
        if not self._fh.closed:
            try:
                self._fh.flush()
            except (OSError, ValueError):
                pass
        if self._owns and not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "TelemetryStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- consumption (repro watch / repro attach) ----------------------------

def parse_line(line: bytes) -> Optional[Dict[str, object]]:
    """Decode and parse one raw JSONL line; None for blank/torn lines.

    Tolerates every way a racing reader can catch the writer mid-line:
    truncated JSON, a half-written multi-byte UTF-8 sequence, or a line
    that is not a JSON object at all.  The caller retries torn lines on
    its next poll (:func:`follow_records`) or simply skips them
    (:func:`read_records`).
    """
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) else None


def read_records(path: str) -> List[Dict[str, object]]:
    """Parse every complete record currently in the file.  A partially
    written trailing line (reader racing the writer) is skipped — the
    file is read as bytes, so a line cut inside a multi-byte UTF-8
    sequence skips like any other torn line instead of raising."""
    records: List[Dict[str, object]] = []
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return records
    for line in data.split(b"\n"):
        record = parse_line(line)
        if record is not None:
            records.append(record)
    return records


def follow_records(path: str, timeout_s: float = 30.0,
                   poll_s: float = 0.2) -> Iterator[Dict[str, object]]:
    """Yield records as they appear, like ``tail -f``.

    Stops at a ``run_end`` record, or after *timeout_s* with no new
    record (covers a writer that died without a terminal record).

    The file is polled in *binary* mode with only complete lines
    decoded: a partially-flushed final line — even one split inside a
    multi-byte UTF-8 character, which a text-mode read would raise on —
    stays buffered as the unfinished tail and is re-parsed once the
    writer completes it.
    """
    offset = 0
    deadline = time.monotonic() + timeout_s
    buf = b""
    while True:
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                chunk = fh.read()
                offset = fh.tell()
        except FileNotFoundError:
            chunk = b""
        if chunk:
            deadline = time.monotonic() + timeout_s
            buf += chunk
            while b"\n" in buf:
                line, buf = buf.split(b"\n", 1)
                record = parse_line(line)
                if record is None:
                    continue
                yield record
                if record.get("kind") == "run_end":
                    return
        if time.monotonic() > deadline:
            return
        time.sleep(poll_s)


def render_record(record: Dict[str, object]) -> str:
    """One-line human rendering for the ``repro watch`` console."""
    kind = record.get("kind", "?")
    if kind == "run_start":
        return (f"run_start  config={record.get('config')} "
                f"workload={record.get('workload')} "
                f"nodes={record.get('num_nodes')} "
                f"mode={record.get('mode', 'detailed')}")
    if kind == "interval":
        t1 = record.get("t1_ps", 0)
        derived = record.get("derived") or {}
        bits = [f"interval[{record.get('index')}]",
                f"t={t1 / 1e6:.1f}us" if isinstance(t1, (int, float)) else ""]
        for key in ("ipc", "l1_miss_rate", "l2_miss_rate"):
            if key in derived:
                bits.append(f"{key}={derived[key]:.4f}")
        if record.get("partial"):
            bits.append("(partial)")
        if record.get("reset"):
            bits.append("(reset)")
        return "  ".join(b for b in bits if b)
    if kind == "window":
        ci = record.get("ci") or {}
        worst = max((v for v in ci.values()
                     if isinstance(v, (int, float))), default=None)
        tail = f"worst_ci={worst:.4f}" if worst is not None else "ci=n/a"
        return (f"window[{record.get('index')}]  "
                f"items={record.get('items')}  {tail}")
    if kind == "checkpoint":
        return (f"checkpoint  t={record.get('time_ps', 0) / 1e6:.1f}us  "
                f"bytes={record.get('bytes')}")
    if kind == "run_end":
        return (f"run_end  items={record.get('items')}  "
                f"sim_wall_s={record.get('sim_wall_s', 0):.2f}"
                + ("  (cached)" if record.get("cached") else ""))
    if kind == "job_queued":
        return (f"job_queued  job={record.get('job_id')} "
                f"priority={record.get('priority')} "
                f"kind={record.get('job_kind')}"
                + (f"  dedup_of={record.get('dedup_of')}"
                   if record.get("dedup_of") else ""))
    if kind == "job_preempted":
        return (f"job_preempted  job={record.get('job_id')}  "
                f"t={record.get('sim_now', 0) / 1e6:.1f}us  "
                f"by={record.get('by')}")
    if kind == "job_resumed":
        return (f"job_resumed  job={record.get('job_id')}  "
                f"t={record.get('sim_now', 0) / 1e6:.1f}us")
    return json.dumps(record)
