"""Flight-deck observability: causal span traces, host self-profiling,
and live run telemetry.

Three layers on top of the PR-3 probe/sampler substrate:

* :mod:`repro.observe.spans` promotes :class:`~repro.core.probe.TxnProbe`
  hop stamps into parent/child span trees (one tree per sampled coherence
  transaction) and exports them as a ``repro-trace/1`` document that is
  simultaneously Chrome trace-event / Perfetto JSON — open any run in a
  timeline viewer.
* :mod:`repro.observe.hostprof` attributes the simulator's *own*
  wall-clock to (component, event-class) pairs via a sampled hook in the
  :meth:`~repro.sim.engine.Simulator.run` dispatch loop — zero cost (and
  bit-identical event order) when disabled.
* :mod:`repro.observe.telemetry` streams heartbeat/progress records
  (interval-sampler deltas, sampled-window confidence intervals,
  checkpoint events) as JSONL to a file or fd, consumed live by
  ``repro watch``.

All three thread through :mod:`repro.harness.runner` /
:mod:`repro.harness.parallel` and fold their settings into the result
cache keys (see DESIGN.md section 4i).
"""

from .hostprof import HostProfiler
from .spans import (
    TRACE_SCHEMA,
    SpanCollector,
    chrome_events,
    trace_doc,
    validate_trace,
    write_trace,
)
from .telemetry import TelemetryStream, read_records, render_record

__all__ = [
    "HostProfiler",
    "SpanCollector",
    "TRACE_SCHEMA",
    "TelemetryStream",
    "chrome_events",
    "read_records",
    "render_record",
    "trace_doc",
    "validate_trace",
    "write_trace",
]
