"""Host self-profiler: where does the *simulator's* wall-clock go?

The ROADMAP's speed items (PDES sharding, the vectorized warm kernel)
need attribution data — which (component, event-class) pairs burn the
host CPU — before anything can be optimised with confidence.  Python's
cProfile answers that at 2-4x slowdown and per-function (not
per-component) granularity; this profiler instead hooks the one place
every simulated event passes through, the dispatch loop in
:meth:`Simulator.run`, and samples 1-in-``rate`` events with
``perf_counter_ns`` bracketing.

Cost model:

* **Disabled** (``sim.profiler is None``): one attribute test per
  ``run()`` *call*, not per event — the profiled loop is a separate
  method, so the hot run-to-drain loop is byte-for-byte untouched and
  event records stay bit-identical (gated by the golden-digest tests).
* **Enabled**: one counter increment per event, plus two
  ``perf_counter_ns`` calls and a dict update per *sampled* event.
  At the default 1/16 rate this measures <5% overhead (tracked in
  BENCH_observability.json).

Attribution key: events are classified by the bound method they fire —
``(type(fn.__self__).__name__, fn.__name__)`` — which lands exactly on
the component/event-class grid (``("MemoryChannel", "_deliver")``,
``("CpuShim", "_batch")``, ...).  Periodic ticks unwrap to their inner
callback with an ``every:`` prefix so samplers and audits are
attributed to themselves, not to the ticker shim.

The profiler scales each sampled duration by the sampling rate, so
``est_ns`` totals estimate full wall-clock per key; ``share`` is the
fraction of *sampled* time and is rate-independent.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

ProfKey = Tuple[str, str]


def event_key(fn) -> ProfKey:
    """Classify an event callback into a (component, event-class) pair."""
    inner = getattr(fn, "fn", None)
    if inner is not None and type(fn).__name__ == "_PeriodicTick":
        comp, name = event_key(inner)
        return (comp, f"every:{name}")
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        return (type(owner).__name__, fn.__name__)
    name = getattr(fn, "__name__", None)
    if name is not None:
        return ("function", name)
    return (type(fn).__name__, "__call__")


class HostProfiler:
    """Sampled wall-clock attribution over dispatch-loop events.

    Attach with ``sim.profiler = HostProfiler(rate)`` (or through
    ``build_system(..., profile=rate)``); :meth:`Simulator.run` switches
    to its profiled loop when the attribute is set.  Picklable (plain
    ints/dicts), so it survives the ProcessPool and rides checkpoints —
    though wall-clock numbers are host-specific and therefore live in
    ``RunResult.extras``, outside the deterministic payload.
    """

    def __init__(self, rate: int = 16) -> None:
        if rate < 1:
            raise ValueError(f"profile sample rate must be >= 1, got {rate}")
        self.rate = int(rate)
        self.events_seen = 0
        self.events_sampled = 0
        self.sampled_ns = 0
        #: (component, event-class) -> [sample_count, total_ns]
        self.buckets: Dict[ProfKey, List[int]] = {}

    # -- recording (called from Simulator._run_profiled) -----------------

    def record(self, fn, dt_ns: int) -> None:
        self.events_sampled += 1
        self.sampled_ns += dt_ns
        key = event_key(fn)
        bucket = self.buckets.get(key)
        if bucket is None:
            self.buckets[key] = [1, dt_ns]
        else:
            bucket[0] += 1
            bucket[1] += dt_ns

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        self.events_seen = 0
        self.events_sampled = 0
        self.sampled_ns = 0
        self.buckets = {}

    def merge(self, other: "HostProfiler") -> None:
        """Fold another profiler's buckets in (multi-phase runs)."""
        self.events_seen += other.events_seen
        self.events_sampled += other.events_sampled
        self.sampled_ns += other.sampled_ns
        for key, (count, total) in other.buckets.items():
            bucket = self.buckets.get(key)
            if bucket is None:
                self.buckets[key] = [count, total]
            else:
                bucket[0] += count
                bucket[1] += total

    # -- export ----------------------------------------------------------

    def report_rows(self) -> List[Dict[str, object]]:
        """Ranked hot-spot rows, hottest first."""
        total = self.sampled_ns or 1
        rows = []
        for (comp, event), (count, t_ns) in self.buckets.items():
            rows.append({
                "component": comp,
                "event": event,
                "samples": count,
                "sampled_ns": t_ns,
                "mean_ns": t_ns / count,
                "est_ns": t_ns * self.rate,
                "share": t_ns / total,
            })
        rows.sort(key=lambda r: (-r["sampled_ns"], r["component"], r["event"]))
        return rows

    def as_dict(self) -> Dict[str, object]:
        return {
            "rate": self.rate,
            "events_seen": self.events_seen,
            "events_sampled": self.events_sampled,
            "sampled_ns": self.sampled_ns,
            "est_total_ns": self.sampled_ns * self.rate,
            "hotspots": self.report_rows(),
        }

    def render(self, limit: int = 20) -> str:
        """Human-readable ranked table for ``repro profile``."""
        rows = self.report_rows()[:limit]
        lines = [
            f"host profile: {self.events_seen} events, "
            f"{self.events_sampled} sampled (1/{self.rate}), "
            f"{self.sampled_ns / 1e6:.1f} ms sampled wall-clock",
            f"{'component':<24} {'event':<28} {'share':>6} "
            f"{'samples':>8} {'mean us':>8} {'est ms':>8}",
        ]
        for r in rows:
            lines.append(
                f"{r['component']:<24} {r['event']:<28} "
                f"{r['share'] * 100:>5.1f}% {r['samples']:>8} "
                f"{r['mean_ns'] / 1e3:>8.2f} {r['est_ns'] / 1e6:>8.1f}"
            )
        if len(self.report_rows()) > limit:
            lines.append(f"... {len(self.buckets) - limit} more keys")
        return "\n".join(lines)

    # -- checkpoint/restore ----------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)

    def load_state(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    def __getstate__(self) -> Dict[str, object]:
        return self.state_dict()

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.load_state(state)
