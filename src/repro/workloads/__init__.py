"""Workload models: OLTP (TPC-B), DSS (TPC-D Q6), TPC-C, microbenchmarks."""

from .base import (
    AddressSpaceBuilder,
    CodeWalk,
    NodeShards,
    Region,
    Workload,
    WorkloadThread,
    ZipfSampler,
    interleave_code_and_data,
)
from .dss import DssParams, DssWorkload
from .micro import (
    MicroParams,
    MigratoryWrites,
    PrivateStream,
    ProducerConsumer,
    SharedReadOnly,
    UniformRandom,
)
from .oltp import OltpParams, OltpWorkload
from .tpcc import TpccWorkload, tpcc_params
from .trace import TraceWorkload, read_trace, record_thread, record_workload
from .web import WebParams, WebWorkload

__all__ = [
    "AddressSpaceBuilder",
    "CodeWalk",
    "NodeShards",
    "Region",
    "Workload",
    "WorkloadThread",
    "ZipfSampler",
    "interleave_code_and_data",
    "DssParams",
    "DssWorkload",
    "MicroParams",
    "MigratoryWrites",
    "PrivateStream",
    "ProducerConsumer",
    "SharedReadOnly",
    "UniformRandom",
    "OltpParams",
    "OltpWorkload",
    "TpccWorkload",
    "tpcc_params",
    "TraceWorkload",
    "read_trace",
    "record_thread",
    "record_workload",
    "WebParams",
    "WebWorkload",
]
