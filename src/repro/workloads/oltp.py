"""OLTP workload modelled after TPC-B (Section 3.1).

TPC-B models a banking database: each transaction updates a randomly
chosen **account** balance, the balance of the account's **branch** and of
the submitting **teller**, and appends a record to the **history** table.
The paper runs 40 branches against Oracle with a ~600 MB SGA, eight server
processes per CPU, and reports the classic OLTP memory-system signature:
large instruction and data footprints, frequent communication misses on
hot metadata, and little ILP.

The model reproduces that signature structurally:

* a large, zipf-walked shared **code** footprint (database engine text) —
  instruction misses dominate and are mostly serviced on-chip;
* hot shared **metadata** (buffer-cache headers, lock structures) with a
  read-mostly/write-some mix — the communication misses;
* a large uniformly-accessed **account table** — the memory misses;
* small, heavily contended **branch/teller** rows — migratory sharing;
* per-process **history/log** appends and private stack traffic.

Footprint sizes are scaled so the simulated cache hierarchy (64 KB L1s,
1 MB L2) sees the same *relative* pressure the paper's full-size setup put
on its hierarchy; `OltpParams` documents every knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..core.messages import AccessKind
from ..sim.rng import substream
from .base import (
    AddressSpaceBuilder,
    CodeWalk,
    NodeShards,
    Region,
    Workload,
    WorkloadThread,
    ZipfSampler,
    interleave_code_and_data,
)


@dataclass(frozen=True)
class OltpParams:
    """Tunable shape parameters for the OLTP model."""

    #: transactions each CPU executes (after per-CPU warm-up)
    transactions: int = 80
    warmup_transactions: int = 150
    #: server processes per CPU (the paper uses 8 to hide I/O latency);
    #: successive transactions rotate across their private contexts
    processes_per_cpu: int = 8
    #: shared database-engine text: 2048 lines = 128 KB of hot/warm code
    #: (every line revisited regularly, as a transaction's code path is)
    code_lines: int = 2048
    code_zipf: float = 0.55
    code_run_lines: int = 6
    code_runs_per_txn: int = 11
    #: hot shared metadata (buffer headers, lock structures): 64 KB
    metadata_lines: int = 1024
    metadata_zipf: float = 0.45
    metadata_accesses_per_txn: int = 22
    metadata_write_fraction: float = 0.35
    #: account table (memory-bound): 24 MB of 4 KB blocks.  Blocks are
    #: zipf-skewed (Oracle's buffer cache makes some disk blocks hot) —
    #: this is also what gives the memory controllers their open-page
    #: locality (Section 2.4's >50% hit-rate claim)
    account_lines: int = 393216
    account_lines_per_row: int = 2
    account_block_lines: int = 64
    account_block_zipf: float = 0.55
    #: B-tree index leaves (uniformly accessed, memory-bound): 4 MB
    index_lines: int = 65536
    index_accesses_per_txn: int = 2
    #: branches (40 in the paper's setup) and tellers (400)
    branches: int = 40
    branch_lines_per_row: int = 2
    tellers: int = 100
    #: per-process private context (stack, locals, cursors)
    private_lines: int = 224
    private_accesses_per_txn: int = 60
    #: history append lines per transaction (per-process stripes)
    history_lines_per_txn: int = 1
    history_stripe_lines: int = 4096
    #: shared redo-log buffer (producer-only appends)
    log_lines: int = 512
    #: fraction of data references an OOO window can treat as independent
    independent_fraction: float = 0.15
    #: data references woven in per instruction-fetch line
    data_per_code_line: float = 1.45
    #: probability that a transaction's rows/metadata/appends come from the
    #: executing node's local shard (database NUMA tuning; multi-node only)
    numa_locality: float = 0.70
    #: sequential block-I/O lines appended per transaction (DB-writer
    #: flush scans / block prefetch).  Off by default; the Section 2.4
    #: open-page benchmark turns it on — these sequential bursts are what
    #: give OLTP's DRAM traffic its page locality.
    block_io_lines_per_txn: int = 0
    #: hot rows are padded onto their own 8 KB pages in multi-node systems
    #: so branches/tellers interleave across homes
    hot_row_stride_lines: int = 128
    seed: int = 2000


class OltpWorkload(Workload):
    """TPC-B-like OLTP over the shared database address space."""

    name = "oltp"
    #: the paper [35]: multiple-issue OOO gains are small for OLTP
    ilp = 1.35

    def __init__(self, params: Optional[OltpParams] = None,
                 cpus_per_node: int = 8, num_nodes: int = 1) -> None:
        self.params = params or OltpParams()
        self.cpus_per_node = cpus_per_node
        self.num_nodes = num_nodes
        p = self.params
        space = AddressSpaceBuilder()
        #: hot rows live on their own pages in NUMA systems so their homes
        #: interleave round-robin across the nodes
        self.row_stride = p.hot_row_stride_lines if num_nodes > 1 else (
            p.branch_lines_per_row)
        teller_stride = p.hot_row_stride_lines if num_nodes > 1 else 1
        self.teller_stride = teller_stride
        self.code = space.region("code", p.code_lines)
        self.metadata = space.region("metadata", p.metadata_lines)
        self.branch = space.region("branch", p.branches * self.row_stride)
        self.teller = space.region("teller", p.tellers * teller_stride)
        self.log = space.region("log", max(p.log_lines, 128 * num_nodes))
        self.account = space.region("account", p.account_lines)
        self.index = space.region("index", p.index_lines)
        total_cpus = cpus_per_node * num_nodes
        self.history = space.region(
            "history", p.history_stripe_lines * total_cpus * p.processes_per_cpu
        )
        self.private = space.region(
            "private", p.private_lines * total_cpus * p.processes_per_cpu
        )
        space.validate()
        self.space = space
        self._branch_rows = [
            self._local_rows(self.branch, p.branches, self.row_stride, n)
            for n in range(num_nodes)
        ]
        self._teller_rows = [
            self._local_rows(self.teller, p.tellers, self.teller_stride, n)
            for n in range(num_nodes)
        ]
        num_blocks = p.account_lines // p.account_block_lines
        self._account_block_sampler = ZipfSampler(num_blocks,
                                                  p.account_block_zipf)
        # scatter zipf ranks over the physical blocks
        from ..sim.rng import substream as _ss
        perm_rng = _ss(p.seed, "account-block-perm")
        self._account_block_perm = list(range(num_blocks))
        perm_rng.shuffle(self._account_block_perm)
        if num_nodes > 1:
            self.meta_shards = NodeShards(self.metadata, num_nodes)
            self.account_shards = NodeShards(self.account, num_nodes)
            self.index_shards = NodeShards(self.index, num_nodes)
            self.log_shards = NodeShards(self.log, num_nodes)
            self.history_shards = NodeShards(self.history, num_nodes)

    # -- transaction recipe --------------------------------------------------

    def _local_rows(self, region: Region, rows: int, stride: int, node: int):
        """Rows of a page-padded hot table homed at *node*."""
        if self.num_nodes == 1:
            return list(range(rows))
        base_chunk = region.base // 8192
        local = [r for r in range(rows)
                 if (base_chunk + (r * stride * 64) // 8192) % self.num_nodes == node]
        return local or list(range(rows))

    def _data_ops(self, rng, meta_sampler: ZipfSampler, proc_base: dict,
                  txn_index: int, node: int) -> List[Tuple[int, AccessKind, int, bool]]:
        """The data references of one TPC-B transaction, in order."""
        p = self.params
        multi = self.num_nodes > 1
        loc = p.numa_locality
        ops: List[Tuple[int, AccessKind, int, bool]] = []
        indep = p.independent_fraction

        def dep() -> bool:
            return rng.random() >= indep

        def local(prob: float = loc) -> bool:
            return multi and rng.random() < prob

        def private_ref() -> None:
            line = proc_base["private"] + rng.randrange(p.private_lines)
            kind = AccessKind.STORE if rng.random() < 0.4 else AccessKind.LOAD
            ops.append((0, kind, self.private.line_addr(line), True))

        def metadata_ref() -> None:
            if local():
                line = self.meta_shards.sample_line(rng, node)
            else:
                line = meta_sampler.sample(rng.random())
            write = rng.random() < p.metadata_write_fraction
            kind = AccessKind.STORE if write else AccessKind.LOAD
            ops.append((0, kind, self.metadata.line_addr(line), dep()))

        # 0. index walk: B-tree leaf lookups (root/branch levels hit in
        #    the metadata region; leaves are effectively uniform)
        for _ in range(p.index_accesses_per_txn):
            if local():
                leaf = self.index_shards.sample_line(rng, node)
            else:
                # leaves cluster in 4 KB index blocks with mild skew
                block = self._account_block_sampler.sample(rng.random())
                block %= p.index_lines // p.account_block_lines
                leaf = (block * p.account_block_lines
                        + rng.randrange(p.account_block_lines))
            ops.append((0, AccessKind.LOAD, self.index.line_addr(leaf), dep()))
        # 1. account row: read-modify-write inside a zipf-hot 4 KB block
        def account_line() -> int:
            rank = self._account_block_sampler.sample(rng.random())
            block = self._account_block_perm[rank]
            return (block * p.account_block_lines
                    + rng.randrange(p.account_block_lines))

        if local():
            aline = self.account_shards.sample_line(rng, node)
        else:
            aline = account_line()
        account_row = aline // p.account_lines_per_row
        for i in range(p.account_lines_per_row):
            line = account_row * p.account_lines_per_row + i
            ops.append((0, AccessKind.LOAD, self.account.line_addr(line), dep()))
        ops.append((0, AccessKind.STORE,
                    self.account.line_addr(account_row * p.account_lines_per_row),
                    True))
        # 2. branch row: hot, contended read-modify-write (the submitting
        #    client usually belongs to a node-local branch)
        branch_rows = self._branch_rows[node] if local() else range(p.branches)
        branch_row = branch_rows[rng.randrange(len(branch_rows))]
        bline = branch_row * self.row_stride
        ops.append((0, AccessKind.LOAD, self.branch.line_addr(bline), True))
        ops.append((0, AccessKind.STORE, self.branch.line_addr(bline), True))
        # 3. teller row
        teller_rows = self._teller_rows[node] if local() else range(p.tellers)
        teller_row = teller_rows[rng.randrange(len(teller_rows))]
        tline = teller_row * self.teller_stride
        ops.append((0, AccessKind.LOAD, self.teller.line_addr(tline), True))
        ops.append((0, AccessKind.STORE, self.teller.line_addr(tline), True))
        # 4. history append (per-process stripes out of node-local chunks;
        #    whole-line writes -> wh64)
        hcursor = proc_base["history"] + txn_index * p.history_lines_per_txn
        for i in range(p.history_lines_per_txn):
            if multi:
                hline = self.history_shards.local_line(node, hcursor + i)
            else:
                hline = (hcursor + i) % self.history.lines
            ops.append((0, AccessKind.WH64, self.history.line_addr(hline), True))
        # 5. redo-log append (node-local log stripe)
        lcursor = proc_base["log_cursor"] + txn_index
        if multi:
            log_line = self.log_shards.local_line(node, lcursor)
        else:
            log_line = lcursor % self.log.lines
        ops.append((0, AccessKind.STORE, self.log.line_addr(log_line), True))
        # 6. metadata + private filler, shuffled through the transaction
        for _ in range(p.metadata_accesses_per_txn):
            metadata_ref()
        for _ in range(p.private_accesses_per_txn):
            private_ref()
        rng.shuffle(ops)
        return ops

    # -- thread construction ---------------------------------------------------

    def thread_for(self, node: int, cpu: int) -> Optional[WorkloadThread]:
        if node >= self.num_nodes or cpu >= self.cpus_per_node:
            return None
        p = self.params
        global_cpu = node * self.cpus_per_node + cpu
        rng = substream(p.seed, "oltp", node, cpu)
        code_walk = CodeWalk(self.code, rng, alpha=p.code_zipf,
                             run_lines=p.code_run_lines)
        meta_sampler = ZipfSampler(p.metadata_lines, p.metadata_zipf)

        def gen() -> Iterator:
            from ..core.cpu import WARMUP_DONE

            total = p.transactions + p.warmup_transactions
            block_cursors = {}
            for txn in range(total):
                if txn == p.warmup_transactions:
                    yield (0, None, WARMUP_DONE, True)
                proc = txn % p.processes_per_cpu
                slot = global_cpu * p.processes_per_cpu + proc
                proc_base = {
                    "private": slot * p.private_lines,
                    "history": slot * p.history_stripe_lines,
                    "log_cursor": slot * 7,
                }
                code_items: List = []
                for _ in range(p.code_runs_per_txn):
                    code_items.extend(code_walk.run())
                data_items = self._data_ops(rng, meta_sampler, proc_base, txn, node)
                yield from interleave_code_and_data(
                    code_items, data_items, rng,
                    data_per_code_line=p.data_per_code_line,
                )
                if p.block_io_lines_per_txn:
                    # DB-writer style sequential block scan (streaming);
                    # the cursor persists across transactions
                    total_slots = (self.cpus_per_node * self.num_nodes
                                   * p.processes_per_cpu)
                    stripe = p.account_lines // total_slots
                    # skew the stripe starts so concurrent scanners sit on
                    # different RDRAM devices (stripe lengths are a multiple
                    # of the device period; without the skew every scanner
                    # would thrash the same device's open page)
                    start = (slot * stripe + slot * 64) % p.account_lines
                    cursor = block_cursors.setdefault(slot, start)
                    for i in range(p.block_io_lines_per_txn):
                        line = (cursor + i) % p.account_lines
                        yield (2, AccessKind.LOAD,
                               self.account.line_addr(line), False)
                    block_cursors[slot] = (
                        cursor + p.block_io_lines_per_txn) % p.account_lines

        return WorkloadThread(gen(), ilp=self.ilp,
                              name=f"oltp-n{node}c{cpu}")
