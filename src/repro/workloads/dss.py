"""DSS workload modelled after Query 6 of TPC-D (Section 3.1).

Q6 scans the largest table in the database (``lineitem``) evaluating a
date/discount/quantity predicate and accumulating a revenue aggregate.
The paper runs it with Oracle's Parallel Query Optimization over an
in-memory 500 MB database, decomposed into four server processes per CPU.

The memory-system signature (and what the model reproduces):

* a small, tight instruction loop (the SQL executor's scan/filter path)
  that fits comfortably in the L1 I-cache;
* a sequential table scan with high spatial locality — every row brings a
  handful of *independent* line misses that an out-of-order window (or
  MSHR-style overlap) hides almost entirely;
* heavy per-row computation (interpreted predicate evaluation and
  aggregation in a real database engine) — execution is dominated by CPU
  busy time, so clock speed and issue width pay off directly (the paper:
  OOO's faster clock alone nearly doubles performance over P1, with almost
  another doubling from wide issue);
* essentially no inter-CPU communication: each server process scans a
  disjoint partition (near-linear CMP scaling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..core.messages import AccessKind
from ..sim.rng import substream
from .base import AddressSpaceBuilder, Workload, WorkloadThread


@dataclass(frozen=True)
class DssParams:
    """Tunable shape parameters for the DSS (TPC-D Q6) model."""

    #: rows each CPU scans in the measured phase
    rows: int = 260
    warmup_rows: int = 40
    #: scan-loop code footprint: 48 lines = 3 KB (fits any L1I)
    code_lines: int = 48
    #: instructions of executor work per row (predicate + aggregate in an
    #: interpreted SQL engine; dominates execution time)
    instrs_per_row: int = 2000
    #: lines per table row (~180-byte rows: Oracle row format + overhead)
    lines_per_row: int = 3
    #: per-CPU table partition (scanned sequentially, far larger than L2)
    partition_lines: int = 1 << 16
    #: fraction of scan loads that are dependent (aggregation carried
    #: dependencies); the rest stream through the OOO window
    dependent_fraction: float = 0.2
    #: private per-CPU aggregation state
    agg_lines: int = 16
    #: final result merge into a shared buffer (one line per CPU chunk)
    result_lines: int = 64
    seed: int = 6000


class DssWorkload(Workload):
    """TPC-D Q6-like parallel scan over partitioned table data."""

    name = "dss"
    #: loops expose useful ILP to a wide OOO core (paper [35])
    ilp = 1.7

    def __init__(self, params: Optional[DssParams] = None,
                 cpus_per_node: int = 8, num_nodes: int = 1) -> None:
        self.params = params or DssParams()
        self.cpus_per_node = cpus_per_node
        self.num_nodes = num_nodes
        p = self.params
        total_cpus = cpus_per_node * num_nodes
        space = AddressSpaceBuilder()
        self.code = space.region("code", p.code_lines)
        self.result = space.region("result", p.result_lines)
        self.agg = space.region("agg", p.agg_lines * total_cpus)
        self.table = space.region("table", p.partition_lines * total_cpus)
        space.validate()
        self.space = space

    def thread_for(self, node: int, cpu: int) -> Optional[WorkloadThread]:
        if node >= self.num_nodes or cpu >= self.cpus_per_node:
            return None
        p = self.params
        global_cpu = node * self.cpus_per_node + cpu
        rng = substream(p.seed, "dss", node, cpu)
        part_base = global_cpu * p.partition_lines
        agg_base = global_cpu * p.agg_lines

        def gen() -> Iterator:
            from ..core.cpu import WARMUP_DONE

            cursor = 0
            #: executor work is emitted as a handful of instruction-fetch
            #: chunks per row, walking the resident scan loop
            chunks = 8
            instrs_per_chunk = p.instrs_per_row // chunks
            total_rows = p.rows + p.warmup_rows
            for row in range(total_rows):
                if row == p.warmup_rows:
                    yield (0, None, WARMUP_DONE, True)
                # row fetch: sequential lines, overlappable (streaming)
                for i in range(p.lines_per_row):
                    line = part_base + (cursor + i) % p.partition_lines
                    dep = rng.random() < p.dependent_fraction
                    yield (4, AccessKind.LOAD, self.table.line_addr(line), dep)
                cursor = (cursor + p.lines_per_row) % p.partition_lines
                # per-row executor work over the scan loop's code lines
                for c in range(chunks):
                    code_line = (row * chunks + c) % p.code_lines
                    yield (instrs_per_chunk, AccessKind.IFETCH,
                           self.code.line_addr(code_line), True)
                # aggregation state update (private, hits)
                yield (6, AccessKind.STORE,
                       self.agg.line_addr(agg_base + row % p.agg_lines), True)
                # periodic result-buffer merge (the only sharing)
                if row % 64 == 63:
                    yield (20, AccessKind.STORE,
                           self.result.line_addr(global_cpu % p.result_lines),
                           True)

        return WorkloadThread(gen(), ilp=self.ilp, name=f"dss-n{node}c{cpu}")
