"""Synthetic microbenchmarks.

Small, precisely-shaped reference streams used by unit/integration tests
and the ablation benchmarks: private streaming, shared read-only data,
migratory read-modify-write lines, producer/consumer pairs, and uniform
random soups.  Unlike the commercial-workload models these make no claim
of realism — they isolate one memory-system behaviour each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..core.messages import AccessKind
from ..sim.rng import substream
from .base import AddressSpaceBuilder, Workload, WorkloadThread


@dataclass(frozen=True)
class MicroParams:
    iterations: int = 1000
    warmup: int = 100
    lines: int = 256
    write_fraction: float = 0.3
    work_per_access: int = 4
    seed: int = 9000


class _MicroBase(Workload):
    ilp = 1.5

    def __init__(self, params: Optional[MicroParams] = None,
                 cpus_per_node: int = 8, num_nodes: int = 1) -> None:
        self.params = params or MicroParams()
        self.cpus_per_node = cpus_per_node
        self.num_nodes = num_nodes
        space = AddressSpaceBuilder()
        total_cpus = cpus_per_node * num_nodes
        self.shared = space.region("shared", self.params.lines)
        self.private = space.region("private",
                                    self.params.lines * total_cpus)
        space.validate()
        self.space = space

    def _emit(self, node: int, cpu: int, rng) -> Iterator:
        raise NotImplementedError

    def thread_for(self, node: int, cpu: int) -> Optional[WorkloadThread]:
        if node >= self.num_nodes or cpu >= self.cpus_per_node:
            return None
        rng = substream(self.params.seed, self.name, node, cpu)

        def gen() -> Iterator:
            from ..core.cpu import WARMUP_DONE

            p = self.params
            it = self._emit(node, cpu, rng)
            for i in range(p.warmup):
                nxt = next(it, None)
                if nxt is None:
                    break
                yield nxt
            yield (0, None, WARMUP_DONE, True)
            for i in range(p.iterations):
                nxt = next(it, None)
                if nxt is None:
                    break
                yield nxt

        return WorkloadThread(gen(), ilp=self.ilp,
                              name=f"{self.name}-n{node}c{cpu}")


class PrivateStream(_MicroBase):
    """Each CPU streams sequentially through its own region (no sharing)."""

    name = "private-stream"

    def _emit(self, node: int, cpu: int, rng) -> Iterator:
        p = self.params
        base = (node * self.cpus_per_node + cpu) * p.lines
        i = 0
        while True:
            yield (p.work_per_access, AccessKind.LOAD,
                   self.private.line_addr(base + i % p.lines), False)
            i += 1


class SharedReadOnly(_MicroBase):
    """All CPUs read the same lines (code-like sharing; forwards + hits)."""

    name = "shared-read"

    def _emit(self, node: int, cpu: int, rng) -> Iterator:
        p = self.params
        while True:
            line = rng.randrange(p.lines)
            yield (p.work_per_access, AccessKind.LOAD,
                   self.shared.line_addr(line), True)


class MigratoryWrites(_MicroBase):
    """Read-modify-write of hot shared lines: classic migratory sharing —
    lines ping between owners, exercising forwards and invalidations."""

    name = "migratory"

    def _emit(self, node: int, cpu: int, rng) -> Iterator:
        p = self.params
        hot = max(1, p.lines // 16)
        while True:
            line = rng.randrange(hot)
            yield (p.work_per_access, AccessKind.LOAD,
                   self.shared.line_addr(line), True)
            yield (p.work_per_access, AccessKind.STORE,
                   self.shared.line_addr(line), True)


class ProducerConsumer(_MicroBase):
    """Even CPUs write a buffer region, odd CPUs read it (one-way flow)."""

    name = "producer-consumer"

    def _emit(self, node: int, cpu: int, rng) -> Iterator:
        p = self.params
        producer = (node * self.cpus_per_node + cpu) % 2 == 0
        i = 0
        while True:
            line = i % p.lines
            if producer:
                yield (p.work_per_access, AccessKind.WH64,
                       self.shared.line_addr(line), True)
            else:
                yield (p.work_per_access, AccessKind.LOAD,
                       self.shared.line_addr(line), True)
            i += 1


class UniformRandom(_MicroBase):
    """Uniform random loads/stores over the shared region."""

    name = "uniform"

    def _emit(self, node: int, cpu: int, rng) -> Iterator:
        p = self.params
        while True:
            line = rng.randrange(p.lines)
            kind = (AccessKind.STORE if rng.random() < p.write_fraction
                    else AccessKind.LOAD)
            yield (p.work_per_access, kind, self.shared.line_addr(line), True)
