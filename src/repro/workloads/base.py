"""Workload-model substrate.

The paper evaluates Piranha with SimOS-Alpha running Oracle (OLTP modelled
after TPC-B, DSS after TPC-D Q6).  We cannot run Oracle; instead each
workload is a *statistical reference-stream model* parameterised from the
memory-system behaviour the paper and its companion studies report: large
instruction and data footprints and high communication-miss rates for
OLTP, tight scan loops with high spatial locality for DSS.

A workload supplies one :class:`WorkloadThread` per (node, cpu).  A thread
iterates work items ``(instructions, kind, addr, dependent)``:

* ``instructions`` — instructions executed (1 cycle each on the in-order
  cores; scaled by available ILP on the OOO baseline);
* ``kind`` — an :class:`~repro.core.messages.AccessKind` or None;
* ``addr`` — byte address of the access;
* ``dependent`` — False marks an independent (streaming) access that an
  out-of-order window can overlap with others.

Address-space layout is shared by all CPUs and nodes (a shared-memory
database), carved into :class:`Region` objects with distinct locality
models.  All randomness is drawn from named deterministic substreams.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..core.messages import AccessKind
from ..sim.rng import substream

LINE = 64

WorkItem = Tuple[int, Optional[AccessKind], int, bool]


class WorkloadThread:
    """Iterator wrapper carrying per-workload attributes (e.g. ILP).

    Threads are the one checkpoint-hostile piece of live simulation state:
    the work-item stream is a running generator, which CPython cannot
    pickle.  Instead of serialising the frame, a thread counts the items
    it has emitted and remembers where it came from (its workload and
    (node, cpu) slot, bound by
    :meth:`~repro.core.system.PiranhaSystem.attach_workload`).  A restored
    thread rebuilds lazily: on the first ``__next__`` after a restore it
    asks the workload for a fresh thread for the same slot — workload
    generators draw all randomness from named
    :func:`~repro.sim.rng.substream`\\ s, so the fresh stream is identical
    — and fast-forwards it by the emitted count.  Rebuilding on first use
    (rather than during unpickling) keeps restore independent of pickle's
    object-graph ordering.
    """

    def __init__(self, gen: Iterator[WorkItem], ilp: float = 1.0,
                 name: str = "") -> None:
        self._gen: Optional[Iterator[WorkItem]] = gen
        self.ilp = ilp
        self.name = name
        self.emitted = 0
        self._exhausted = False
        #: (workload, node, cpu) rebuild recipe; None until the thread is
        #: attached through PiranhaSystem.attach_workload
        self._source = None

    def bind_source(self, workload, node: int, cpu: int) -> None:
        """Record the rebuild recipe for checkpoint/restore."""
        self._source = (workload, node, cpu)

    def __iter__(self) -> "WorkloadThread":
        return self

    def __next__(self) -> WorkItem:
        gen = self._gen
        if gen is None:
            gen = self._rebuild()
        try:
            item = next(gen)
        except StopIteration:
            self._exhausted = True
            raise
        self.emitted += 1
        return item

    def _rebuild(self) -> Iterator[WorkItem]:
        """Regenerate and fast-forward the stream after a restore."""
        if self._exhausted:
            raise StopIteration
        if self._source is None:
            raise RuntimeError(
                f"workload thread {self.name!r} was restored without a "
                f"rebuild source; attach threads via "
                f"PiranhaSystem.attach_workload")
        workload, node, cpu = self._source
        fresh = workload.thread_for(node, cpu)
        if fresh is None:
            raise RuntimeError(
                f"workload thread {self.name!r}: thread_for({node}, {cpu}) "
                f"returned None on rebuild")
        gen = fresh._gen
        for _ in range(self.emitted):
            next(gen)
        self._gen = gen
        return gen

    # -- checkpoint/restore ----------------------------------------------

    def state_dict(self) -> dict:
        """Serialisable state: everything except the live generator."""
        return {
            "ilp": self.ilp,
            "name": self.name,
            "emitted": self.emitted,
            "exhausted": self._exhausted,
            "source": self._source,
        }

    def load_state(self, state: dict) -> None:
        self.ilp = state["ilp"]
        self.name = state["name"]
        self.emitted = state["emitted"]
        self._exhausted = state["exhausted"]
        self._source = state["source"]
        self._gen = None  # rebuilt lazily on the next __next__

    def __getstate__(self) -> dict:
        if (self._source is None and not self._exhausted
                and self._gen is not None):
            raise TypeError(
                f"workload thread {self.name!r} is not checkpointable: it "
                f"was attached without a rebuild source (use "
                f"PiranhaSystem.attach_workload)")
        return self.state_dict()

    def __setstate__(self, state: dict) -> None:
        self.load_state(state)


class Workload:
    """Base class: a workload builds one thread per (node, cpu)."""

    name = "workload"
    #: instruction-level parallelism the OOO core can extract (the paper:
    #: small for OLTP due to dependent chains, larger for DSS loops)
    ilp = 1.0

    def thread_for(self, node: int, cpu: int) -> Optional[WorkloadThread]:
        raise NotImplementedError


class ZipfSampler:
    """Zipf(alpha) sampler over [0, n) using an inverse-CDF table."""

    def __init__(self, n: int, alpha: float) -> None:
        if n < 1:
            raise ValueError("need at least one element")
        self.n = n
        self.alpha = alpha
        weights = [1.0 / (i + 1) ** alpha for i in range(n)]
        total = sum(weights)
        acc = 0.0
        self._cdf: List[float] = []
        for w in weights:
            acc += w / total
            self._cdf.append(acc)

    def sample(self, u: float) -> int:
        """Map a uniform [0,1) variate to a rank (0 is hottest)."""
        return min(bisect.bisect_left(self._cdf, u), self.n - 1)


@dataclass(frozen=True)
class Region:
    """A contiguous address-space region of ``lines`` cache lines."""

    name: str
    base: int
    lines: int

    @property
    def bytes(self) -> int:
        return self.lines * LINE

    @property
    def end(self) -> int:
        return self.base + self.bytes

    def line_addr(self, index: int) -> int:
        if not 0 <= index < self.lines:
            raise IndexError(f"{self.name}: line {index} of {self.lines}")
        return self.base + index * LINE


class AddressSpaceBuilder:
    """Allocates non-overlapping regions on large alignment boundaries."""

    def __init__(self, base: int = 0x0000_0000, align: int = 1 << 20) -> None:
        self._next = base
        self._align = align
        self.regions: List[Region] = []

    def region(self, name: str, lines: int) -> Region:
        base = self._next
        region = Region(name, base, lines)
        self.regions.append(region)
        size = lines * LINE
        self._next = (base + size + self._align - 1) // self._align * self._align
        return region

    def validate(self) -> None:
        spans = sorted((r.base, r.end, r.name) for r in self.regions)
        for (b1, e1, n1), (b2, e2, n2) in zip(spans, spans[1:]):
            if b2 < e1:
                raise ValueError(f"regions {n1} and {n2} overlap")


class CodeWalk:
    """Instruction-stream model: a zipf-weighted walk over code blocks.

    The code region is divided into basic-block *runs*; picking a run emits
    its lines sequentially, one IFETCH per line with ``instrs_per_line``
    instructions of execution folded in.  Zipf-weighted block selection
    produces the hot/warm/cold code behaviour of a large database engine.
    """

    def __init__(self, region: Region, rng, alpha: float = 0.75,
                 run_lines: int = 6, instrs_per_line: int = 16) -> None:
        self.region = region
        self.rng = rng
        self.run_lines = run_lines
        self.instrs_per_line = instrs_per_line
        self.num_starts = max(1, region.lines // run_lines)
        self.sampler = ZipfSampler(self.num_starts, alpha)
        # Hash ranks around the region so hot blocks are scattered (as
        # linked object code is), not clustered at the base.
        self._perm = list(range(self.num_starts))
        shuffle_rng = substream(0xC0DE, region.name, "perm")
        shuffle_rng.shuffle(self._perm)

    def run(self) -> List[Tuple[int, AccessKind, int, bool]]:
        """One basic-block run: a list of IFETCH work items."""
        rank = self.sampler.sample(self.rng.random())
        start = self._perm[rank] * self.run_lines
        items = []
        for i in range(self.run_lines):
            line = (start + i) % self.region.lines
            items.append((self.instrs_per_line, AccessKind.IFETCH,
                          self.region.line_addr(line), True))
        return items


def interleave_code_and_data(
    code_items: List[WorkItem],
    data_items: List[WorkItem],
    rng,
    data_per_code_line: float = 1.0,
) -> Iterator[WorkItem]:
    """Weave data references between instruction-fetch lines so the
    reference mix approximates a real instruction stream (roughly one data
    reference per few instructions)."""
    di = 0
    carry = 0.0
    for item in code_items:
        yield item
        carry += data_per_code_line
        while carry >= 1.0 and di < len(data_items):
            yield data_items[di]
            di += 1
            carry -= 1.0
    while di < len(data_items):
        yield data_items[di]
        di += 1


class NodeShards:
    """Node-local sampling within a region under the round-robin home map.

    Homes are assigned per 8 KB chunk of the physical address space
    (:class:`repro.mem.addr.AddressMap`), so the chunks of a region that
    are homed at a given node form that node's *shard*.  Database engines
    running on NUMA machines work hard to allocate a client's rows, log
    stripes and scratch memory out of node-local shards; the workloads use
    this helper to model that locality (a ``numa_locality`` probability
    picks the local shard, otherwise the whole region).
    """

    def __init__(self, region: Region, num_nodes: int,
                 granularity: int = 8192) -> None:
        self.region = region
        self.num_nodes = num_nodes
        self.chunk_lines = granularity // LINE
        base_chunk = region.base // granularity
        total_chunks = -(-region.bytes // granularity)
        self._chunks_by_node: List[List[int]] = [[] for _ in range(num_nodes)]
        for c in range(total_chunks):
            home = (base_chunk + c) % num_nodes
            self._chunks_by_node[home].append(c)

    def local_chunks(self, node: int) -> List[int]:
        return self._chunks_by_node[node]

    def sample_line(self, rng, node: int) -> int:
        """A uniformly random line index homed at *node* (falls back to the
        whole region when the node owns no chunk of it)."""
        chunks = self._chunks_by_node[node]
        if not chunks:
            return rng.randrange(self.region.lines)
        chunk = chunks[rng.randrange(len(chunks))]
        lo = chunk * self.chunk_lines
        hi = min(lo + self.chunk_lines, self.region.lines)
        if lo >= self.region.lines:
            return rng.randrange(self.region.lines)
        return rng.randrange(lo, hi)

    def local_line(self, node: int, index: int) -> int:
        """Deterministic mapping of a local cursor to node-homed lines
        (used for append streams like history/log stripes)."""
        chunks = self._chunks_by_node[node]
        if not chunks:
            return index % self.region.lines
        chunk = chunks[(index // self.chunk_lines) % len(chunks)]
        line = chunk * self.chunk_lines + index % self.chunk_lines
        return line % self.region.lines


def round_robin_home_layout(region: Region, num_nodes: int,
                            granularity: int = 8192) -> List[int]:
    """Which node is home for each chunk of a region (informational; the
    AddressMap in :mod:`repro.mem.addr` is authoritative)."""
    homes = []
    for offset in range(0, region.bytes, granularity):
        homes.append(((region.base + offset) // granularity) % num_nodes)
    return homes
