"""TPC-C-like workload (Section 4's robustness check).

The paper reports that with a workload modelled after TPC-C, P8
outperforms OOO by *over a factor of three* — a stronger result than
TPC-B's 2.9x, because TPC-C's new-order transaction is heavier in every
dimension that hurts a wide-issue core: a larger engine code path (more
instruction misses), more tables touched per transaction (warehouse,
district, customer, stock, order-line), notoriously hot district rows, and
even less instruction-level parallelism.

The model reuses the OLTP machinery with re-parameterised footprints; the
district hotspot maps onto the contended branch rows.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from .oltp import OltpParams, OltpWorkload


def tpcc_params(base: Optional[OltpParams] = None) -> OltpParams:
    """Derive TPC-C-shaped parameters from the TPC-B calibration."""
    base = base or OltpParams()
    return replace(
        base,
        # bigger engine code path: more instruction fetch per transaction
        code_runs_per_txn=16,
        code_lines=2560,
        # heavier shared metadata traffic (more tables, more buffer headers)
        metadata_accesses_per_txn=30,
        metadata_lines=1280,
        # new-order touches customer + stock + order-line rows: more
        # uniform table lines per transaction
        account_lines_per_row=2,
        index_accesses_per_txn=3,
        # the classic district hotspot: few, fiercely contended rows
        branches=16,
        branch_lines_per_row=1,
        # order-line inserts: more whole-line appends
        history_lines_per_txn=2,
        seed=2100,
    )


class TpccWorkload(OltpWorkload):
    """TPC-C-like OLTP (new-order-dominated mix)."""

    name = "tpcc"
    #: even less ILP than TPC-B (deep dependent chains through B-trees)
    ilp = 1.2

    def __init__(self, params: Optional[OltpParams] = None,
                 cpus_per_node: int = 8, num_nodes: int = 1) -> None:
        super().__init__(params or tpcc_params(), cpus_per_node, num_nodes)
