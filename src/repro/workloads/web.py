"""Web-server / search workload (Section 6).

The paper expects Piranha to suit web-serving workloads with explicit
thread-level parallelism, citing that the AltaVista search engine
"exhibits behavior similar to decision support (DSS) workloads" [4]:
index-scan loops with high spatial locality and little inter-thread
communication, but — unlike a pure table scan — with a zipf-hot cached
index portion and per-query result assembly.

The model: each CPU serves a stream of queries; a query walks several
posting-list segments (sequential line runs at random index locations,
with a zipf-hot head that stays cache-resident), scores candidates
(CPU-heavy loop), and appends to a private result buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..core.messages import AccessKind
from ..sim.rng import substream
from .base import AddressSpaceBuilder, Workload, WorkloadThread, ZipfSampler


@dataclass(frozen=True)
class WebParams:
    """Tunable shape parameters for the search/web model."""

    queries: int = 150
    warmup_queries: int = 40
    #: service loop code (fits the L1I, like DSS)
    code_lines: int = 64
    #: shared in-memory index: 16 MB of posting lists
    index_lines: int = 1 << 18
    index_zipf: float = 0.9
    #: posting-list segments walked per query and their run length
    segments_per_query: int = 4
    segment_lines: int = 8
    #: scoring work per segment line (instructions)
    instrs_per_line: int = 220
    #: private per-CPU result buffer
    result_lines: int = 32
    seed: int = 7000


class WebWorkload(Workload):
    """AltaVista-like search serving (DSS-shaped, zipf-hot index)."""

    name = "web"
    ilp = 1.65  # loop-heavy scoring exposes ILP, like DSS

    def __init__(self, params: Optional[WebParams] = None,
                 cpus_per_node: int = 8, num_nodes: int = 1) -> None:
        self.params = params or WebParams()
        self.cpus_per_node = cpus_per_node
        self.num_nodes = num_nodes
        p = self.params
        total_cpus = cpus_per_node * num_nodes
        space = AddressSpaceBuilder()
        self.code = space.region("code", p.code_lines)
        self.index = space.region("index", p.index_lines)
        self.result = space.region("result", p.result_lines * total_cpus)
        space.validate()
        self.space = space
        segments = p.index_lines // p.segment_lines
        self._segment_sampler = ZipfSampler(segments, p.index_zipf)

    def thread_for(self, node: int, cpu: int) -> Optional[WorkloadThread]:
        if node >= self.num_nodes or cpu >= self.cpus_per_node:
            return None
        p = self.params
        global_cpu = node * self.cpus_per_node + cpu
        rng = substream(p.seed, "web", node, cpu)
        result_base = global_cpu * p.result_lines

        def gen() -> Iterator:
            from ..core.cpu import WARMUP_DONE

            total = p.queries + p.warmup_queries
            for query in range(total):
                if query == p.warmup_queries:
                    yield (0, None, WARMUP_DONE, True)
                for seg in range(p.segments_per_query):
                    rank = self._segment_sampler.sample(rng.random())
                    start = rank * p.segment_lines
                    for i in range(p.segment_lines):
                        line = start + i
                        # posting-list lines stream through the window
                        yield (4, AccessKind.LOAD,
                               self.index.line_addr(line), False)
                        # scoring work over the resident service loop
                        code_line = (query * 7 + seg * 3 + i) % p.code_lines
                        yield (p.instrs_per_line, AccessKind.IFETCH,
                               self.code.line_addr(code_line), True)
                # result assembly (private, hits)
                yield (30, AccessKind.STORE,
                       self.result.line_addr(result_base
                                             + query % p.result_lines), True)

        return WorkloadThread(gen(), ilp=self.ilp, name=f"web-n{node}c{cpu}")
