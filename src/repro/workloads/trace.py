"""Reference-trace recording and replay.

Any workload's per-CPU item stream can be recorded to a compact on-disk
trace and replayed later — useful for (a) freezing a workload for
regression comparisons, (b) shipping reproducible inputs without the
generator, and (c) inspecting streams offline.

Format (version 1): a text header line ``#repro-trace v1 ilp=<float>``
followed by one record per item: ``<instrs> <kind> <addr-hex> <dep>``
where ``kind`` is the AccessKind integer or ``-`` for pure compute, and
``dep`` is ``1``/``0``.  Gzip-compressed when the path ends in ``.gz``.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Optional, Union

from ..core.messages import AccessKind
from .base import Workload, WorkloadThread

MAGIC = "#repro-trace v1"


class TraceError(ValueError):
    """Malformed trace input."""


def _open(path: Union[str, Path], mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def record_thread(thread, path: Union[str, Path],
                  max_items: Optional[int] = None) -> int:
    """Drain *thread* into a trace file; returns the item count."""
    ilp = getattr(thread, "ilp", 1.0)
    count = 0
    with _open(path, "w") as fh:
        fh.write(f"{MAGIC} ilp={ilp}\n")
        for instrs, kind, addr, dep in thread:
            kind_field = "-" if kind is None else str(int(kind))
            fh.write(f"{instrs} {kind_field} {addr:x} {int(bool(dep))}\n")
            count += 1
            if max_items is not None and count >= max_items:
                break
    return count


def read_trace(path: Union[str, Path]):
    """Parse a trace file; returns (ilp, list of items)."""
    with _open(path, "r") as fh:
        header = fh.readline().rstrip("\n")
        if not header.startswith(MAGIC):
            raise TraceError(f"bad trace header: {header!r}")
        try:
            ilp = float(header.split("ilp=")[1])
        except (IndexError, ValueError):
            raise TraceError(f"bad ilp field in header: {header!r}") from None
        items = []
        for lineno, line in enumerate(fh, start=2):
            parts = line.split()
            if len(parts) != 4:
                raise TraceError(f"line {lineno}: expected 4 fields")
            instrs = int(parts[0])
            kind = None if parts[1] == "-" else AccessKind(int(parts[1]))
            addr = int(parts[2], 16)
            dep = parts[3] == "1"
            items.append((instrs, kind, addr, dep))
    return ilp, items


class TraceWorkload(Workload):
    """Workload replaying recorded traces: one trace file per (node, cpu)."""

    name = "trace"

    def __init__(self, traces) -> None:
        """``traces`` maps ``(node, cpu)`` to a trace path."""
        self.traces = dict(traces)
        self._loaded = {}

    def thread_for(self, node: int, cpu: int) -> Optional[WorkloadThread]:
        path = self.traces.get((node, cpu))
        if path is None:
            return None
        if path not in self._loaded:
            self._loaded[path] = read_trace(path)
        ilp, items = self._loaded[path]
        return WorkloadThread(iter(items), ilp=ilp,
                              name=f"trace-n{node}c{cpu}")


def record_workload(workload, directory: Union[str, Path],
                    nodes: int, cpus_per_node: int,
                    max_items: Optional[int] = None,
                    compress: bool = True) -> "TraceWorkload":
    """Record every thread of *workload* into *directory*; returns the
    replaying TraceWorkload."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = ".trace.gz" if compress else ".trace"
    traces = {}
    for node in range(nodes):
        for cpu in range(cpus_per_node):
            thread = workload.thread_for(node, cpu)
            if thread is None:
                continue
            path = directory / f"n{node}c{cpu}{suffix}"
            record_thread(thread, path, max_items=max_items)
            traces[(node, cpu)] = path
    return TraceWorkload(traces)
