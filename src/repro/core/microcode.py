"""Protocol-engine microcode: instruction set, assembler, sequencer.

Section 2.5.1: the home and remote engines are *microprogrammable*
controllers in the style of the S3.mp protocol engines.  The microcode
memory holds 1024 21-bit instructions; each instruction is a 3-bit opcode,
two 4-bit arguments, and a 10-bit next-instruction address.  Seven
instruction types exist: SEND, RECEIVE, LSEND (to local node), LRECEIVE
(from local node), TEST, SET and MOVE.  RECEIVE, LRECEIVE and TEST are
multi-way conditional branches with up to 16 successors, achieved by OR-ing
a 4-bit condition code into the low bits of the next-address field.

The protocol is written at a slightly higher level with symbolic arguments
(:mod:`repro.core.microprograms`), and this module's assembler performs
the translation and mapping into the microcode store — including the
16-aligned branch tables the OR-based dispatch requires (built from MOVE
no-op trampolines, which are themselves ordinary microinstructions).

The sequencer charges one 500 MHz engine cycle per microinstruction; the
hardware's even/odd thread interleave keeps that throughput while hiding
the fetch of the next instruction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

MICROSTORE_WORDS = 1024
INSTRUCTION_BITS = 21
OPCODE_BITS = 3
ARG_BITS = 4
NEXT_BITS = 10
CONDITION_WAYS = 16


class Op(enum.IntEnum):
    """The seven microinstruction types."""

    SEND = 0      # emit a message onto the external interconnect
    RECEIVE = 1   # suspend until an external message arrives (16-way branch)
    LSEND = 2     # emit a message to a module on the local node
    LRECEIVE = 3  # suspend until a local message arrives (16-way branch)
    TEST = 4      # evaluate a condition (16-way branch)
    SET = 5       # perform a state-modifying action on the TSRF/directory
    MOVE = 6      # move between TSRF registers (arg1==arg2==0: no-op/jump)


class MicrocodeError(Exception):
    """Assembly or execution error in protocol microcode."""


@dataclass(frozen=True)
class Word:
    """One encoded 21-bit microinstruction."""

    op: Op
    arg1: int
    arg2: int
    next_addr: int

    def encode(self) -> int:
        for value, bits, what in (
            (self.arg1, ARG_BITS, "arg1"),
            (self.arg2, ARG_BITS, "arg2"),
            (self.next_addr, NEXT_BITS, "next"),
        ):
            if not 0 <= value < (1 << bits):
                raise MicrocodeError(f"{what}={value} exceeds {bits} bits")
        return (
            (int(self.op) << (ARG_BITS * 2 + NEXT_BITS))
            | (self.arg1 << (ARG_BITS + NEXT_BITS))
            | (self.arg2 << NEXT_BITS)
            | self.next_addr
        )

    @staticmethod
    def decode(encoded: int) -> "Word":
        if not 0 <= encoded < (1 << INSTRUCTION_BITS):
            raise MicrocodeError("encoded word exceeds 21 bits")
        return Word(
            op=Op(encoded >> (ARG_BITS * 2 + NEXT_BITS)),
            arg1=(encoded >> (ARG_BITS + NEXT_BITS)) & 0xF,
            arg2=(encoded >> NEXT_BITS) & 0xF,
            next_addr=encoded & ((1 << NEXT_BITS) - 1),
        )


#: Terminal next-address: thread completes and its TSRF entry is freed.
#: (Address 1023 is reserved by convention.)
END = MICROSTORE_WORDS - 1


@dataclass
class Instr:
    """One symbolic (pre-assembly) instruction.

    * ``next``: label of the successor for straight-line ops; ``None``
      falls through to the following instruction; the special label
      ``"end"`` terminates the thread (its TSRF entry is freed).
    * ``targets``: for branching ops, maps condition code -> label.  A
      ``None`` key supplies the default for unlisted codes.
    """

    op: Op
    arg1: str = ""
    arg2: int = 0
    label: Optional[str] = None
    next: Optional[str] = None
    targets: Optional[Dict[Optional[int], str]] = None

    def is_branch(self) -> bool:
        return self.op in (Op.RECEIVE, Op.LRECEIVE, Op.TEST)


@dataclass
class Program:
    """An assembled microprogram."""

    name: str
    store: List[Optional[Word]]
    entry_points: Dict[str, int]
    #: symbol tables used at execution time
    conditions: Dict[str, int]
    actions: Dict[str, int]
    messages: Dict[str, int]
    symbolic_count: int = 0

    @property
    def words_used(self) -> int:
        return sum(1 for w in self.store if w is not None)

    def word_at(self, addr: int) -> Word:
        if not 0 <= addr < MICROSTORE_WORDS:
            raise MicrocodeError(f"PC {addr} outside microstore")
        word = self.store[addr]
        if word is None:
            raise MicrocodeError(f"jump into unprogrammed address {addr}")
        return word


def disassemble(program: "Program") -> str:
    """Human-readable microstore listing (debug/bring-up tooling, the
    moral equivalent of the paper's 'sophisticated microcode assembler'
    round trip).

    Symbolic names are recovered from the program's symbol tables; branch
    trampolines are annotated with their targets.
    """
    by_addr = {addr: label for label, addr in program.entry_points.items()}
    rev = {
        Op.SEND: {v: k for k, v in program.messages.items()},
        Op.LSEND: {v: k for k, v in program.messages.items()},
        Op.TEST: {v: k for k, v in program.conditions.items()},
        Op.SET: {v: k for k, v in program.actions.items()},
        Op.MOVE: {v: k for k, v in program.actions.items()},
    }
    lines = []
    for addr, word in enumerate(program.store):
        if word is None:
            continue
        label = by_addr.get(addr, "")
        sym = rev.get(word.op, {}).get(word.arg1, f"#{word.arg1}")
        if word.op == Op.MOVE and word.arg1 == 0 and word.arg2 == 0:
            body = f"JUMP    -> {word.next_addr}"
            target = by_addr.get(word.next_addr)
            if target:
                body += f" ({target})"
        elif word.op in (Op.RECEIVE, Op.LRECEIVE):
            body = f"{word.op.name:<7} table@{word.next_addr}"
        elif word.op == Op.TEST:
            body = f"{word.op.name:<7} {sym} table@{word.next_addr}"
        else:
            body = f"{word.op.name:<7} {sym} -> {word.next_addr}"
            if word.next_addr == END:
                body = f"{word.op.name:<7} {sym} -> END"
        lines.append(f"{addr:4d}  {label:<22s} {body}")
    return "\n".join(lines)


class Assembler:
    """Translate a symbolic protocol program into the 1024-word store.

    Symbol spaces (each limited to 16 entries by the 4-bit argument
    fields): *conditions* (TEST selectors), *actions* (SET selectors) and
    *messages* (SEND/LSEND kinds).  RECEIVE/LRECEIVE dispatch on the
    arriving message kind, so their condition codes are message ids.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.conditions: Dict[str, int] = {}
        self.actions: Dict[str, int] = {}
        self.messages: Dict[str, int] = {}

    def _intern(self, table: Dict[str, int], sym: str, what: str) -> int:
        if sym not in table:
            if len(table) >= CONDITION_WAYS:
                raise MicrocodeError(
                    f"{what} table overflow: 4-bit arguments allow only 16 "
                    f"entries ({sorted(table)} + {sym!r})"
                )
            table[sym] = len(table)
        return table[sym]

    def message_id(self, sym: str) -> int:
        return self._intern(self.messages, sym, "message")

    def condition_id(self, sym: str) -> int:
        return self._intern(self.conditions, sym, "condition")

    def action_id(self, sym: str) -> int:
        return self._intern(self.actions, sym, "action")

    def assemble(self, instrs: Sequence[Instr]) -> Program:
        """Lay out instructions and branch tables into the microstore."""
        # 1. assign sequential addresses to the symbolic instructions
        labels: Dict[str, int] = {}
        for i, ins in enumerate(instrs):
            if ins.label is not None:
                if ins.label in labels:
                    raise MicrocodeError(f"duplicate label {ins.label!r}")
                labels[ins.label] = i
        n = len(instrs)
        if n >= MICROSTORE_WORDS:
            raise MicrocodeError("program exceeds the 1024-word microstore")

        # 2. allocate 16-aligned branch tables after the code
        table_base = -(-n // CONDITION_WAYS) * CONDITION_WAYS
        branch_tables: List[Tuple[int, Instr]] = []
        for ins in instrs:
            if ins.is_branch():
                if not ins.targets:
                    raise MicrocodeError(f"branch {ins} lacks targets")
                branch_tables.append((table_base, ins))
                table_base += CONDITION_WAYS
        if table_base >= MICROSTORE_WORDS:
            raise MicrocodeError(
                f"program + branch tables ({table_base} words) exceed the "
                f"microstore"
            )

        store: List[Optional[Word]] = [None] * MICROSTORE_WORDS

        def resolve(label: Optional[str]) -> int:
            if label is None or label == "end":
                return END
            try:
                return labels[label]
            except KeyError:
                raise MicrocodeError(f"undefined label {label!r}") from None

        # 3. encode instructions
        table_iter = iter(branch_tables)
        for addr, ins in enumerate(instrs):
            if ins.is_branch():
                base, _ = next(table_iter)
                if ins.op == Op.TEST:
                    arg1 = self.condition_id(ins.arg1)
                else:
                    arg1 = 0  # dispatch code supplied by the arriving message
                store[addr] = Word(ins.op, arg1, ins.arg2, base)
                # trampolines: MOVE no-ops whose next field is the target
                default = ins.targets.get(None)
                for code in range(CONDITION_WAYS):
                    label = ins.targets.get(code, default)
                    if label is None:
                        continue  # unreachable code -> unprogrammed slot
                    store[base + code] = Word(Op.MOVE, 0, 0, resolve(label))
            else:
                if ins.op in (Op.SEND, Op.LSEND):
                    arg1 = self.message_id(ins.arg1)
                elif ins.op == Op.SET:
                    arg1 = self.action_id(ins.arg1)
                elif ins.op == Op.MOVE:
                    arg1 = self._intern(self.actions, ins.arg1, "action") if ins.arg1 else 0
                else:  # pragma: no cover - exhaustive
                    raise MicrocodeError(f"unhandled op {ins.op}")
                if ins.next is None:
                    if addr + 1 >= n:
                        raise MicrocodeError(
                            f"instruction {addr} falls through past the end "
                            f"of the program (use next='end')"
                        )
                    nxt = addr + 1  # implicit fall-through
                else:
                    nxt = resolve(ins.next)
                store[addr] = Word(ins.op, arg1, ins.arg2, nxt)

        entry_points = dict(labels)
        return Program(
            name=self.name,
            store=store,
            entry_points=entry_points,
            conditions=dict(self.conditions),
            actions=dict(self.actions),
            messages=dict(self.messages),
            symbolic_count=len(instrs),
        )


class Environment:
    """Execution-time binding of microcode symbols to node behaviour.

    The protocol engine supplies an Environment per thread execution;
    the sequencer calls back into it for every SEND/LSEND/SET/MOVE/TEST.
    All callbacks receive the thread's TSRF entry.
    """

    def __init__(self) -> None:
        self.senders: Dict[int, Callable] = {}
        self.local_senders: Dict[int, Callable] = {}
        self.conditions: Dict[int, Callable] = {}
        self.actions: Dict[int, Callable] = {}

    @classmethod
    def bind(
        cls,
        program: Program,
        senders: Dict[str, Callable],
        local_senders: Dict[str, Callable],
        conditions: Dict[str, Callable],
        actions: Dict[str, Callable],
    ) -> "Environment":
        """Match the program's symbol tables against handler dicts."""
        env = cls()
        for table, handlers, out, what in (
            (program.messages, senders, env.senders, "SEND"),
            (program.messages, local_senders, env.local_senders, "LSEND"),
            (program.conditions, conditions, env.conditions, "TEST"),
            (program.actions, actions, env.actions, "SET"),
        ):
            for sym, idx in table.items():
                if sym in handlers:
                    out[idx] = handlers[sym]
        missing_conditions = set(program.conditions.values()) - set(env.conditions)
        if missing_conditions:
            names = [s for s, i in program.conditions.items() if i in missing_conditions]
            raise MicrocodeError(f"unbound TEST conditions: {names}")
        return env


class StepResult(enum.Enum):
    """Why the sequencer stopped advancing a thread."""

    BLOCKED_EXTERNAL = "blocked_external"   # at a RECEIVE
    BLOCKED_LOCAL = "blocked_local"         # at an LRECEIVE
    DONE = "done"                           # reached END


class Sequencer:
    """Executes microcode for one thread until it blocks or completes.

    Returns the number of microinstructions executed (the engine charges
    one cycle each) plus the reason for stopping.  The engine resource
    model and thread scheduling live in
    :class:`repro.core.protocol_engine.ProtocolEngine`.
    """

    def __init__(self, program: Program, env: Environment) -> None:
        self.program = program
        self.env = env

    def run(self, entry: "TsrfEntryLike", dispatch_code: Optional[int] = None
            ) -> Tuple[int, StepResult]:
        executed = 0
        pc = entry.pc
        # A thread resuming from RECEIVE/LRECEIVE branches through the
        # table slot selected by the arriving message's condition code.
        if dispatch_code is not None:
            word = self.program.word_at(pc)
            if word.op not in (Op.RECEIVE, Op.LRECEIVE):
                raise MicrocodeError(
                    f"dispatch into non-receive instruction at {pc}"
                )
            executed += 1  # the RECEIVE itself retires now
            pc = word.next_addr | (dispatch_code & 0xF)
        while True:
            if pc == END:
                entry.pc = END
                return executed, StepResult.DONE
            word = self.program.word_at(pc)
            if word.op in (Op.RECEIVE, Op.LRECEIVE):
                entry.pc = pc  # re-dispatched with a code when woken
                blocked = (
                    StepResult.BLOCKED_EXTERNAL
                    if word.op == Op.RECEIVE
                    else StepResult.BLOCKED_LOCAL
                )
                return executed, blocked
            executed += 1
            if word.op == Op.TEST:
                cond = self.env.conditions[word.arg1]
                code = int(cond(entry)) & 0xF
                pc = word.next_addr | code
            elif word.op == Op.SET:
                action = self.env.actions.get(word.arg1)
                if action is None:
                    raise MicrocodeError(
                        f"unbound SET action id {word.arg1} at {pc}"
                    )
                action(entry, word.arg2)
                pc = word.next_addr
            elif word.op == Op.MOVE:
                if word.arg1 or word.arg2:
                    action = self.env.actions.get(word.arg1)
                    if action is not None:
                        action(entry, word.arg2)
                pc = word.next_addr
            elif word.op == Op.SEND:
                sender = self.env.senders.get(word.arg1)
                if sender is None:
                    raise MicrocodeError(f"unbound SEND id {word.arg1} at {pc}")
                sender(entry)
                pc = word.next_addr
            elif word.op == Op.LSEND:
                sender = self.env.local_senders.get(word.arg1)
                if sender is None:
                    raise MicrocodeError(f"unbound LSEND id {word.arg1} at {pc}")
                sender(entry)
                pc = word.next_addr
            else:  # pragma: no cover - exhaustive
                raise MicrocodeError(f"unknown opcode {word.op}")


class TsrfEntryLike:
    """Protocol for objects the sequencer manipulates (see tsrf.py)."""

    pc: int
