"""Processor core models.

The Piranha core (Section 2.1) is a single-issue, in-order, 500 MHz,
eight-stage pipeline; most instructions execute in one cycle, and its
blocking L1s stall it for the full duration of every miss.  The INO
baseline is the same execution model at 1 GHz.

The OOO baseline models an aggressive 1 GHz four-issue out-of-order core
with a 64-entry instruction window: its busy time is scaled by the
workload's available ILP (commercial workloads expose little — the paper's
motivation), its window hides a bounded slice of each *dependent* miss, and
up to ``max_outstanding`` independent (streaming) misses overlap fully.
The hidden slice of a dependent miss is charged as busy time when the miss
returns and credited back against subsequent computation, so total time
remains exactly busy + effective stall.

CPUs consume *workload threads*: iterators yielding
``(instructions, kind, addr, dependent)`` items (see
:mod:`repro.workloads.base`).  L1 hits are folded into the issuing CPU's
local time — only misses enter the event-driven memory system — which is
what makes whole-workload simulation tractable.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..sim.engine import Component, Simulator, ns
from .config import ChipConfig
from .messages import (
    MEMORY_SOURCES,
    ON_CHIP_SOURCES,
    AccessKind,
    MESI,
    MemRequest,
    ReplySource,
    request_for,
)

#: Upper bound on hit-folding: after this many instructions the CPU yields
#: an event so cross-CPU interactions (invalidations) stay timely.
MAX_BATCH_INSTRUCTIONS = 256

WorkItem = Tuple[int, Optional[AccessKind], int, bool]

#: Sentinel address in a ``(0, None, WARMUP_DONE, ...)`` item: the thread
#: finished its warm-up phase; the CPU zeroes its accounting (caches stay
#: warm) and tells the system, which resets shared-module statistics once
#: every CPU has warmed.
WARMUP_DONE = -1


class CpuCore(Component):
    """Base class: workload-driven core attached to its iL1/dL1 pair."""

    def __init__(self, sim: Simulator, name: str, chip, cpu_id: int,
                 config: ChipConfig) -> None:
        super().__init__(sim, name)
        self.chip = chip
        self.cpu_id = cpu_id
        self.config = config
        self.clock = config.core.clock()
        self.thread: Optional[Iterator[WorkItem]] = None
        self._l1i = self._l1d = None  # resolved in start()
        self.finished = False
        self.finish_time: Optional[int] = None
        self.start_time: int = 0
        # accounting (picoseconds)
        self.busy_ps = 0
        self.stall_ps: Dict[ReplySource, int] = {s: 0 for s in ReplySource}
        #: misses serviced per reply source.  With stall_ps this gives the
        #: counter-derived mean service latency per source, the anchor the
        #: probe cross-check in CI compares against (exact for in-order
        #: cores, where every miss stalls for its full service time).
        self.stall_counts: Dict[ReplySource, int] = {s: 0 for s in ReplySource}
        self.instructions = 0
        self.refs = 0
        self.misses = 0
        self.fence_stall_ps = 0
        self._fence_start = 0
        self.c_wh64 = self.stats.counter("wh64_issued")
        self.c_membar = self.stats.counter("membars")
        #: optional completion observer (the fuzz reference checker):
        #: called as ``obs_hook(kind, addr)`` synchronously inside the
        #: event that completes each data access or fence, so the caller
        #: can inspect cache state before anything else can intervene.
        #: The hot path pays a single ``is None`` test when unset.
        self.obs_hook = None
        self._obs_pending: Optional[Tuple[AccessKind, int]] = None
        #: optional explicit TLBs (see core.tlb); enabled by a positive
        #: L1Params.tlb_refill_ns
        self.tlb_refill_ps = int(config.l1.tlb_refill_ns * 1000)
        if self.tlb_refill_ps:
            from .tlb import Tlb

            self.itlb = Tlb(config.l1.tlb_entries, config.l1.tlb_assoc)
            self.dtlb = Tlb(config.l1.tlb_entries, config.l1.tlb_assoc)
        else:
            self.itlb = self.dtlb = None

    # -- public ------------------------------------------------------------

    def attach(self, thread: Iterator[WorkItem]) -> None:
        """Attach the workload thread this core will execute."""
        self.thread = thread

    def start(self) -> None:
        """Begin consuming the attached workload thread."""
        if self.thread is None:
            raise RuntimeError(f"{self.name}: no workload attached")
        # resolve the iL1/dL1 once; _run consults them per memory reference
        self._l1i = self.chip.l1_of(self.cpu_id, True)
        self._l1d = self.chip.l1_of(self.cpu_id, False)
        self.start_time = self.now
        self.schedule(0, self._run)

    @property
    def stall_on_chip_ps(self) -> int:
        """Stall serviced by the L2 or another on-chip L1 (Figure 5's
        'L2 hit' component)."""
        return sum(self.stall_ps[s] for s in ON_CHIP_SOURCES)

    @property
    def stall_memory_ps(self) -> int:
        """Stall serviced by local or remote memory ('L2 miss')."""
        return sum(self.stall_ps[s] for s in MEMORY_SOURCES)

    @property
    def total_ps(self) -> int:
        return (self.busy_ps + sum(self.stall_ps.values())
                + self.fence_stall_ps)

    # -- execution ---------------------------------------------------------

    def _run(self) -> None:
        raise NotImplementedError

    def reset_accounting(self) -> None:
        """Zero time/miss accounting (cache state is untouched)."""
        self.busy_ps = 0
        self.stall_ps = {s: 0 for s in ReplySource}
        self.stall_counts = {s: 0 for s in ReplySource}
        self.instructions = 0
        self.refs = 0
        self.misses = 0
        self.fence_stall_ps = 0
        self.start_time = self.now

    def _do_fence(self) -> None:
        """Alpha MB: wait until every eager exclusive grant this CPU
        received has gathered its invalidation acknowledgements."""
        self.c_membar.inc()
        self._fence_start = self.now
        if self.chip.fence(self.cpu_id, self._fence_resume):
            if self.obs_hook is not None:
                self.obs_hook(AccessKind.MEMBAR, 0)
            self._run()

    def _fence_resume(self) -> None:
        self.fence_stall_ps += self.now - self._fence_start
        if self.obs_hook is not None:
            self.obs_hook(AccessKind.MEMBAR, 0)
        self._run()

    def _obs_complete(self) -> None:
        """Fire the observer for the data miss that just completed (the
        pending op was noted at issue; misses on these cores complete
        one at a time, so a single slot suffices)."""
        pending = self._obs_pending
        if pending is not None:
            self._obs_pending = None
            self.obs_hook(pending[0], pending[1])

    def _after_warmup(self) -> None:
        self.reset_accounting()
        self.chip.system.cpu_warmed_up(self.chip.node_id, self.cpu_id)
        self._run()

    def _finish(self) -> None:
        if not self.finished:
            self.finished = True
            self.finish_time = self.now
            self.chip.cpu_finished(self.cpu_id)


class InOrderCpu(CpuCore):
    """Single-issue in-order core with blocking caches (Piranha / INO)."""

    def _run(self) -> None:
        cycle = self.clock.period_ps
        accum = 0
        batch = 0
        thread = self.thread
        while True:
            try:
                instrs, kind, addr, _dep = next(thread)
            except StopIteration:
                self.busy_ps += accum
                self.schedule(accum, self._finish)
                return
            accum += instrs * cycle
            batch += instrs
            self.instructions += instrs
            if kind is None:
                if addr == WARMUP_DONE:
                    self.busy_ps += accum
                    self.schedule(accum, self._after_warmup)
                    return
                if batch >= MAX_BATCH_INSTRUCTIONS:
                    self.busy_ps += accum
                    self.schedule(accum, self._run)
                    return
                continue
            if kind == AccessKind.MEMBAR:
                self.busy_ps += accum
                self.schedule(accum, self._do_fence)
                return
            self.refs += 1
            is_instr = kind == AccessKind.IFETCH
            if self.tlb_refill_ps:
                tlb = self.itlb if is_instr else self.dtlb
                if not tlb.lookup(addr):
                    accum += self.tlb_refill_ps  # PAL refill executes code
            l1 = self._l1i if is_instr else self._l1d
            result = l1.lookup(addr, kind)
            if result.hit:
                if self.obs_hook is not None and not is_instr:
                    self.obs_hook(kind, addr)
                if batch >= MAX_BATCH_INSTRUCTIONS:
                    self.busy_ps += accum
                    self.schedule(accum, self._run)
                    return
                continue
            # Miss: the in-order core stalls for the full service time.
            self.busy_ps += accum
            self.misses += 1
            if kind == AccessKind.WH64:
                self.c_wh64.inc()
            if self.obs_hook is not None and not is_instr:
                self._obs_pending = (kind, addr)
            reqtype = request_for(kind, result.state)
            req = MemRequest(
                cpu_id=self.cpu_id, kind=kind, addr=addr, is_instr=is_instr,
                done=self._miss_done, node=self.chip.node_id,
            )
            self.schedule(accum, self._issue, req, reqtype)
            return

    def _issue(self, req: MemRequest, reqtype) -> None:
        req.issue_time = self.now
        self.chip.issue_miss(req, reqtype)

    def _miss_done(self, latency_ps: int, source: ReplySource) -> None:
        self.stall_ps[source] += latency_ps
        self.stall_counts[source] += 1
        if self.obs_hook is not None:
            self._obs_complete()
        self._run()


class OooCpu(CpuCore):
    """Four-issue out-of-order core with a 64-entry window (OOO baseline)."""

    def __init__(self, sim: Simulator, name: str, chip, cpu_id: int,
                 config: ChipConfig) -> None:
        super().__init__(sim, name, chip, cpu_id, config)
        self.overlap_ps = ns(config.core.overlap_ns)
        self.max_outstanding = config.core.max_outstanding
        self.credit_ps = 0
        self.outstanding = 0
        self._blocked = False
        self._drained_cb = False

    def _ipc(self) -> float:
        ilp = getattr(self.thread, "ilp", 1.0)
        return max(1.0, min(float(self.config.core.issue_width), ilp))

    def _run(self) -> None:
        cycle = self.clock.period_ps
        ipc = self._ipc()
        accum = 0
        batch = 0
        thread = self.thread
        while True:
            try:
                instrs, kind, addr, dep = next(thread)
            except StopIteration:
                self.busy_ps += accum
                self._drained_cb = True
                self.schedule(accum, self._maybe_finish)
                return
            work = int(instrs * cycle / ipc)
            charged = max(0, work - self.credit_ps)
            self.credit_ps -= work - charged
            accum += charged
            batch += instrs
            self.instructions += instrs
            if kind is None:
                if addr == WARMUP_DONE:
                    self.busy_ps += accum
                    self.schedule(accum, self._after_warmup)
                    return
                if batch >= MAX_BATCH_INSTRUCTIONS:
                    self.busy_ps += accum
                    self.schedule(accum, self._run)
                    return
                continue
            if kind == AccessKind.MEMBAR:
                self.busy_ps += accum
                self._draining_fence = True
                self.schedule(accum, self._ooo_fence)
                return
            self.refs += 1
            is_instr = kind == AccessKind.IFETCH
            if self.tlb_refill_ps:
                tlb = self.itlb if is_instr else self.dtlb
                if not tlb.lookup(addr):
                    accum += self.tlb_refill_ps
            l1 = self._l1i if is_instr else self._l1d
            result = l1.lookup(addr, kind)
            if result.hit:
                if self.obs_hook is not None and not is_instr:
                    self.obs_hook(kind, addr)
                if batch >= MAX_BATCH_INSTRUCTIONS:
                    self.busy_ps += accum
                    self.schedule(accum, self._run)
                    return
                continue
            self.misses += 1
            reqtype = request_for(kind, result.state)
            # An observed core serialises every miss: per-access
            # observation order must match program order, which streaming
            # (overlapped, out-of-order-completing) misses would break.
            streaming = (not dep and self.outstanding < self.max_outstanding
                         and self.obs_hook is None)
            if self.obs_hook is not None and not streaming and not is_instr:
                self._obs_pending = (kind, addr)
            req = MemRequest(
                cpu_id=self.cpu_id, kind=kind, addr=addr, is_instr=is_instr,
                done=(self._stream_done if streaming else self._dep_done),
                node=self.chip.node_id,
            )
            if streaming:
                # Independent miss: fully overlapped behind the window
                # (MSHR-style); only MSHR pressure can expose its latency.
                self.outstanding += 1
                self.schedule(accum, self._issue, req, reqtype)
                if batch >= MAX_BATCH_INSTRUCTIONS:
                    self.busy_ps += accum
                    self.schedule(accum, self._run)
                    return
                continue
            self.busy_ps += accum
            self._blocked = True
            self.schedule(accum, self._issue, req, reqtype)
            return

    def _issue(self, req: MemRequest, reqtype) -> None:
        req.issue_time = self.now
        self.chip.issue_miss(req, reqtype)

    def _dep_done(self, latency_ps: int, source: ReplySource) -> None:
        hidden = min(latency_ps, self.overlap_ps)
        self.stall_counts[source] += 1
        self.stall_ps[source] += latency_ps - hidden
        self.busy_ps += hidden
        self.credit_ps += hidden
        self._blocked = False
        if self.obs_hook is not None:
            self._obs_complete()
        self._run()

    def _stream_done(self, latency_ps: int, source: ReplySource) -> None:
        # streaming misses hide their whole latency, so stall_ps stays 0,
        # but the service count still feeds the per-source mean
        self.stall_counts[source] += 1
        self.outstanding -= 1
        if getattr(self, "_draining_fence", False) and self.outstanding == 0:
            self._ooo_fence()
        if self._drained_cb:
            self._maybe_finish()

    def _ooo_fence(self) -> None:
        """An OOO MB first drains its own outstanding misses, then waits
        for the invalidation acks like the in-order core."""
        if self.outstanding > 0:
            return  # _stream_done re-invokes when the last one lands
        self._draining_fence = False
        self._do_fence()

    def _maybe_finish(self) -> None:
        if self.outstanding == 0 and not self._blocked:
            self._finish()


def make_cpu(sim: Simulator, name: str, chip, cpu_id: int,
             config: ChipConfig) -> CpuCore:
    """Factory selecting the core model from the configuration."""
    if config.core.model == "ooo":
        return OooCpu(sim, name, chip, cpu_id, config)
    return InOrderCpu(sim, name, chip, cpu_id, config)
