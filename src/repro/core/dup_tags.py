"""Duplicate L1 tag/state directory kept at the L2 controllers (§2.3).

To avoid snooping the L1s, each L2 controller maintains an exact duplicate
of the tag and state of every L1 line that maps to its bank (by address
interleaving).  The duplicate state is extended with the notion of
**ownership**: the owner of a line is the L2 (when it holds a valid copy),
an L1 holding it exclusive, or one of the sharing L1s — typically the last
requester.  Only the owner writes the line back on replacement, which gives
a near-optimal L2 (victim-cache) fill policy without extra tag-lookup
cycles on the L2 hit path.

The paper bounds the overhead of the duplicate tags at less than 1/32 of
the total on-chip memory; :func:`duplicate_tag_overhead` reproduces that
accounting and is checked by a unit test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from .config import ChipConfig
from .messages import MESI

#: Sentinel owner value meaning "the L2 itself holds the valid copy".
L2_OWNER = -1


@dataclass
class DupEntry:
    """Duplicate tag/state for one line with at least one on-chip copy."""

    sharers: Set[int] = field(default_factory=set)  # cache ids (cpu*2+instr)
    owner: Optional[int] = None                      # cache id, L2_OWNER, None
    #: per-sharer MESI state mirror (exact duplicate of the L1 state)
    states: Dict[int, MESI] = field(default_factory=dict)

    def is_exclusive(self) -> bool:
        return (
            len(self.sharers) == 1
            and self.owner in self.sharers
            and self.states.get(self.owner) in (MESI.EXCLUSIVE, MESI.MODIFIED)
        )


class DuplicateTags:
    """Duplicate L1 tags for the subset of lines mapping to one L2 bank."""

    def __init__(self, bank: int) -> None:
        self.bank = bank
        self.entries: Dict[int, DupEntry] = {}

    def entry(self, line: int) -> Optional[DupEntry]:
        return self.entries.get(line)

    def sharers(self, line: int) -> Set[int]:
        e = self.entries.get(line)
        return set(e.sharers) if e else set()

    def owner(self, line: int) -> Optional[int]:
        e = self.entries.get(line)
        return e.owner if e else None

    def l1_owner(self, line: int) -> Optional[int]:
        """The owning *L1* cache id, if the owner is an L1 (not the L2)."""
        o = self.owner(line)
        return o if o is not None and o != L2_OWNER else None

    # -- updates (driven by the L2 transaction flow) -----------------------

    def add_sharer(self, line: int, cache_id: int, state: MESI,
                   make_owner: bool) -> DupEntry:
        e = self.entries.setdefault(line, DupEntry())
        e.sharers.add(cache_id)
        e.states[cache_id] = state
        if make_owner:
            e.owner = cache_id
        elif e.owner is None:
            e.owner = cache_id
        return e

    def set_l2_owner(self, line: int) -> None:
        e = self.entries.setdefault(line, DupEntry())
        e.owner = L2_OWNER

    def set_state(self, line: int, cache_id: int, state: MESI) -> None:
        e = self.entries.get(line)
        if e is not None and cache_id in e.sharers:
            e.states[cache_id] = state

    def remove_sharer(self, line: int, cache_id: int) -> None:
        """L1 replacement or invalidation: drop one sharer; ownership moves
        to the L2 only when the transaction flow says so (the caller
        decides whether a write-back accompanied the removal)."""
        e = self.entries.get(line)
        if e is None:
            return
        e.sharers.discard(cache_id)
        e.states.pop(cache_id, None)
        if e.owner == cache_id:
            e.owner = None
        if not e.sharers and e.owner is None:
            del self.entries[line]

    def drop_line(self, line: int) -> None:
        """Remove every trace of a line (all L1 copies invalidated and the
        L2 copy gone)."""
        self.entries.pop(line, None)

    def audit_owner_sanity(self, l2_resident) -> list:
        """Structural ownership check for the protocol sanitizer.

        Returns ``[(line, why), ...]`` for every entry whose ownership is
        inconsistent: an owner that is neither the L2 nor a recorded
        sharer, or an L2-owner claim for a line the L2 does not hold
        (*l2_resident* is the set of L2-resident line addresses).
        """
        problems = []
        for line, e in self.entries.items():
            if e.owner is None:
                continue
            if e.owner == L2_OWNER:
                if line not in l2_resident:
                    problems.append(
                        (line, "owner is the L2 but the L2 holds no copy"))
            elif e.owner not in e.sharers:
                problems.append(
                    (line, f"owner cache {e.owner} is not a sharer "
                           f"({sorted(e.sharers)})"))
        return problems

    def promote_any_owner(self, line: int) -> Optional[int]:
        """When the owner L1 leaves and other sharers remain, hand
        ownership to one of the remaining sharers (the hardware keeps the
        last requester; any deterministic choice preserves the invariant
        that exactly one owner exists)."""
        e = self.entries.get(line)
        if e is None or e.owner is not None or not e.sharers:
            return None
        new_owner = min(e.sharers)
        e.owner = new_owner
        return new_owner


def duplicate_tag_overhead(config: ChipConfig) -> float:
    """Duplicate-tag storage as a fraction of total on-chip memory.

    Per L1 line the controllers mirror the physical tag plus the 2-bit
    state and the ownership bit.  The paper states the total is under 1/32
    of the on-chip memory.
    """
    l1_lines_per_cache = config.l1.size_bytes // config.l1.line_bytes
    total_l1_lines = l1_lines_per_cache * 2 * config.cpus  # iL1 + dL1
    # 40-bit physical addresses: tag = 40 - set index - 6 offset bits.
    import math

    set_bits = int(math.log2(config.l1.sets))
    tag_bits = 40 - set_bits - 6
    bits_per_line = tag_bits + 2 + 1  # tag + MESI + ownership
    dup_tag_bits = total_l1_lines * bits_per_line
    on_chip_bits = (config.l1.size_bytes * 2 * config.cpus
                    + config.l2.size_bytes) * 8
    return dup_tag_bits / on_chip_bits
