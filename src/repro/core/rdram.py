"""Direct Rambus DRAM channel with open-page scheduling (Section 2.4).

Each L2 bank owns one memory controller and one RDRAM channel of up to 32
devices.  A channel moves 1.6 GB/s; a random access returns the critical
word in 60 ns with the rest of the 64-byte line following over another
30 ns.  A hit to an **open page** (512-byte pages) cuts the access latency
from 60 ns to 40 ns, and the controller's page-scheduling policy — keeping
pages open for about a microsecond — achieves over 50% open-page hit rates
on OLTP, which the corresponding benchmark reproduces.

The controller engine tracks open pages per device with a keep-open
deadline, models channel occupancy (the 1.6 GB/s pipe serialises line
transfers), and reports hit-rate statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..sim.engine import Component, Simulator, ns
from .config import ChipConfig, LatencyParams, MemoryParams


@dataclass
class MemAccessResult:
    """Timing outcome of one line access."""

    critical_word_ps: int   # delay until the critical word is available
    line_done_ps: int       # delay until the full line has transferred
    page_hit: bool


class RdramChannel(Component):
    """One Rambus channel: open-page tracking + bandwidth occupancy."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        lat: LatencyParams,
        mem: MemoryParams,
    ) -> None:
        super().__init__(sim, name)
        self.lat = lat
        self.mem = mem
        self.t_random = ns(lat.dram_random)
        self.t_page_hit = ns(lat.dram_page_hit)
        self.t_rest = ns(lat.dram_rest_of_line)
        self.keep_open_ps = ns(mem.page_keep_open_ns)
        #: 64 bytes over 1.6 GB/s = 40 ns of channel occupancy per line.
        self.t_line_transfer = int(64 / (mem.channel_gb_s * 1e9) * 1e12)
        #: open pages: (device, bank) -> (page address, close deadline)
        self._open_pages: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._channel_free = 0
        self.c_accesses = self.stats.counter("accesses")
        self.c_page_hits = self.stats.counter("page_hits")
        self.c_reads = self.stats.counter("reads")
        self.c_writes = self.stats.counter("writes")
        self.c_queued = self.stats.counter("queued_behind_channel")

    # -- geometry ----------------------------------------------------------

    def _device_of(self, addr: int) -> int:
        """Interleave pages across the channel's RDRAM devices."""
        return (addr // self.mem.page_bytes) % self.mem.rdram_per_channel

    def _page_of(self, addr: int) -> int:
        return addr // self.mem.page_bytes

    # -- access ------------------------------------------------------------

    def access(self, addr: int, is_write: bool = False,
               probe=None) -> MemAccessResult:
        """Perform one line read/write; returns its timing."""
        now = self.now
        self.c_accesses.inc()
        (self.c_writes if is_write else self.c_reads).inc()

        device = self._device_of(addr)
        page = self._page_of(addr)
        # a device's consecutive pages rotate across its internal banks,
        # each of which keeps its own page open
        bank = (page // self.mem.rdram_per_channel) % self.mem.banks_per_device
        open_info = self._open_pages.get((device, bank))
        page_hit = (
            open_info is not None
            and open_info[0] == page
            and now <= open_info[1]
        )
        if page_hit:
            self.c_page_hits.inc()
        access_ps = self.t_page_hit if page_hit else self.t_random

        # Channel occupancy: each line holds the 1.6 GB/s channel for its
        # 40 ns data transfer; device access (row activation) pipelines
        # with the previous line's transfer, so sustained throughput is
        # bandwidth-limited while an unloaded access sees full latency.
        start = max(now, self._channel_free)
        if start > now:
            self.c_queued.inc()
        critical = (start - now) + access_ps
        done = critical + self.t_rest
        self._channel_free = start + self.t_line_transfer

        # Keep the page open for ~1 us from this access.
        self._open_pages[(device, bank)] = (page, now + self.keep_open_ps)
        if probe is not None:
            # whole access charged in one event: stamp the critical word
            # at its computed future time (channel queueing included)
            probe.stamp("mem_data", now + critical)
            probe.note("dram_page_hit", page_hit)
        return MemAccessResult(critical_word_ps=critical, line_done_ps=done,
                               page_hit=page_hit)

    def warm_access(self, addr: int, is_write: bool = False) -> bool:
        """Page-state-only access for functional warming.

        Counts the access and updates the open-page table exactly like
        :meth:`access`, but leaves channel occupancy alone: fast-forward
        passes no simulated time, so accumulating 40 ns of transfer
        backlog per warmed line at a frozen clock would poison the next
        detailed window with a phantom queue.  Returns the page-hit
        outcome.
        """
        now = self.now
        self.c_accesses.inc()
        (self.c_writes if is_write else self.c_reads).inc()
        device = self._device_of(addr)
        page = self._page_of(addr)
        bank = (page // self.mem.rdram_per_channel) % self.mem.banks_per_device
        open_info = self._open_pages.get((device, bank))
        page_hit = (
            open_info is not None
            and open_info[0] == page
            and now <= open_info[1]
        )
        if page_hit:
            self.c_page_hits.inc()
        self._open_pages[(device, bank)] = (page, now + self.keep_open_ps)
        return page_hit

    def forgive_backlog(self) -> None:
        """Drop any channel backlog beyond the current time (warm-phase
        write-backs route through the detailed :meth:`access` path and
        would otherwise stack occupancy at a frozen clock)."""
        if self._channel_free > self.now:
            self._channel_free = self.now

    # -- stats -------------------------------------------------------------

    @property
    def page_hit_rate(self) -> float:
        if self.c_accesses.value == 0:
            return 0.0
        return self.c_page_hits.value / self.c_accesses.value

    def open_page_count(self) -> int:
        """Pages currently within their keep-open window."""
        now = self.now
        return sum(1 for _page, deadline in self._open_pages.values()
                   if deadline >= now)


class MemoryController(Component):
    """Memory controller engine fronting one RDRAM channel.

    Unlike the other chip modules the MC has no direct ICS access: the
    owning L2 controller issues line-granularity reads/writes for data and
    the associated directory (Section 2.4), paying ``mc_overhead`` for the
    engine + RAC crossing.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: ChipConfig,
    ) -> None:
        super().__init__(sim, name)
        self.channel = RdramChannel(sim, f"{name}.rdram", config.lat, config.memory)
        self.t_overhead = ns(config.lat.mc_overhead)
        self._bank_bits = (config.l2.banks - 1).bit_length()

    def _channel_addr(self, addr: int) -> int:
        """De-interleave: the L2 banks stripe consecutive lines across the
        controllers, so the lines one channel stores are 512 bytes apart in
        physical address space; compacting them restores page locality."""
        line = addr >> 6
        return ((line >> self._bank_bits) << 6) | (addr & 63)

    def read_line(self, addr: int, probe=None) -> MemAccessResult:
        """Read a line (data + in-ECC directory bits arrive together)."""
        res = self.channel.access(self._channel_addr(addr), is_write=False,
                                  probe=probe)
        if probe is not None:
            # shift the channel's critical-word stamp by the MC overhead
            # so the mem_data hop covers engine + RAC + DRAM end-to-end
            label, t = probe.stamps[-1]
            if label == "mem_data":
                probe.stamps[-1] = (label, t + self.t_overhead)
        return MemAccessResult(
            critical_word_ps=res.critical_word_ps + self.t_overhead,
            line_done_ps=res.line_done_ps + self.t_overhead,
            page_hit=res.page_hit,
        )

    def write_line(self, addr: int) -> MemAccessResult:
        """Write a line (data and/or updated directory bits)."""
        res = self.channel.access(self._channel_addr(addr), is_write=True)
        return MemAccessResult(
            critical_word_ps=res.critical_word_ps + self.t_overhead,
            line_done_ps=res.line_done_ps + self.t_overhead,
            page_hit=res.page_hit,
        )

    def warm_read_line(self, addr: int) -> bool:
        """Timing-free line read for functional warming: advances the
        channel's page state (and access counters) without occupying the
        channel.  Returns the page-hit outcome."""
        return self.channel.warm_access(self._channel_addr(addr),
                                        is_write=False)
