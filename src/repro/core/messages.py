"""Memory-system message and transaction types shared by core modules."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class AccessKind(enum.IntEnum):
    """CPU-issued memory access kinds."""

    IFETCH = 0
    LOAD = 1
    STORE = 2
    #: Alpha ``wh64`` write hint: the processor will write the whole cache
    #: line, so the protocol's *exclusive-without-data* request type can
    #: skip fetching the line's current contents (Section 2.5.3).
    WH64 = 3
    #: Load-locked / store-conditional (Alpha ldx_l/stx_c) used by the ISA
    #: examples; they follow the LOAD/STORE coherence paths.
    LOAD_LOCKED = 4
    STORE_COND = 5
    #: Alpha memory barrier: with eager exclusive replies (ownership
    #: granted before all invalidations complete), an MB is what waits for
    #: the outstanding invalidation acknowledgements (Section 2.5.3).
    MEMBAR = 6


class MESI(enum.IntEnum):
    """Line states kept in the 2-bit per-line field of every L1 (§2.1)."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3


class ReplySource(enum.IntEnum):
    """Where an access was ultimately serviced — drives the Figure 5
    stall breakdown and the Figure 6b miss decomposition."""

    L1_HIT = 0
    L2_HIT = 1        # serviced by the shared L2
    L2_FWD = 2        # forwarded to and serviced by another on-chip L1
    LOCAL_MEM = 3     # home-local memory
    REMOTE_MEM = 4    # 2-hop remote home memory
    REMOTE_DIRTY = 5  # 3-hop remote dirty owner


#: Sources that count as on-chip L2-level service in Figure 5's breakdown.
ON_CHIP_SOURCES = frozenset({ReplySource.L2_HIT, ReplySource.L2_FWD})
#: Sources that count as L2 misses (memory service).
MEMORY_SOURCES = frozenset(
    {ReplySource.LOCAL_MEM, ReplySource.REMOTE_MEM, ReplySource.REMOTE_DIRTY}
)


class RequestType(enum.IntEnum):
    """Coherence request types (Section 2.5.3)."""

    READ = 0
    READ_EXCLUSIVE = 1
    EXCLUSIVE = 2           # upgrade: requester already holds a shared copy
    EXCLUSIVE_NO_DATA = 3   # wh64
    WRITEBACK = 4


def request_for(kind: AccessKind, current: MESI) -> RequestType:
    """Map a CPU access that missed (or needs an upgrade) in its L1 to the
    coherence request type it must issue."""
    if kind in (AccessKind.IFETCH, AccessKind.LOAD, AccessKind.LOAD_LOCKED):
        return RequestType.READ
    if kind == AccessKind.WH64:
        return RequestType.EXCLUSIVE_NO_DATA
    if current == MESI.SHARED:
        return RequestType.EXCLUSIVE
    return RequestType.READ_EXCLUSIVE


_txn_ids = itertools.count(1)


@dataclass
class MemRequest:
    """One CPU access travelling through the memory system.

    ``done(latency_ps, source)`` is invoked exactly once when the access
    completes; the issuing CPU uses it to account stall time.
    """

    cpu_id: int
    kind: AccessKind
    addr: int
    is_instr: bool
    done: Callable[[int, ReplySource], None]
    node: int = 0
    txn_id: int = field(default_factory=lambda: next(_txn_ids))
    issue_time: int = 0
    #: filled in when the request completes (for tracing/tests)
    source: Optional[ReplySource] = None
    #: sampled-latency probe riding this transaction; None for the other
    #: N-1 of every N misses (and always when probes are disabled), so
    #: every instrumentation point guards with ``if probe is not None``
    probe: Optional[object] = None

    def complete(self, now_ps: int, source: ReplySource) -> None:
        if self.source is not None:
            raise RuntimeError(f"request {self.txn_id} completed twice")
        self.source = source
        if self.probe is not None:
            self.probe.finish(now_ps, source)
        self.done(now_ps - self.issue_time, source)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemRequest(cpu={self.cpu_id}, {self.kind.name}, "
            f"addr={self.addr:#x}, txn={self.txn_id})"
        )


class CacheId:
    """Identity of one first-level cache: (cpu index, instruction/data).

    Encoded as ``cpu * 2 + (0 if data else 1)`` so dup-tag sharer sets can
    be small integers/bitmasks.
    """

    __slots__ = ()

    @staticmethod
    def encode(cpu: int, is_instr: bool) -> int:
        return cpu * 2 + (1 if is_instr else 0)

    @staticmethod
    def cpu(cache_id: int) -> int:
        return cache_id // 2

    @staticmethod
    def is_instr(cache_id: int) -> bool:
        return bool(cache_id & 1)
