"""The Piranha chip: CPUs, cache hierarchy, protocol engines, system glue."""

from .checker import (
    CoherenceChecker,
    CoherenceViolation,
    audit_directory,
    audit_duplicate_tags,
    audit_non_inclusion,
    audit_system,
    audit_tsrf,
)
from .chip import PiranhaChip
from .probe import PROBE_CLASSES, ProbeCollector, TxnProbe, classify
from .config import (
    INO,
    OOO,
    PIRANHA_P1,
    PIRANHA_P2,
    PIRANHA_P4,
    PIRANHA_P8,
    PIRANHA_P8F,
    PIRANHA_P8_PESSIMISTIC,
    PRESETS,
    ChipConfig,
    CoreParams,
    L1Params,
    L2Params,
    LatencyParams,
    MemoryParams,
    preset,
    table1,
)
from .cpu import CpuCore, InOrderCpu, OooCpu, make_cpu
from .directory import (
    DIRECTORY_BITS,
    MAX_POINTERS,
    DirectoryEntry,
    DirectoryStore,
    DirState,
    ecc_accounting,
)
from .dup_tags import L2_OWNER, DuplicateTags, duplicate_tag_overhead
from .ics import IntraChipSwitch
from .iochip import IoNode, PciInterface, io_node_config
from .l1 import L1Cache
from .l2 import L2Bank
from .messages import (
    AccessKind,
    CacheId,
    MemRequest,
    MESI,
    ReplySource,
    RequestType,
)
from .microcode import Assembler, Instr, Op, Program, Sequencer, disassemble
from .protocol_engine import ProtocolEngine
from .ras import MemoryMirror, PersistentMemory, ProtocolWatchdog
from .rdram import MemoryController, RdramChannel
from .syscontrol import SystemControl
from .tlb import Tlb
from .trace import ProtocolTrace, TraceEvent
from .system import PiranhaSystem, default_topology
from .tsrf import TSRF_ENTRIES, Tsrf, TsrfEntry, TsrfFullError

__all__ = [
    "CoherenceChecker",
    "CoherenceViolation",
    "ProtocolTrace",
    "TraceEvent",
    "audit_directory",
    "audit_duplicate_tags",
    "audit_non_inclusion",
    "audit_system",
    "audit_tsrf",
    "PiranhaChip",
    "PiranhaSystem",
    "default_topology",
    "PROBE_CLASSES",
    "ProbeCollector",
    "TxnProbe",
    "classify",
    "INO",
    "OOO",
    "PIRANHA_P1",
    "PIRANHA_P2",
    "PIRANHA_P4",
    "PIRANHA_P8",
    "PIRANHA_P8F",
    "PIRANHA_P8_PESSIMISTIC",
    "PRESETS",
    "ChipConfig",
    "CoreParams",
    "L1Params",
    "L2Params",
    "LatencyParams",
    "MemoryParams",
    "preset",
    "table1",
    "CpuCore",
    "InOrderCpu",
    "OooCpu",
    "make_cpu",
    "DIRECTORY_BITS",
    "MAX_POINTERS",
    "DirectoryEntry",
    "DirectoryStore",
    "DirState",
    "ecc_accounting",
    "L2_OWNER",
    "DuplicateTags",
    "duplicate_tag_overhead",
    "IntraChipSwitch",
    "IoNode",
    "PciInterface",
    "io_node_config",
    "L1Cache",
    "L2Bank",
    "AccessKind",
    "CacheId",
    "MemRequest",
    "MESI",
    "ReplySource",
    "RequestType",
    "Assembler",
    "Instr",
    "Op",
    "Program",
    "Sequencer",
    "disassemble",
    "ProtocolEngine",
    "MemoryMirror",
    "PersistentMemory",
    "ProtocolWatchdog",
    "Tlb",
    "MemoryController",
    "RdramChannel",
    "SystemControl",
    "TSRF_ENTRIES",
    "Tsrf",
    "TsrfEntry",
    "TsrfFullError",
]
