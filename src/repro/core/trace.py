"""Ring-buffered protocol event trace (the sanitizer's flight recorder).

The paper debugs its microcoded coherence protocols with formal tools;
the runtime stand-in is this bounded trace: every fill, invalidation,
downgrade, protocol-engine thread dispatch and inter-node packet
send/receive is appended to a fixed-capacity ring buffer.  When a
:class:`~repro.core.checker.CoherenceViolation` fires, the last events —
filtered to the violating line — are attached to the exception, so a
protocol bug arrives with its own replayable history instead of a bare
assertion.

The buffer is a ``collections.deque(maxlen=capacity)``: recording is
O(1), memory is bounded regardless of run length, and a full workload
can run traced with negligible overhead.  Events can be filtered by
line address, node, or event kind (``repro trace --line 0x... --node N``
exposes this from the CLI).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

#: Default ring capacity: enough history to span several protocol
#: transactions per line without unbounded growth.
DEFAULT_CAPACITY = 512

#: Event kinds recorded by the instrumented modules.
KINDS = ("fill", "inval", "downgrade", "dispatch", "pkt_send", "pkt_recv")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event."""

    seq: int          # global sequence number (monotonic, never wraps)
    time_ps: int
    kind: str         # one of KINDS
    node: int
    line: int         # line address (or -1 when not line-addressed)
    detail: str       # free-form: state, packet type, engine label, ...

    def format(self) -> str:
        return (f"#{self.seq:<7d} {self.time_ps:>12d} ps  node{self.node}"
                f"  {self.kind:<9s} line={self.line:#x}  {self.detail}")


class ProtocolTrace:
    """Bounded ring buffer of :class:`TraceEvent` records.

    ``clock`` is bound by :class:`~repro.core.system.PiranhaSystem` to the
    simulator's ``now``; a free-standing trace (unit tests) stamps 0.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._buf: deque = deque(maxlen=capacity)
        self._seq = 0
        self.clock: Callable[[], int] = lambda: 0
        self.counts: Dict[str, int] = {k: 0 for k in KINDS}

    # -- recording --------------------------------------------------------

    def record(self, kind: str, node: int, line: int, detail: str = "") -> None:
        """Append one event (O(1); oldest event drops when full)."""
        self._buf.append(TraceEvent(
            seq=self._seq, time_ps=self.clock(), kind=kind, node=node,
            line=line, detail=detail,
        ))
        self._seq += 1
        if kind in self.counts:
            self.counts[kind] += 1
        else:
            self.counts[kind] = 1

    # -- checkpoint/restore ------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Ring contents, sequence counter, per-kind counts and the clock
        binding (the clock closure is serialised by the checkpoint
        pickler; a restored trace keeps stamping simulated time)."""
        return dict(self.__dict__)

    def load_state(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    def __getstate__(self) -> Dict[str, object]:
        return self.state_dict()

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.load_state(state)

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including those that scrolled out)."""
        return self._seq

    def events(self, line: Optional[int] = None, node: Optional[int] = None,
               kind: Optional[str] = None,
               last: Optional[int] = None) -> List[TraceEvent]:
        """Buffered events, optionally filtered, oldest first.

        ``last`` keeps only the most recent N *after* filtering.
        """
        out = [
            ev for ev in self._buf
            if (line is None or ev.line == line)
            and (node is None or ev.node == node)
            and (kind is None or ev.kind == kind)
        ]
        if last is not None and last >= 0:
            out = out[len(out) - last:] if last else []
        return out

    def dump(self, line: Optional[int] = None, node: Optional[int] = None,
             last: int = 32, header: str = "protocol trace") -> str:
        """Human-readable dump of the last *last* (filtered) events."""
        events = self.events(line=line, node=node, last=last)
        scope = []
        if line is not None:
            scope.append(f"line={line:#x}")
        if node is not None:
            scope.append(f"node={node}")
        scope_s = f" [{', '.join(scope)}]" if scope else ""
        lines = [f"--- {header}{scope_s}: last {len(events)} of "
                 f"{self.recorded} recorded (ring capacity {self.capacity}) ---"]
        if not events:
            lines.append("(no matching events in the ring buffer)")
        lines.extend(ev.format() for ev in events)
        return "\n".join(lines)

    def summary(self) -> Dict[str, int]:
        """Per-kind totals plus buffer occupancy (telemetry-friendly)."""
        out = dict(self.counts)
        out["buffered"] = len(self._buf)
        out["recorded"] = self._seq
        return out
