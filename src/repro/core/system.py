"""Glueless multi-node Piranha systems (Figure 3).

A :class:`PiranhaSystem` builds N processing nodes (plus optional I/O
nodes), the point-to-point interconnect between them, the per-node
directory stores, and the shared authoritative memory image.  Single-node
systems skip the network entirely (the protocol engines stay idle); the
design allows glueless scaling to 1024 nodes with an arbitrary ratio of
I/O to processing nodes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..interconnect.packets import Packet
from ..interconnect.router import Router, RouterParams, build_routers
from ..interconnect.topology import Topology, fully_connected, line, ring
from ..mem.addr import AddressMap
from ..sim.engine import Simulator
from .checker import CoherenceChecker, audit_system
from .chip import PiranhaChip
from .config import ChipConfig
from .directory import DirectoryStore


def default_topology(num_nodes: int) -> Topology:
    """Pick a sensible default: all-to-all up to 5 nodes (one hop
    everywhere, matching Table 1's flat remote latencies), a ring beyond."""
    if num_nodes <= 1:
        return line(1)
    if num_nodes <= 5:
        return fully_connected(num_nodes)
    return ring(num_nodes)


class PiranhaSystem:
    """One or more Piranha nodes plus interconnect and memory state."""

    def __init__(
        self,
        config: ChipConfig,
        num_nodes: int = 1,
        sim: Optional[Simulator] = None,
        topology: Optional[Topology] = None,
        checker: Optional[CoherenceChecker] = None,
        router_params: Optional[RouterParams] = None,
        home_granularity: int = 8192,
        io_nodes: int = 0,
    ) -> None:
        from .iochip import IoNode
        from ..interconnect.topology import attach_io_nodes

        self.sim = sim or Simulator()
        self.config = config
        total_nodes = num_nodes + io_nodes
        #: processing-node count; I/O nodes are numbered after these
        self.num_proc_nodes = num_nodes
        self.num_nodes = total_nodes
        self.address_map = AddressMap(total_nodes, home_granularity)
        if topology is None:
            topology = default_topology(num_nodes)
            if io_nodes:
                attach_io_nodes(topology, io_nodes)
        self.topology = topology
        self.checker = checker
        if checker is not None and checker.trace is not None:
            # stamp trace events with simulated time
            checker.trace.clock = lambda: self.sim.now
        #: continuous-audit state (see :meth:`enable_continuous_audit`)
        self._audit_interval_ps: Optional[int] = None
        self._audit_tsrf_timeout_ps: Optional[int] = None
        self.continuous_audits = 0
        #: transaction-probe collector (see :mod:`repro.core.probe`); must
        #: exist before chips are built — each chip caches a reference
        self.probes = None
        #: interval time-series sampler (see :mod:`repro.sim.sampler`)
        self.sampler = None
        #: causal span tracer (see :mod:`repro.observe.spans`); hangs off
        #: the probe collector's ``on_finish`` hook
        self.spans = None
        #: authoritative memory image: line -> committed version
        self.mem_versions: Dict[int, int] = {}
        self.dirstores: List[DirectoryStore] = [
            DirectoryStore(n, total_nodes) for n in range(total_nodes)
        ]
        self.nodes: List[PiranhaChip] = [
            PiranhaChip(self.sim, config, self, node_id=n)
            for n in range(num_nodes)
        ]
        self.io: List["IoNode"] = []
        for i in range(io_nodes):
            io_node = IoNode(self, config, node_id=num_nodes + i)
            self.io.append(io_node)
            self.nodes.append(io_node.chip)
        self.routers: Dict[int, Router] = {}
        if total_nodes > 1:
            self.routers = build_routers(self.sim, self.topology, router_params)
            for node in self.nodes:
                router = self.routers[node.node_id]
                router.iq.set_default_disposition(_Disposition(node))
                node.attach_network(router.oq.offer)
        self._running_cpus = 0
        self._warmed_cpus = 0
        self._on_all_done: Optional[Callable[[], None]] = None
        self._started = False
        #: workload attached via :meth:`attach_workload` (checkpoint
        #: payloads carry it alongside the system)
        self.workload = None
        #: one-shot callback fired as a 0-delay event once every CPU has
        #: crossed its warm-up boundary.  Scheduling (rather than calling
        #: inline) lets checkpoint capture run *between* events, when the
        #: event queue is in a consistent snapshot-safe state.
        self.on_warm_boundary: Optional[Callable[[], None]] = None

    # -- workload control -----------------------------------------------------

    def attach_workload(self, workload) -> None:
        """Attach a workload object (see :mod:`repro.workloads.base`): it
        supplies one thread iterator per (node, cpu).  Each thread is told
        its (workload, node, cpu) origin so it can rebuild its generator
        after a checkpoint restore."""
        self.workload = workload
        for node in self.nodes:
            for cpu in node.cpus:
                thread = workload.thread_for(node.node_id, cpu.cpu_id)
                if thread is not None:
                    bind = getattr(thread, "bind_source", None)
                    if bind is not None:
                        bind(workload, node.node_id, cpu.cpu_id)
                    cpu.attach(thread)

    def start(self) -> None:
        """Start every CPU and the periodic observers.  Idempotent: a
        system restored from a checkpoint is already started — its CPU
        continuations and observer ticks live in the restored event queue
        — so a second start must not re-arm anything (duplicate tickers
        would double-count sampler intervals and audits)."""
        if self._started:
            return
        self._started = True
        for node in self.nodes:
            node.start_cpus()
            self._running_cpus += node.cpus_running
        if self._audit_interval_ps and self._running_cpus:
            self.sim.schedule_every(self._audit_interval_ps,
                                    self._continuous_audit)
        if self.sampler is not None and self._running_cpus:
            self.sampler.start()

    def cpu_warmed_up(self, node_id: int, cpu_id: int) -> None:
        """A CPU crossed its warm-up boundary; once all have, shared-module
        statistics (banks, memory channels, engines, switches) are zeroed
        so measurements cover only the steady-state phase."""
        self._warmed_cpus += 1
        if self._warmed_cpus >= self._running_cpus:
            self.reset_module_stats()
            if self.on_warm_boundary is not None:
                callback, self.on_warm_boundary = self.on_warm_boundary, None
                self.sim.schedule(0, callback)

    def reset_module_stats(self) -> None:
        # Time-weighted trackers are anchored at *now* so warm-up
        # occupancy area cannot pollute the steady-state means.
        now = self.sim.now
        if self.sampler is not None:
            # close the in-flight interval while the counters still hold
            # their pre-reset values (true deltas for the partial record)
            self.sampler.flush()
        for node in self.nodes:
            for bank in node.banks:
                bank.stats.reset_all(now)
            for mc in node.mcs:
                mc.stats.reset_all(now)
                mc.channel.stats.reset_all(now)
            node.ics.stats.reset_all(now)
            node.home_engine.stats.reset_all(now)
            node.remote_engine.stats.reset_all(now)
        for router in self.routers.values():
            router.stats.reset_all(now)
        if self.probes is not None:
            # probe classes/histograms should cover steady state only,
            # matching the counter-derived means they cross-check against
            self.probes.reset()
        if self.spans is not None:
            # the trace likewise covers steady state only, so span
            # durations reconcile with the post-reset probe histograms
            self.spans.reset()
        if self.sampler is not None:
            # the time series deliberately keeps its pre-reset history
            # (warm-up detection needs the ramp); it just re-baselines
            # and flags the interval containing the reset
            self.sampler.note_reset()

    def cpu_finished(self, node_id: int, cpu_id: int) -> None:
        self._running_cpus -= 1
        if self._running_cpus == 0 and self._on_all_done is not None:
            self._on_all_done()

    def run_to_completion(self, max_events: Optional[int] = None) -> int:
        """Start every CPU and run until all workload threads finish and
        the event queue drains.  Returns the finish time (ps).

        On a system restored from a checkpoint :meth:`start` is a no-op,
        so this is equivalent to :meth:`resume`."""
        self.start()
        return self.resume(max_events=max_events)

    def resume(self, max_events: Optional[int] = None) -> int:
        """Run an already-started (e.g. checkpoint-restored) system until
        the event queue drains; returns the finish time (ps).  Restored
        systems must not be re-started — their CPU continuations, sampler
        ticks and audit ticks are already in the event queue."""
        try:
            self.sim.run(max_events=max_events)
            if self._running_cpus != 0:
                raise RuntimeError(
                    f"simulation stalled with {self._running_cpus} CPUs "
                    f"running"
                )
        finally:
            # Flush the in-flight partial interval even when the run
            # terminates early (max-events bound, stall): the exported
            # series must never silently drop its tail.  The record
            # carries the ``partial`` flag; finalize() is idempotent at
            # a fixed simulated time, so a later resume still flushes
            # whatever accumulates afterwards.
            if self.sampler is not None:
                self.sampler.finalize()
        return max(
            (cpu.finish_time or 0)
            for node in self.nodes for cpu in node.cpus
            if cpu.thread is not None
        )

    # -- protocol sanitizer -----------------------------------------------------

    def enable_continuous_audit(self, interval_ps: int = 5_000_000,
                                tsrf_timeout_ps: Optional[int] = None) -> None:
        """Run the continuous-safe sanitizer audit set every *interval_ps*
        of simulated time while CPUs are running (MGSim-style always-on
        runtime invariant checks).  ``tsrf_timeout_ps`` additionally flags
        protocol threads that have been live longer than the timeout.

        The mid-run set skips the quiesce-only invariants (eager-reply
        staleness, directory cross-consistency) that in-flight
        transactions legitimately violate; :meth:`verify` runs everything
        once the system has drained.
        """
        if interval_ps <= 0:
            raise ValueError("audit interval must be positive")
        self._audit_interval_ps = interval_ps
        self._audit_tsrf_timeout_ps = tsrf_timeout_ps

    def _continuous_audit(self) -> bool:
        audit_system(self, quiesced=False,
                     tsrf_timeout_ps=self._audit_tsrf_timeout_ps)
        self.continuous_audits += 1
        # stop rescheduling once the workload finishes, so the event
        # queue can drain (verify() covers the end state)
        return self._running_cpus > 0

    def verify(self, quiesced: bool = True) -> Dict[str, float]:
        """Run the full sanitizer audit set (checker quiesce invariants +
        structural audits); returns the audit telemetry.  The CLI
        ``--check`` path and the harness ``check_coherence=True`` path
        both call exactly this."""
        telemetry = audit_system(self, quiesced=quiesced)
        telemetry["audit_continuous_runs"] = float(self.continuous_audits)
        return telemetry

    def arm_trace(self, capacity: int) -> None:
        """(Re)attach a protocol trace ring of *capacity* events to the
        checker, refreshing every chip's cached reference (the same
        refresh pattern as :meth:`enable_probes`).  Used by the violation
        bisection flow: restore the last pre-violation checkpoint, arm
        the trace, and replay only the final window at full fidelity."""
        from .trace import ProtocolTrace

        if self.checker is None:
            raise RuntimeError(
                "arm_trace needs a coherence checker (run with check on)")
        trace = ProtocolTrace(capacity)
        trace.clock = lambda: self.sim.now
        self.checker.trace = trace
        for node in self.nodes:
            node.trace = trace

    # -- checkpoint/restore ------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Whole-system state (the checkpoint layer serialises this via
        :mod:`repro.checkpoint.pickling`, which preserves shared-object
        identity across the graph)."""
        return dict(self.__dict__)

    def load_state(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    def __getstate__(self) -> Dict[str, object]:
        return self.state_dict()

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.load_state(state)

    # -- observability -----------------------------------------------------------

    def enable_probes(self, rate: int, max_samples: int = 64) -> None:
        """Attach a :class:`~repro.core.probe.ProbeCollector` sampling one
        of every *rate* L1 misses.  Chips cache the collector reference at
        construction, so enabling after the system is built refreshes each
        chip's cache; the untagged hot path stays a single ``is None``
        test either way."""
        from .probe import ProbeCollector

        self.probes = ProbeCollector(rate, max_samples=max_samples)
        for node in self.nodes:
            node.probes = self.probes

    def enable_span_trace(self, max_txns: int = 256) -> None:
        """Attach a :class:`~repro.observe.spans.SpanCollector` that
        promotes every completed probe into a causal span tree (up to
        *max_txns* transactions kept).  Requires probes: the tracer is a
        pure consumer of the probe collector's ``on_finish`` hook and
        adds no stamp points of its own."""
        from ..observe.spans import SpanCollector

        if self.probes is None:
            raise RuntimeError(
                "span tracing needs probes; call enable_probes() first")
        self.spans = SpanCollector(max_txns)
        self.probes.on_finish = self.spans.on_probe_finish

    def enable_sampler(self, interval_ps: int) -> None:
        """Attach an :class:`~repro.sim.sampler.IntervalSampler` that
        snapshots :meth:`sample_counters` every *interval_ps* of simulated
        time while the workload runs (started by :meth:`start`)."""
        from ..sim.sampler import IntervalSampler

        self.sampler = IntervalSampler(
            self.sim,
            interval_ps,
            collect_counters=self.sample_counters,
            collect_gauges=self.sample_gauges,
            derive=self._sample_derive,
            running=lambda: self._running_cpus > 0,
        )

    def sample_counters(self) -> Dict[str, float]:
        """Flat monotonic-counter snapshot across the whole system — the
        interval sampler diffs consecutive snapshots into per-interval
        activity (instructions, misses, bytes moved, DRAM traffic...)."""
        c: Dict[str, float] = {
            "instructions": 0, "busy_ps": 0, "stall_ps": 0,
            "l1_lookups": 0, "l1_hits": 0, "l1_upgrades": 0,
            "l2_requests": 0, "l2_hits": 0, "l2_fwds": 0,
            "l2_local_mem": 0, "l2_remote_mem": 0, "l2_remote_dirty": 0,
            "l2_upgrades": 0, "l2_conflicts": 0,
            "ics_transfers": 0, "ics_bytes": 0, "ics_conflicts": 0,
            "mem_accesses": 0, "mem_reads": 0, "mem_writes": 0,
            "mem_page_hits": 0,
            "engine_instructions": 0, "engine_threads": 0,
            "engine_tsrf_stalls": 0,
            "packets_sent": 0,
            "router_transit": 0, "router_delivered": 0,
            "router_misroutes": 0, "router_bytes": 0,
        }
        for node in self.nodes:
            for cpu in node.cpus:
                c["instructions"] += cpu.instructions
                c["busy_ps"] += cpu.busy_ps
                c["stall_ps"] += sum(cpu.stall_ps.values())
            for l1 in list(node.l1i) + list(node.l1d):
                snap = l1.counters()
                c["l1_lookups"] += snap["lookups"]
                c["l1_hits"] += snap["hits"]
                c["l1_upgrades"] += snap["upgrades"]
            for bank in node.banks:
                c["l2_requests"] += bank.c_requests.value
                c["l2_hits"] += bank.c_hits.value
                c["l2_fwds"] += bank.c_fwds.value
                c["l2_local_mem"] += bank.c_local_mem.value
                c["l2_remote_mem"] += bank.c_remote_mem.value
                c["l2_remote_dirty"] += bank.c_remote_dirty.value
                c["l2_upgrades"] += bank.c_upgrades.value
                c["l2_conflicts"] += bank.c_conflicts.value
            ics = node.ics
            c["ics_transfers"] += ics.c_transfers.value
            c["ics_bytes"] += ics.c_bytes.value
            c["ics_conflicts"] += ics.c_conflicts.value
            for mc in node.mcs:
                ch = mc.channel
                c["mem_accesses"] += ch.c_accesses.value
                c["mem_reads"] += ch.c_reads.value
                c["mem_writes"] += ch.c_writes.value
                c["mem_page_hits"] += ch.c_page_hits.value
            for engine in (node.home_engine, node.remote_engine):
                c["engine_instructions"] += engine.c_instructions.value
                c["engine_threads"] += engine.c_threads.value
                c["engine_tsrf_stalls"] += engine.c_tsrf_stalls.value
            c["packets_sent"] += node.c_packets_sent.value
        for router in self.routers.values():
            c["router_transit"] += router.c_transit.value
            c["router_delivered"] += router.c_delivered.value
            c["router_misroutes"] += router.c_misroutes.value
            c["router_bytes"] += router.c_bytes.value
        return c

    def sample_gauges(self) -> Dict[str, float]:
        """Instantaneous levels (not diffed): TSRF occupancy and DRAM
        open-page population at the sample instant."""
        tsrf = 0.0
        pages = 0
        for node in self.nodes:
            tsrf += node.home_engine.tw_tsrf.level
            tsrf += node.remote_engine.tw_tsrf.level
            for mc in node.mcs:
                pages += mc.channel.open_page_count()
        return {"tsrf_occupancy": tsrf, "dram_open_pages": float(pages)}

    def _sample_derive(self, d: Dict[str, float], dt_ps: int) -> Dict[str, float]:
        """Per-interval rates derived from one delta record."""
        def ratio(num: float, den: float) -> float:
            return num / den if den else 0.0

        ncpus = sum(1 for _ in self.all_cpus()) or 1
        period_ps = int(round(1e6 / self.config.core.clock_mhz))
        cycles = dt_ps / period_ps * ncpus
        us = dt_ps / 1e6
        return {
            "ipc": ratio(d["instructions"], cycles),
            "l1_miss_rate": 1.0 - ratio(d["l1_hits"], d["l1_lookups"])
            if d["l1_lookups"] else 0.0,
            "l2_hit_rate": ratio(d["l2_hits"], d["l2_requests"]),
            "dram_page_hit_rate": ratio(d["mem_page_hits"], d["mem_accesses"]),
            "ics_bytes_per_us": ratio(d["ics_bytes"], us),
            "router_bytes_per_us": ratio(d["router_bytes"], us),
        }

    # -- aggregate statistics ---------------------------------------------------

    def all_cpus(self):
        for node in self.nodes:
            for cpu in node.cpus:
                if cpu.thread is not None:
                    yield cpu

    def execution_summary(self) -> Dict[str, float]:
        """Aggregate Figure 5-style breakdown over all CPUs (picoseconds)."""
        busy = on_chip = memory = 0
        instructions = 0
        for cpu in self.all_cpus():
            busy += cpu.busy_ps
            on_chip += cpu.stall_on_chip_ps
            memory += cpu.stall_memory_ps
            instructions += cpu.instructions
        total = busy + on_chip + memory
        return {
            "busy_ps": busy,
            "l2_stall_ps": on_chip,
            "mem_stall_ps": memory,
            "total_ps": total,
            "instructions": instructions,
        }

    def miss_breakdown(self) -> Dict[str, int]:
        total = {"l2_hit": 0, "l2_fwd": 0, "l2_miss": 0}
        for node in self.nodes:
            for key, value in node.miss_breakdown().items():
                total[key] += value
        return total


class _Disposition:
    """Callable IQ handler with a can_accept probe (see queues.InputQueue)."""

    def __init__(self, node: PiranhaChip) -> None:
        self.node = node

    def __call__(self, pkt: Packet) -> bool:
        return self.node.deliver_packet(pkt)

    def can_accept(self, pkt: Packet) -> bool:
        return True
