"""Glueless multi-node Piranha systems (Figure 3).

A :class:`PiranhaSystem` builds N processing nodes (plus optional I/O
nodes), the point-to-point interconnect between them, the per-node
directory stores, and the shared authoritative memory image.  Single-node
systems skip the network entirely (the protocol engines stay idle); the
design allows glueless scaling to 1024 nodes with an arbitrary ratio of
I/O to processing nodes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..interconnect.packets import Packet
from ..interconnect.router import Router, RouterParams, build_routers
from ..interconnect.topology import Topology, fully_connected, line, ring
from ..mem.addr import AddressMap
from ..sim.engine import Simulator
from .checker import CoherenceChecker, audit_system
from .chip import PiranhaChip
from .config import ChipConfig
from .directory import DirectoryStore


def default_topology(num_nodes: int) -> Topology:
    """Pick a sensible default: all-to-all up to 5 nodes (one hop
    everywhere, matching Table 1's flat remote latencies), a ring beyond."""
    if num_nodes <= 1:
        return line(1)
    if num_nodes <= 5:
        return fully_connected(num_nodes)
    return ring(num_nodes)


class PiranhaSystem:
    """One or more Piranha nodes plus interconnect and memory state."""

    def __init__(
        self,
        config: ChipConfig,
        num_nodes: int = 1,
        sim: Optional[Simulator] = None,
        topology: Optional[Topology] = None,
        checker: Optional[CoherenceChecker] = None,
        router_params: Optional[RouterParams] = None,
        home_granularity: int = 8192,
        io_nodes: int = 0,
    ) -> None:
        from .iochip import IoNode
        from ..interconnect.topology import attach_io_nodes

        self.sim = sim or Simulator()
        self.config = config
        total_nodes = num_nodes + io_nodes
        #: processing-node count; I/O nodes are numbered after these
        self.num_proc_nodes = num_nodes
        self.num_nodes = total_nodes
        self.address_map = AddressMap(total_nodes, home_granularity)
        if topology is None:
            topology = default_topology(num_nodes)
            if io_nodes:
                attach_io_nodes(topology, io_nodes)
        self.topology = topology
        self.checker = checker
        if checker is not None and checker.trace is not None:
            # stamp trace events with simulated time
            checker.trace.clock = lambda: self.sim.now
        #: continuous-audit state (see :meth:`enable_continuous_audit`)
        self._audit_interval_ps: Optional[int] = None
        self._audit_tsrf_timeout_ps: Optional[int] = None
        self.continuous_audits = 0
        #: authoritative memory image: line -> committed version
        self.mem_versions: Dict[int, int] = {}
        self.dirstores: List[DirectoryStore] = [
            DirectoryStore(n, total_nodes) for n in range(total_nodes)
        ]
        self.nodes: List[PiranhaChip] = [
            PiranhaChip(self.sim, config, self, node_id=n)
            for n in range(num_nodes)
        ]
        self.io: List["IoNode"] = []
        for i in range(io_nodes):
            io_node = IoNode(self, config, node_id=num_nodes + i)
            self.io.append(io_node)
            self.nodes.append(io_node.chip)
        self.routers: Dict[int, Router] = {}
        if total_nodes > 1:
            self.routers = build_routers(self.sim, self.topology, router_params)
            for node in self.nodes:
                router = self.routers[node.node_id]
                router.iq.set_default_disposition(_Disposition(node))
                node.attach_network(router.oq.offer)
        self._running_cpus = 0
        self._warmed_cpus = 0
        self._on_all_done: Optional[Callable[[], None]] = None

    # -- workload control -----------------------------------------------------

    def attach_workload(self, workload) -> None:
        """Attach a workload object (see :mod:`repro.workloads.base`): it
        supplies one thread iterator per (node, cpu)."""
        for node in self.nodes:
            for cpu in node.cpus:
                thread = workload.thread_for(node.node_id, cpu.cpu_id)
                if thread is not None:
                    cpu.attach(thread)

    def start(self) -> None:
        for node in self.nodes:
            node.start_cpus()
            self._running_cpus += node.cpus_running
        if self._audit_interval_ps and self._running_cpus:
            self.sim.schedule(self._audit_interval_ps, self._continuous_audit)

    def cpu_warmed_up(self, node_id: int, cpu_id: int) -> None:
        """A CPU crossed its warm-up boundary; once all have, shared-module
        statistics (banks, memory channels, engines, switches) are zeroed
        so measurements cover only the steady-state phase."""
        self._warmed_cpus += 1
        if self._warmed_cpus >= self._running_cpus:
            self.reset_module_stats()

    def reset_module_stats(self) -> None:
        # Time-weighted trackers are anchored at *now* so warm-up
        # occupancy area cannot pollute the steady-state means.
        now = self.sim.now
        for node in self.nodes:
            for bank in node.banks:
                bank.stats.reset_all(now)
            for mc in node.mcs:
                mc.stats.reset_all(now)
                mc.channel.stats.reset_all(now)
            node.ics.stats.reset_all(now)
            node.home_engine.stats.reset_all(now)
            node.remote_engine.stats.reset_all(now)
        for router in self.routers.values():
            router.stats.reset_all(now)

    def cpu_finished(self, node_id: int, cpu_id: int) -> None:
        self._running_cpus -= 1
        if self._running_cpus == 0 and self._on_all_done is not None:
            self._on_all_done()

    def run_to_completion(self, max_events: Optional[int] = None) -> int:
        """Start every CPU and run until all workload threads finish and
        the event queue drains.  Returns the finish time (ps)."""
        self.start()
        self.sim.run(max_events=max_events)
        if self._running_cpus != 0:
            raise RuntimeError(
                f"simulation stalled with {self._running_cpus} CPUs running"
            )
        return max(
            (cpu.finish_time or 0)
            for node in self.nodes for cpu in node.cpus
            if cpu.thread is not None
        )

    # -- protocol sanitizer -----------------------------------------------------

    def enable_continuous_audit(self, interval_ps: int = 5_000_000,
                                tsrf_timeout_ps: Optional[int] = None) -> None:
        """Run the continuous-safe sanitizer audit set every *interval_ps*
        of simulated time while CPUs are running (MGSim-style always-on
        runtime invariant checks).  ``tsrf_timeout_ps`` additionally flags
        protocol threads that have been live longer than the timeout.

        The mid-run set skips the quiesce-only invariants (eager-reply
        staleness, directory cross-consistency) that in-flight
        transactions legitimately violate; :meth:`verify` runs everything
        once the system has drained.
        """
        if interval_ps <= 0:
            raise ValueError("audit interval must be positive")
        self._audit_interval_ps = interval_ps
        self._audit_tsrf_timeout_ps = tsrf_timeout_ps

    def _continuous_audit(self) -> None:
        audit_system(self, quiesced=False,
                     tsrf_timeout_ps=self._audit_tsrf_timeout_ps)
        self.continuous_audits += 1
        if self._running_cpus > 0:
            # stop rescheduling once the workload finishes, so the event
            # queue can drain (verify() covers the end state)
            self.sim.schedule(self._audit_interval_ps, self._continuous_audit)

    def verify(self, quiesced: bool = True) -> Dict[str, float]:
        """Run the full sanitizer audit set (checker quiesce invariants +
        structural audits); returns the audit telemetry.  The CLI
        ``--check`` path and the harness ``check_coherence=True`` path
        both call exactly this."""
        telemetry = audit_system(self, quiesced=quiesced)
        telemetry["audit_continuous_runs"] = float(self.continuous_audits)
        return telemetry

    # -- aggregate statistics ---------------------------------------------------

    def all_cpus(self):
        for node in self.nodes:
            for cpu in node.cpus:
                if cpu.thread is not None:
                    yield cpu

    def execution_summary(self) -> Dict[str, float]:
        """Aggregate Figure 5-style breakdown over all CPUs (picoseconds)."""
        busy = on_chip = memory = 0
        instructions = 0
        for cpu in self.all_cpus():
            busy += cpu.busy_ps
            on_chip += cpu.stall_on_chip_ps
            memory += cpu.stall_memory_ps
            instructions += cpu.instructions
        total = busy + on_chip + memory
        return {
            "busy_ps": busy,
            "l2_stall_ps": on_chip,
            "mem_stall_ps": memory,
            "total_ps": total,
            "instructions": instructions,
        }

    def miss_breakdown(self) -> Dict[str, int]:
        total = {"l2_hit": 0, "l2_fwd": 0, "l2_miss": 0}
        for node in self.nodes:
            for key, value in node.miss_breakdown().items():
                total[key] += value
        return total


class _Disposition:
    """Callable IQ handler with a can_accept probe (see queues.InputQueue)."""

    def __init__(self, node: PiranhaChip) -> None:
        self.node = node

    def __call__(self, pkt: Packet) -> bool:
        return self.node.deliver_packet(pkt)

    def can_accept(self, pkt: Packet) -> bool:
        return True
