"""The Piranha processing node: full chip assembly (Figure 1).

One chip integrates eight Alpha CPU cores with per-core iL1/dL1 caches, the
intra-chip switch, eight L2 banks each with a private memory controller and
RDRAM channel, the home and remote protocol engines, the packet-switch /
output-queue / router / input-queue interconnect stack, and the system
controller.  Modules communicate exclusively through the connections of
Figure 1; this class is the wiring harness plus the small amount of glue
(address steering, reply routing) the packet switch provides.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..interconnect.packets import Packet, PacketType
from ..mem.addr import l2_bank, line_addr
from ..sim.engine import Component, Simulator, ns
from .config import ChipConfig
from .cpu import CpuCore, make_cpu
from .ics import LANE_LOW, IntraChipSwitch
from .l1 import L1Cache
from .l2 import L2Bank
from .messages import CacheId, MemRequest, RequestType
from .protocol_engine import REPLY_TYPES, ProtocolEngine
from .rdram import MemoryController
from .syscontrol import SystemControl


class PiranhaChip(Component):
    """A single Piranha processing (or I/O) node."""

    def __init__(self, sim: Simulator, config: ChipConfig, system,
                 node_id: int = 0) -> None:
        super().__init__(sim, f"node{node_id}")
        self.config = config
        self.system = system
        self.node_id = node_id

        # -- first-level caches + CPUs ------------------------------------
        self.l1i: List[L1Cache] = []
        self.l1d: List[L1Cache] = []
        self.cpus: List[CpuCore] = []
        for cpu in range(config.cpus):
            self.l1i.append(L1Cache(config.l1, cpu, is_instr=True))
            self.l1d.append(L1Cache(config.l1, cpu, is_instr=False))
            self.cpus.append(
                make_cpu(sim, f"{self.name}.cpu{cpu}", self, cpu, config)
            )
        #: additional dL1-fronted clients (the I/O chip's PCI/X interface
        #: reuses the dL1 module — Section 2's I/O node description)
        self.extra_caches: Dict[int, L1Cache] = {}

        # -- intra-chip switch + L2 + memory -------------------------------
        self.ics = IntraChipSwitch(sim, f"{self.name}.ics", config)
        self.banks: List[L2Bank] = []
        self.mcs: List[MemoryController] = []
        for b in range(config.l2.banks):
            self.banks.append(
                L2Bank(sim, f"{self.name}.l2b{b}", self, b, config)
            )
            self.mcs.append(
                MemoryController(sim, f"{self.name}.mc{b}", config)
            )

        # -- protocol engines (idle in single-node systems) -----------------
        self.home_engine = ProtocolEngine(
            sim, f"{self.name}.he", self, is_home=True
        )
        self.remote_engine = ProtocolEngine(
            sim, f"{self.name}.re", self, is_home=False
        )

        # -- system control -------------------------------------------------
        self.syscontrol = SystemControl(sim, f"{self.name}.sc", self)

        self.t_l1_detect = ns(config.lat.l1_miss_detect)
        #: sanitizer trace (shared with the system's checker, if any):
        #: cached here so the packet / engine hot paths pay one attribute
        #: test instead of two when tracing is off
        checker = system.checker
        self.trace = checker.trace if checker is not None else None
        #: transaction-probe collector (shared, system-wide); cached for
        #: the same one-attribute-test reason as the trace.  None unless
        #: PiranhaSystem.enable_probes() ran before the chip was built
        #: (enable_probes() refreshes this cache when called later).
        self.probes = system.probes
        self._send_packet_fn: Optional[Callable[[Packet], bool]] = None
        self._cpus_running = 0
        self.c_packets_sent = self.stats.counter("packets_sent")
        self.c_acks_completed = self.stats.counter("ack_sets_completed")
        #: eager exclusive grants whose invalidation acks are still in
        #: flight: cpu -> set of line addresses; memory barriers wait here
        self._pending_acks: Dict[int, set] = {}
        self._fence_waiters: Dict[int, List[Callable[[], None]]] = {}

    # -----------------------------------------------------------------------
    # System-facing properties (delegated to the owning PiranhaSystem)
    # -----------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.system.num_nodes

    @property
    def topology(self):
        return self.system.topology

    @property
    def dirstore(self):
        return self.system.dirstores[self.node_id]

    @property
    def checker(self):
        return self.system.checker

    def is_home(self, addr: int) -> bool:
        """True when this node is the home of *addr*."""
        return self.system.address_map.home_of(addr) == self.node_id

    def home_of(self, addr: int) -> int:
        """Home node id for *addr* (8 KB-interleaved)."""
        return self.system.address_map.home_of(addr)

    def mem_version(self, line: int) -> int:
        """Committed memory version of *line* (authoritative image)."""
        return self.system.mem_versions.get(line, 0)

    def set_mem_version(self, line: int, version: int) -> None:
        """Commit *version* to memory (monotonic)."""
        versions = self.system.mem_versions
        if version > versions.get(line, 0):
            versions[line] = version

    # -----------------------------------------------------------------------
    # Address steering / module lookup
    # -----------------------------------------------------------------------

    def bank_for(self, addr: int) -> L2Bank:
        """The L2 bank *addr* interleaves to (low line-address bits)."""
        return self.banks[l2_bank(addr, self.config.l2.banks)]

    def mc_for_bank(self, bank_idx: int) -> MemoryController:
        """The memory controller paired with one L2 bank."""
        return self.mcs[bank_idx]

    def l1_of(self, cpu_id: int, is_instr: bool) -> L1Cache:
        """A CPU's iL1 or dL1 (extra dL1 clients use pseudo-CPU slots)."""
        if cpu_id >= self.config.cpus:
            # pseudo-CPU slot of an extra dL1 client (the PCI/X bridge)
            return self.extra_caches[CacheId.encode(cpu_id, is_instr)]
        return self.l1i[cpu_id] if is_instr else self.l1d[cpu_id]

    def l1_by_id(self, cache_id: int) -> L1Cache:
        """Resolve a duplicate-tag cache id to its L1 module."""
        extra = self.extra_caches.get(cache_id)
        if extra is not None:
            return extra
        cpu = CacheId.cpu(cache_id)
        return self.l1i[cpu] if CacheId.is_instr(cache_id) else self.l1d[cpu]

    def register_extra_cache(self, cache: L1Cache) -> int:
        """Attach an additional dL1-style client (PCI/X interface); returns
        its cache id."""
        cache_id = self.config.cpus * 2 + len(self.extra_caches)
        self.extra_caches[cache_id] = cache
        return cache_id

    # -----------------------------------------------------------------------
    # Memory-system entry points
    # -----------------------------------------------------------------------

    def issue_miss(self, req: MemRequest, reqtype: RequestType) -> None:
        """An L1 miss leaves the CPU: charge miss detection plus the ICS
        crossing, then hand to the owning L2 bank."""
        bank = self.bank_for(req.addr)
        if self.probes is not None and req.probe is None:
            req.probe = self.probes.maybe_attach(
                req.txn_id, req.cpu_id, self.node_id, reqtype, self.sim.now)
        delay = self.t_l1_detect + self.ics.transfer_delay(16, LANE_LOW)
        self.schedule(delay, bank.request, req, reqtype)

    def issue_miss_from_cache(self, req: MemRequest, reqtype: RequestType,
                              cache_id: int) -> None:
        """Entry point for extra dL1 clients (the I/O chip's PCI bridge);
        identical path to a CPU miss."""
        self.issue_miss(req, reqtype)

    def route_l1_eviction(self, cache_id: int, eviction) -> None:
        """Replacement notifications travel to the *victim's* bank (which
        may differ from the bank that triggered the fill)."""
        self.bank_for(eviction.addr).l1_eviction(cache_id, eviction)

    def mem_write_back(self, line: int, version: int, bank_idx: int) -> None:
        """Dirty L2 victim with a local home: write straight to memory."""
        self.mcs[bank_idx].write_line(line)
        self.set_mem_version(line, version)

    def register_pending_acks(self, cpu_id: int, addr: int) -> None:
        """An eager exclusive grant to *cpu_id* has invalidation acks
        outstanding; fences by that CPU must wait for them."""
        self._pending_acks.setdefault(cpu_id, set()).add(addr)

    def note_acks_complete(self, addr: int) -> None:
        """All invalidation acks for one eager grant have arrived."""
        self.c_acks_completed.inc()
        for cpu_id, lines in list(self._pending_acks.items()):
            lines.discard(addr)
            if not lines:
                del self._pending_acks[cpu_id]
                for resume in self._fence_waiters.pop(cpu_id, []):
                    self.schedule(0, resume)

    def fence(self, cpu_id: int, resume: Callable[[], None]) -> bool:
        """Memory barrier: returns True when no acks are outstanding for
        *cpu_id*; otherwise registers *resume* and returns False."""
        if not self._pending_acks.get(cpu_id):
            return True
        self._fence_waiters.setdefault(cpu_id, []).append(resume)
        return False

    # -----------------------------------------------------------------------
    # Network plumbing
    # -----------------------------------------------------------------------

    def attach_network(self, send_packet: Callable[[Packet], bool]) -> None:
        """Wire this node's packet switch to its router's output queue."""
        self._send_packet_fn = send_packet

    def send_packet(self, pkt: Packet) -> None:
        """Inject an inter-node packet via the OQ (retrying on backpressure)."""
        if self._send_packet_fn is None:
            raise RuntimeError(
                f"{self.name}: inter-node packet {pkt} in a single-node "
                f"system (no network attached)"
            )
        self.c_packets_sent.inc()
        if self.trace is not None:
            self.trace.record("pkt_send", self.node_id, line_addr(pkt.addr),
                              f"{pkt.ptype.name} -> node{pkt.dst}")
        if not self._send_packet_fn(pkt):
            # OQ full: retry after a cycle (the paper's flow control).
            self.schedule(2000, self.send_packet, pkt)
            self.c_packets_sent.inc(-1)
        elif pkt.probe is not None:
            # stamp only on the accepted offer so backpressure retries
            # don't inflate the hop count
            pkt.probe.stamp("pkt_send", self.sim.now)

    def deliver_packet(self, pkt: Packet) -> bool:
        """IQ disposition target: steer by packet type (Section 2.6.2)."""
        if self.trace is not None:
            self.trace.record("pkt_recv", self.node_id, line_addr(pkt.addr),
                              f"{pkt.ptype.name} <- node{pkt.src}")
        if pkt.probe is not None:
            pkt.probe.stamp("pkt_recv", self.sim.now)
        if pkt.ptype in REPLY_TYPES:
            return self._route_reply(pkt)
        if pkt.ptype in (
            PacketType.READ,
            PacketType.READ_EXCLUSIVE,
            PacketType.EXCLUSIVE,
            PacketType.EXCLUSIVE_NO_DATA,
            PacketType.WRITEBACK,
        ):
            return self.home_engine.deliver_external(pkt)
        if pkt.ptype in (
            PacketType.FWD_READ,
            PacketType.FWD_READ_EXCLUSIVE,
            PacketType.INVALIDATE,
            PacketType.CMI_INVALIDATE,
        ):
            return self.remote_engine.deliver_external(pkt)
        if pkt.ptype in (PacketType.INTERRUPT, PacketType.CONTROL):
            return self.syscontrol.deliver(pkt)
        raise RuntimeError(f"{self.name}: unroutable packet {pkt}")

    def _route_reply(self, pkt: Packet) -> bool:
        """Replies match whichever engine has the waiting TSRF entry."""
        addr = line_addr(pkt.addr)
        if self.home_engine.has_waiting_external(addr, int(pkt.ptype)):
            return self.home_engine.deliver_external(pkt)
        return self.remote_engine.deliver_external(pkt)

    # -----------------------------------------------------------------------
    # Workload control
    # -----------------------------------------------------------------------

    def start_cpus(self) -> None:
        """Start every CPU that has a workload thread attached."""
        for cpu in self.cpus:
            if cpu.thread is not None:
                self._cpus_running += 1
                cpu.start()

    def cpu_finished(self, cpu_id: int) -> None:
        """A CPU's workload thread completed."""
        self._cpus_running -= 1
        self.system.cpu_finished(self.node_id, cpu_id)

    @property
    def cpus_running(self) -> int:
        return self._cpus_running

    # -----------------------------------------------------------------------
    # Aggregated statistics
    # -----------------------------------------------------------------------

    def miss_breakdown(self) -> Dict[str, int]:
        """Chip-wide Figure 6b decomposition of L1 misses."""
        total = {"l2_hit": 0, "l2_fwd": 0, "l2_miss": 0}
        for bank in self.banks:
            for key, value in bank.miss_breakdown().items():
                total[key] += value
        return total

    def audit_duplicate_tags(self) -> None:
        """Verify the §2.3 invariant that the duplicate L1 tags are an
        *exact* mirror of the L1 contents (call at quiesce).

        Raises AssertionError on any divergence: a dup entry naming a line
        its L1 doesn't hold, an L1-resident line missing from the dup
        tags, a state mismatch, or a line with multiple/zero owners while
        copies exist.
        """
        # collect actual L1 contents per cache id
        actual: Dict[int, Dict[int, object]] = {}
        for cpu in range(self.config.cpus):
            for is_instr in (False, True):
                cache_id = CacheId.encode(cpu, is_instr)
                l1 = self.l1_of(cpu, is_instr)
                actual[cache_id] = dict(l1.iter_lines())
        for cache_id, cache in self.extra_caches.items():
            actual[cache_id] = dict(cache.iter_lines())
        for bank in self.banks:
            for line_addr_, entry in bank.dup.entries.items():
                for sharer in entry.sharers:
                    held = actual.get(sharer, {}).get(line_addr_)
                    assert held is not None, (
                        f"{self.name}: dup tags list cache {sharer} for "
                        f"{line_addr_:#x} but its L1 does not hold it"
                    )
                    mirrored = entry.states.get(sharer)
                    # E and M are indistinguishable to the L2 controller
                    # (silent E->M upgrades never cross the ICS), exactly
                    # as in hardware; anything else must match.
                    def _bucket(state):
                        from .messages import MESI as _M

                        return ("X" if state in (_M.EXCLUSIVE, _M.MODIFIED)
                                else state)

                    assert _bucket(mirrored) == _bucket(held.state), (
                        f"{self.name}: dup state {mirrored} != L1 state "
                        f"{held.state} for {line_addr_:#x} cache {sharer}"
                    )
        # reverse direction: every resident L1 line is in the dup tags
        for cache_id, lines in actual.items():
            for line_addr_ in lines:
                bank = self.bank_for(line_addr_)
                assert cache_id in bank.dup.sharers(line_addr_), (
                    f"{self.name}: L1 cache {cache_id} holds "
                    f"{line_addr_:#x} but the duplicate tags do not know"
                )

    def on_chip_resident_bytes(self) -> int:
        """Total live on-chip data (the non-inclusion payoff: grows with
        CPU count because L1 contents are not duplicated in the L2)."""
        lines = sum(b.resident_lines() for b in self.banks)
        for l1 in self.l1i + self.l1d + list(self.extra_caches.values()):
            lines += l1.resident_lines()
        return lines * 64
