"""First-level instruction and data caches (Section 2.1).

64 KB, two-way set-associative, 64-byte lines, virtually indexed /
physically tagged, single-cycle, *blocking*.  Each line carries a 2-bit
MESI state.  The instruction and data caches share virtually the same
design, so — unlike other Alpha implementations — the instruction cache is
kept coherent by hardware, which is what makes the L2's no-inclusion policy
uniform across I and D streams.

The L1 is a passive structure in this model: the CPU calls :meth:`lookup`
(hits are folded into CPU time), and the chip's transaction flow calls
:meth:`fill` / :meth:`invalidate` / :meth:`downgrade`.  Ownership (used by
the L2's writeback-filtering policy) is a per-line bit granted by the L2 at
fill time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..mem.addr import LINE_SHIFT
from .config import L1Params
from .messages import MESI, AccessKind


@dataclass
class L1Line:
    """One resident cache line."""

    tag: int
    state: MESI
    owner: bool = False       # L2-granted ownership (write-back filter)
    dirty: bool = False
    version: int = 0          # data-token for the coherence checker


@dataclass
class Eviction:
    """Information about a victim line handed back to the caller."""

    addr: int
    state: MESI
    owner: bool
    dirty: bool
    version: int


class LookupResult:
    """Outcome of a CPU-side lookup."""

    __slots__ = ("hit", "needs_upgrade", "state")

    def __init__(self, hit: bool, needs_upgrade: bool, state: MESI) -> None:
        self.hit = hit
        self.needs_upgrade = needs_upgrade
        self.state = state


class L1Cache:
    """One first-level cache (instruction or data)."""

    def __init__(self, params: L1Params, cpu_id: int, is_instr: bool) -> None:
        self.params = params
        self.cpu_id = cpu_id
        self.is_instr = is_instr
        self.num_sets = params.sets
        self.assoc = params.assoc
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"set count must be a power of two, got {self.num_sets}")
        self._set_mask = self.num_sets - 1
        # Each set is an OrderedDict tag -> L1Line; most recent at the end.
        self.sets = [OrderedDict() for _ in range(self.num_sets)]
        self.n_lookups = 0
        self.n_hits = 0
        self.n_upgrades = 0

    def counters(self) -> dict:
        """Snapshot of the plain hit/miss counters (the L1 keeps bare ints
        on its single-cycle lookup path; this is the sampler/export
        interface to them)."""
        return {"lookups": self.n_lookups, "hits": self.n_hits,
                "upgrades": self.n_upgrades}

    # -- geometry ----------------------------------------------------------

    def _index(self, addr: int) -> int:
        return (addr >> LINE_SHIFT) & self._set_mask

    def _tag(self, addr: int) -> int:
        return addr >> LINE_SHIFT

    # -- CPU side ------------------------------------------------------------

    def lookup(self, addr: int, kind: AccessKind) -> LookupResult:
        """CPU access: hit test + LRU update + dirty marking on store hits.

        A store that finds the line SHARED is a *needs_upgrade* miss: the
        data is present but an EXCLUSIVE coherence request must still be
        issued (Section 2.5.3's third request type).
        """
        self.n_lookups += 1
        tag = addr >> LINE_SHIFT
        lru_set = self.sets[tag & self._set_mask]
        line = lru_set.get(tag)
        if line is None or line.state == MESI.INVALID:
            return LookupResult(False, False, MESI.INVALID)
        lru_set.move_to_end(tag)
        is_write = kind in (AccessKind.STORE, AccessKind.STORE_COND, AccessKind.WH64)
        if is_write:
            if line.state == MESI.SHARED:
                self.n_upgrades += 1
                return LookupResult(False, True, MESI.SHARED)
            # E -> M transition is silent on-chip.
            line.state = MESI.MODIFIED
            line.dirty = True
            line.version += 1
        self.n_hits += 1
        return LookupResult(True, False, line.state)

    # -- chip side -----------------------------------------------------------

    def peek(self, addr: int) -> Optional[L1Line]:
        """Non-destructive lookup (no LRU update)."""
        return self.sets[self._index(addr)].get(self._tag(addr))

    def choose_victim(self, addr: int) -> Optional[int]:
        """Line address that :meth:`fill` would evict, or None."""
        lru_set = self.sets[self._index(addr)]
        if self._tag(addr) in lru_set or len(lru_set) < self.assoc:
            return None
        victim_tag = next(iter(lru_set))
        return victim_tag << LINE_SHIFT

    def fill(
        self,
        addr: int,
        state: MESI,
        owner: bool,
        version: int = 0,
        dirty: bool = False,
    ) -> Optional[Eviction]:
        """Install a line, returning the eviction (if any) for the caller
        (the L2 transaction flow) to route: owner lines write back to the
        L2, non-owner lines just update the duplicate tags."""
        if state == MESI.INVALID:
            raise ValueError("cannot fill an INVALID line")
        lru_set = self.sets[self._index(addr)]
        tag = self._tag(addr)
        evicted: Optional[Eviction] = None
        existing = lru_set.get(tag)
        if existing is not None:
            existing.state = state
            existing.owner = owner
            existing.dirty = dirty or existing.dirty
            existing.version = max(version, existing.version)
            lru_set.move_to_end(tag)
            return None
        if len(lru_set) >= self.assoc:
            victim_tag, victim = lru_set.popitem(last=False)
            evicted = Eviction(
                addr=victim_tag << LINE_SHIFT,
                state=victim.state,
                owner=victim.owner,
                dirty=victim.dirty,
                version=victim.version,
            )
        lru_set[tag] = L1Line(tag=tag, state=state, owner=owner,
                              dirty=dirty, version=version)
        return evicted

    def invalidate(self, addr: int) -> Optional[L1Line]:
        """Remove a line (on-chip invalidations need no ack: the intra-chip
        switch's ordering guarantees make them safe — Section 2.3).
        Returns the removed line so the caller can recover dirty data."""
        lru_set = self.sets[self._index(addr)]
        return lru_set.pop(self._tag(addr), None)

    def downgrade(self, addr: int) -> Optional[L1Line]:
        """M/E -> S transition (remote or local read of an exclusive line).
        Returns the line (with its pre-downgrade dirtiness preserved for
        the caller to write back if needed)."""
        line = self.peek(addr)
        if line is None:
            return None
        line.state = MESI.SHARED
        return line

    def set_owner(self, addr: int, owner: bool) -> None:
        """L2 moves the ownership token between sharers."""
        line = self.peek(addr)
        if line is not None:
            line.owner = owner

    # -- stats -----------------------------------------------------------

    def iter_lines(self):
        """Iterate ``(line_addr, L1Line)`` over every resident line (no
        LRU side effects; used by the duplicate-tag mirror audit)."""
        for lru_set in self.sets:
            for line in lru_set.values():
                yield line.tag << LINE_SHIFT, line

    @property
    def hit_rate(self) -> float:
        return self.n_hits / self.n_lookups if self.n_lookups else 0.0

    def resident_lines(self) -> int:
        return sum(len(s) for s in self.sets)

    def __repr__(self) -> str:  # pragma: no cover
        flavour = "iL1" if self.is_instr else "dL1"
        return f"{flavour}(cpu={self.cpu_id}, lines={self.resident_lines()})"
