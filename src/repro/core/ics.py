"""Intra-Chip Switch (ICS) — Section 2.2.

Conceptually a crossbar interconnecting the 27 on-chip clients (8 CPUs'
iL1/dL1 pairs, 8 L2 banks, 2 protocol engines, packet switch, system
control).  The interface is uni-directional and push-only: the initiator
always sources data, transfers are atomic, and each port moves one 64-bit
word per 500 MHz cycle with back-to-back transfers and no dead cycles.

Two logical lanes (low / high priority) avoid intra-chip protocol
deadlocks; they share the eight physical datapaths (the paper adds ready
lines, not wires).  Internal capacity is 32 GB/s — about 3x the memory
bandwidth — so an optimal schedule is not critical; we model datapath
occupancy and a fixed crossing latency.

The atomic-transfer ordering property is what lets the L2 controllers skip
acknowledgements for on-chip invalidations (Section 2.3).
"""

from __future__ import annotations

from ..sim.engine import Clock, Component, Simulator, ns
from .config import ChipConfig

#: Number of internal 64-bit datapaths along the chip spine.
DATAPATHS = 8
#: Payload moved per datapath per cycle (64 bits + ECC).
BYTES_PER_CYCLE = 8

LANE_LOW = 0
LANE_HIGH = 1


class IntraChipSwitch(Component):
    """Occupancy + latency model of the ICS."""

    def __init__(self, sim: Simulator, name: str, config: ChipConfig) -> None:
        super().__init__(sim, name)
        self.config = config
        self.clock = Clock(config.core.clock_mhz if config.core.model == "inorder"
                           else 500.0)
        self.base_latency_ps = ns(config.lat.ics)
        self._datapath_free = [0] * DATAPATHS
        self.c_transfers = self.stats.counter("transfers")
        self.c_bytes = self.stats.counter("bytes")
        self.c_lane = [
            self.stats.counter("lane_low_transfers"),
            self.stats.counter("lane_high_transfers"),
        ]
        self.c_conflicts = self.stats.counter("datapath_conflicts")
        #: picoseconds transfers spent queued for a datapath (only touched
        #: on the conflict branch, so the uncontended path stays flat)
        self.a_queue_wait = self.stats.accumulator("datapath_wait_ps")

    def transfer_delay(self, size_bytes: int, lane: int = LANE_LOW) -> int:
        """Reserve a datapath and return the total picoseconds until the
        transfer completes (queueing + crossing latency + serialisation).

        Callers fold the returned delay into their event schedule; the
        switch itself holds no packet state (it is push-only and atomic).
        """
        if size_bytes <= 0:
            raise ValueError("transfer size must be positive")
        if lane not in (LANE_LOW, LANE_HIGH):
            raise ValueError(f"unknown ICS lane {lane}")
        now = self.sim.now
        # Pick the earliest-free datapath (the hardware pre-allocates via
        # the target-hint mechanism; earliest-free is equivalent here).
        # index(min(...)) picks the same first-minimal path as
        # min(range, key=...) but stays in C — this is a per-miss hot path.
        free = self._datapath_free
        earliest = min(free)
        path = free.index(earliest)
        start = now if now > earliest else earliest
        if start > now:
            self.c_conflicts.inc()
            self.a_queue_wait.add(start - now)
        cycles = -(-size_bytes // BYTES_PER_CYCLE)  # ceil division
        busy_ps = cycles * self.clock.period_ps
        free[path] = start + busy_ps
        self.c_transfers.inc()
        self.c_bytes.inc(size_bytes)
        self.c_lane[lane].inc()
        return (start - now) + self.base_latency_ps

    def utilization(self) -> float:
        """Fraction of aggregate datapath-time used so far."""
        if self.now == 0:
            return 0.0
        used = self.c_bytes.value / BYTES_PER_CYCLE * self.clock.period_ps
        return used / (self.now * DATAPATHS)
