"""Sampled transaction probes: per-miss latency attribution.

The paper's Table 2 and Figure 6 argue from *where a miss spends its
time* — L2-hit vs. local-memory vs. 2-hop remote vs. 3-hop remote-dirty
service, and the per-hop costs inside each class.  Counters can only
approximate that by arithmetic over aggregate sums; probes measure it
directly.  Every Nth L1 miss gets a :class:`TxnProbe` attached to its
:class:`~repro.core.messages.MemRequest`.  The probe rides the
transaction end-to-end — through the ICS, the L2 bank, the protocol
engines, every interconnect packet, and the memory channel — collecting
``(hop_label, time_ps)`` stamps, and is classified and aggregated by the
chip-wide :class:`ProbeCollector` when the request completes.

Hot-path discipline: the untagged path (the other N-1 of every N misses,
and *all* misses when probes are disabled) costs one ``is None``
attribute test per stamp point and allocates nothing.  Components must
always guard with ``if probe is not None`` before touching a probe.

Hop labels, in the order a transaction can visit them:

``issue``
    L1 miss detected, request handed to the chip (always the first stamp).
``bank``
    arrival at the home L2 bank's controller (delta from the previous
    stamp covers L1 miss-detect + the ICS request transfer; repeated
    arrivals due to same-line conflict serialisation re-stamp, so
    conflict wait time lands here too).
``l2_tag``
    L2 bank tag + duplicate-L1-tag lookup done.
``l2_data``
    L2 data array read done (L2-hit path).
``fwd_owner``
    owning L1 serviced a forwarded request (L2_FWD path).
``mem_data``
    memory channel delivered the critical word (local or home memory).
``owner_fetch``
    remote dirty owner's L2/L1 fetch done (3-hop path).
``pe_dispatch``
    a protocol engine picked the transaction's TSRF entry for execution.
``pkt_send`` / ``pkt_recv``
    packet handed to / delivered from the inter-node interconnect.
``pkt_transit``
    packet forwarded through an intermediate router hop.
``fill``
    the fill reached the requesting L1 and the CPU restarted (always the
    last stamp, at completion time).

The per-hop decomposition assigns each consecutive stamp delta to the
*later* stamp's label, so hop sums partition the end-to-end latency
exactly (tested as an invariant).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.engine import PS_PER_NS
from ..sim.stats import Accumulator, Histogram
from .messages import ReplySource, RequestType

#: Latency histogram bin edges, in nanoseconds.  Spans L2 hits (a few
#: dozen ns at 500 MHz) through 3-hop remote-dirty misses (>1 us under
#: load); fixed so histograms from different runs are comparable.
LATENCY_EDGES_NS = (
    25, 50, 75, 100, 150, 200, 300, 400, 600, 800,
    1200, 1600, 2400, 3200, 4800,
)

#: Transaction classes, mirroring Table 2's latency rows.  ``upgrade``
#: captures exclusive requests on an already-shared line (no data
#: transfer); the rest follow the servicing :class:`ReplySource`.
PROBE_CLASSES = (
    "l2_hit", "l2_fwd", "local_mem", "remote_clean", "remote_dirty",
    "upgrade",
)

_SOURCE_CLASS = {
    ReplySource.L1_HIT: "l2_hit",       # defensive: probes attach on misses
    ReplySource.L2_HIT: "l2_hit",
    ReplySource.L2_FWD: "l2_fwd",
    ReplySource.LOCAL_MEM: "local_mem",
    ReplySource.REMOTE_MEM: "remote_clean",
    ReplySource.REMOTE_DIRTY: "remote_dirty",
}


class TxnProbe:
    """Timestamps one sampled transaction's hops.

    Mutable scratch object owned by its :class:`ProbeCollector`; not a
    dataclass to keep attach cheap (``__slots__``, no default machinery).
    """

    __slots__ = ("txn_id", "cpu_id", "node", "reqtype", "stamps", "notes",
                 "collector", "done")

    def __init__(self, collector: "ProbeCollector", txn_id: int, cpu_id: int,
                 node: int, reqtype: RequestType, now_ps: int) -> None:
        self.collector = collector
        self.txn_id = txn_id
        self.cpu_id = cpu_id
        self.node = node
        self.reqtype = reqtype
        #: ordered ``(hop_label, time_ps)`` pairs; first is always "issue"
        self.stamps: List[tuple] = [("issue", now_ps)]
        self.notes: Dict[str, object] = {}
        self.done = False

    def stamp(self, label: str, time_ps: int) -> None:
        """Record reaching *label* at *time_ps* (may be a computed future
        time when a component charges its whole delay in one event).
        Stamps after completion — e.g. the post-fill invalidation
        campaign of an eager exclusive grant — are dropped: they are not
        part of the miss's critical path."""
        if not self.done:
            self.stamps.append((label, time_ps))

    def note(self, key: str, value) -> None:
        """Attach a free-form annotation (e.g. ``dram_page_hit``)."""
        if not self.done:
            self.notes[key] = value

    def latency_ps(self) -> int:
        return self.stamps[-1][1] - self.stamps[0][1]

    def hop_decomposition(self) -> Dict[str, int]:
        """Per-hop time: each consecutive stamp delta is assigned to the
        later stamp's label (summing repeats, e.g. multiple ``pkt_send``
        hops of a 3-hop miss).  Values sum to :meth:`latency_ps`."""
        hops: Dict[str, int] = {}
        stamps = self.stamps
        prev_t = stamps[0][1]
        for label, t in stamps[1:]:
            hops[label] = hops.get(label, 0) + (t - prev_t)
            prev_t = t
        return hops

    def finish(self, now_ps: int, source: ReplySource) -> None:
        """Close the probe and fold it into the collector's aggregates."""
        if self.done:
            return
        if self.stamps[-1][1] != now_ps:
            # Defensive: every completion path stamps "fill" at the
            # completing event's time, but keep the hop-sum == latency
            # invariant even if one doesn't.
            self.stamps.append(("fill", now_ps))
        self.done = True
        self.collector.finish(self, source)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TxnProbe(txn={self.txn_id}, cpu={self.cpu_id}, "
                f"stamps={len(self.stamps)}, done={self.done})")


def classify(reqtype: RequestType, source: ReplySource) -> str:
    """Map a completed transaction to its Table-2 class.

    Classification uses the *issue-time* request type: an EXCLUSIVE
    (upgrade) that the bank degrades to READ_EXCLUSIVE after a conflict
    still counts as an upgrade attempt from the CPU's point of view.
    """
    if reqtype == RequestType.EXCLUSIVE:
        return "upgrade"
    return _SOURCE_CLASS[source]


class ProbeCollector:
    """Samples misses at a fixed rate and aggregates completed probes.

    Aggregates per class: an end-to-end latency :class:`Histogram` (ns),
    a latency :class:`Accumulator`, and per-hop accumulators (one per
    hop label, in ps, accumulating each probe's summed time in that
    hop).  ``by_source`` additionally buckets latency by the raw
    :class:`ReplySource` regardless of class, which is what the
    counter-vs-probe cross-check in CI compares (CPUs account stall per
    source, not per class).  The first *max_samples* completed probes
    are kept verbatim for trace-level inspection in the metrics export.
    """

    def __init__(self, rate: int, max_samples: int = 64) -> None:
        if rate < 1:
            raise ValueError(f"probe rate must be >= 1, got {rate}")
        self.rate = int(rate)
        self.max_samples = int(max_samples)
        #: optional ``cb(probe, source, cls)`` invoked after each probe is
        #: folded into the aggregates; the span tracer hangs here.  Runs
        #: only for probed (1-in-rate) completions, never on the hot path.
        self.on_finish = None
        self._tick = 0
        self.attached = 0
        self.completed = 0
        self.hist: Dict[str, Histogram] = {}
        self.lat: Dict[str, Accumulator] = {}
        self.hops: Dict[str, Dict[str, Accumulator]] = {}
        self.by_source: Dict[str, Accumulator] = {}
        self.samples: List[Dict[str, object]] = []
        for cls in PROBE_CLASSES:
            self.hist[cls] = Histogram(f"lat_{cls}", LATENCY_EDGES_NS)
            self.lat[cls] = Accumulator(f"lat_{cls}")
            self.hops[cls] = {}
        for src in ReplySource:
            self.by_source[src.name.lower()] = Accumulator(src.name.lower())

    # -- attach / finish -------------------------------------------------

    def maybe_attach(self, txn_id: int, cpu_id: int, node: int,
                     reqtype: RequestType, now_ps: int) -> Optional[TxnProbe]:
        """Return a fresh probe for every ``rate``-th call, else None.

        The caller (``PiranhaChip.issue_miss``) invokes this once per L1
        miss, so "every Nth miss" is chip-arrival order — deterministic
        for a given seed/config."""
        self._tick += 1
        if self._tick % self.rate:
            return None
        self.attached += 1
        return TxnProbe(self, txn_id, cpu_id, node, reqtype, now_ps)

    def finish(self, probe: TxnProbe, source: ReplySource) -> None:
        cls = classify(probe.reqtype, source)
        lat_ps = probe.latency_ps()
        lat_ns = lat_ps / PS_PER_NS
        self.completed += 1
        self.hist[cls].add(lat_ns)
        self.lat[cls].add(lat_ns)
        self.by_source[source.name.lower()].add(lat_ns)
        cls_hops = self.hops[cls]
        for label, dt_ps in probe.hop_decomposition().items():
            acc = cls_hops.get(label)
            if acc is None:
                acc = cls_hops[label] = Accumulator(label)
            acc.add(dt_ps)
        if len(self.samples) < self.max_samples:
            # NOTE: no txn_id here — it comes from a process-global
            # counter, and the metrics document must be identical across
            # serial/parallel/cached paths; completion order already
            # identifies a sample within the run
            self.samples.append({
                "seq": self.completed,
                "cpu_id": probe.cpu_id,
                "node": probe.node,
                "reqtype": probe.reqtype.name.lower(),
                "class": cls,
                "source": source.name.lower(),
                "latency_ns": lat_ns,
                "stamps": [[label, t] for label, t in probe.stamps],
                "notes": dict(probe.notes),
            })
        # getattr: collectors restored from pre-hook checkpoints lack the
        # attribute entirely
        cb = getattr(self, "on_finish", None)
        if cb is not None:
            cb(probe, source, cls)

    # -- checkpoint/restore ----------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Aggregates, sampling cursor and kept samples; in-flight probes
        live on their MemRequests and ride the event queue instead."""
        return dict(self.__dict__)

    def load_state(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    def __getstate__(self) -> Dict[str, object]:
        return self.state_dict()

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.load_state(state)

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Zero every aggregate (warm-up boundary).  In-flight probes are
        untouched: a transaction straddling the boundary completes into
        the post-reset aggregates, matching how the CPUs' per-source
        stall counters treat it."""
        self.attached = 0
        self.completed = 0
        self.samples = []
        for cls in PROBE_CLASSES:
            self.hist[cls].reset()
            self.lat[cls].reset()
            self.hops[cls] = {}
        for acc in self.by_source.values():
            acc.reset()

    # -- export ----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-able aggregate summary (schema documented in DESIGN.md)."""
        def pct(h: Histogram, q: float) -> Optional[float]:
            p = h.percentile(q)
            return None if p == float("inf") else p

        classes: Dict[str, object] = {}
        for cls in PROBE_CLASSES:
            hist = self.hist[cls]
            lat = self.lat[cls]
            classes[cls] = {
                "count": lat.count,
                "mean_ns": lat.mean,
                "min_ns": lat.min,
                "max_ns": lat.max,
                "p50_ns": pct(hist, 0.50),
                "p90_ns": pct(hist, 0.90),
                "p99_ns": pct(hist, 0.99),
                "histogram": {"edges_ns": list(hist.edges),
                              "bins": list(hist.bins)},
                "hops": {
                    label: {"count": acc.count,
                            "mean_ns": acc.mean / PS_PER_NS,
                            "total_ns": acc.total / PS_PER_NS}
                    for label, acc in sorted(self.hops[cls].items())
                },
            }
        return {
            "rate": self.rate,
            "attached": self.attached,
            "completed": self.completed,
            "classes": classes,
            "by_source": {
                name: {"count": acc.count, "mean_ns": acc.mean,
                       "total_ns": acc.total}
                for name, acc in self.by_source.items()
            },
            "samples": list(self.samples),
        }
