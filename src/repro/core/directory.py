"""Directory storage in the memory's ECC bits (Section 2.5.2).

Piranha stores inter-node directory information with virtually no memory
overhead by computing ECC across 256-bit boundaries instead of the typical
64-bit, freeing 44 bits per 64-byte line.  Two bits encode the directory
state; the remaining 42 bits encode the sharers using either a
**limited-pointer** representation (up to four 10-bit node pointers in a
1 K-node system) or a **coarse-vector** representation (each of the 42 bits
stands for a group of nodes) once a line has more than four remote sharers.

The directory never tracks sharers at the home node itself (the home
node's on-chip duplicate tags / L2 state cover those), and it tracks nodes,
not individual CPUs.

This module implements the 44-bit encoding bit-exactly — every directory
read/write in the simulator round-trips through it — plus the ECC
accounting that justifies the "free" storage claim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

#: Bits freed per 64-byte line by widening the ECC granularity.
DIRECTORY_BITS = 44
STATE_BITS = 2
SHARER_BITS = DIRECTORY_BITS - STATE_BITS  # 42
#: Node-pointer width for a 1 K-node system.
POINTER_BITS = 10
#: Maximum remote sharers representable with limited pointers.
MAX_POINTERS = SHARER_BITS // POINTER_BITS  # 4

_STATE_SHIFT = SHARER_BITS
_SHARER_MASK = (1 << SHARER_BITS) - 1


class DirState(enum.IntEnum):
    """2-bit directory states."""

    UNCACHED = 0         # no remote copies
    SHARED = 1           # remote read-only copies (limited pointers)
    SHARED_COARSE = 2    # remote read-only copies (coarse vector)
    EXCLUSIVE = 3        # one remote node holds the line dirty/exclusive


@dataclass(frozen=True)
class DirectoryEntry:
    """Decoded directory contents for one line."""

    state: DirState
    sharers: FrozenSet[int]   # remote nodes (exact for pointers, superset
                              # of reality for coarse vector)
    owner: Optional[int]      # remote owner node when EXCLUSIVE

    @staticmethod
    def uncached() -> "DirectoryEntry":
        return DirectoryEntry(DirState.UNCACHED, frozenset(), None)


def coarse_group(node: int, num_nodes: int) -> int:
    """Coarse-vector bit covering *node* in a *num_nodes* system."""
    nodes_per_bit = -(-num_nodes // SHARER_BITS)  # ceil
    return node // nodes_per_bit


def coarse_members(bit: int, num_nodes: int) -> Tuple[int, ...]:
    """Nodes covered by coarse-vector *bit*."""
    nodes_per_bit = -(-num_nodes // SHARER_BITS)
    lo = bit * nodes_per_bit
    return tuple(range(lo, min(lo + nodes_per_bit, num_nodes)))


def encode(entry: DirectoryEntry, num_nodes: int) -> int:
    """Encode a directory entry into its 44-bit in-ECC representation."""
    if entry.state == DirState.UNCACHED:
        return DirState.UNCACHED << _STATE_SHIFT
    if entry.state == DirState.EXCLUSIVE:
        if entry.owner is None:
            raise ValueError("EXCLUSIVE entry needs an owner")
        if not 0 <= entry.owner < num_nodes:
            raise ValueError(f"owner {entry.owner} out of range")
        return (DirState.EXCLUSIVE << _STATE_SHIFT) | entry.owner
    sharers = sorted(entry.sharers)
    if entry.state == DirState.SHARED:
        if not sharers:
            raise ValueError("SHARED entry needs at least one sharer")
        if len(sharers) > MAX_POINTERS:
            raise ValueError(
                f"limited-pointer form holds at most {MAX_POINTERS} sharers"
            )
        # Exactly 42 bits: a 2-bit (count-1) field plus four 10-bit
        # pointers.  SHARED implies at least one sharer, so count-1 fits.
        field = (len(sharers) - 1) << (MAX_POINTERS * POINTER_BITS)
        for i, node in enumerate(sharers):
            if not 0 <= node < num_nodes:
                raise ValueError(f"sharer {node} out of range")
            field |= node << (i * POINTER_BITS)
        return (DirState.SHARED << _STATE_SHIFT) | field
    # Coarse vector
    field = 0
    for node in sharers:
        field |= 1 << coarse_group(node, num_nodes)
    return (DirState.SHARED_COARSE << _STATE_SHIFT) | field


def decode(bits: int, num_nodes: int) -> DirectoryEntry:
    """Decode the 44-bit representation back into a directory entry.

    Coarse-vector entries decode to the *superset* of nodes their set bits
    cover — exactly the over-invalidation behaviour real coarse vectors
    exhibit.
    """
    if not 0 <= bits < (1 << DIRECTORY_BITS):
        raise ValueError(f"directory field must fit in {DIRECTORY_BITS} bits")
    state = DirState(bits >> _STATE_SHIFT)
    field = bits & _SHARER_MASK
    if state == DirState.UNCACHED:
        return DirectoryEntry.uncached()
    if state == DirState.EXCLUSIVE:
        return DirectoryEntry(state, frozenset({field}), field)
    if state == DirState.SHARED:
        count = (field >> (MAX_POINTERS * POINTER_BITS)) + 1
        sharers = set()
        for i in range(count):
            sharers.add((field >> (i * POINTER_BITS)) & ((1 << POINTER_BITS) - 1))
        return DirectoryEntry(state, frozenset(sharers), None)
    sharers = set()
    for bit in range(SHARER_BITS):
        if field & (1 << bit):
            sharers.update(coarse_members(bit, num_nodes))
    return DirectoryEntry(state, frozenset(sharers), None)


def add_sharer(entry: DirectoryEntry, node: int, num_nodes: int) -> DirectoryEntry:
    """Add a remote sharer, switching representations when the limited
    pointers overflow (past 4 remote sharing nodes in a 1 K system)."""
    sharers = set(entry.sharers) | {node}
    if entry.state == DirState.SHARED_COARSE or len(sharers) > MAX_POINTERS:
        return DirectoryEntry(DirState.SHARED_COARSE, frozenset(sharers), None)
    return DirectoryEntry(DirState.SHARED, frozenset(sharers), None)


def make_exclusive(node: int) -> DirectoryEntry:
    return DirectoryEntry(DirState.EXCLUSIVE, frozenset({node}), node)


class DirectoryStore:
    """Home-side directory for the lines whose home is one node.

    Backed by a plain dict but every read/write round-trips through the
    44-bit codec so representation limits (pointer overflow, coarse-vector
    over-invalidation) are honoured, and a modelled line is exactly as
    expressive as the hardware's ECC-resident bits.
    """

    def __init__(self, node: int, num_nodes: int) -> None:
        self.node = node
        self.num_nodes = num_nodes
        self._bits: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def read(self, line: int) -> DirectoryEntry:
        self.reads += 1
        bits = self._bits.get(line)
        if bits is None:
            return DirectoryEntry.uncached()
        return decode(bits, self.num_nodes)

    def write(self, line: int, entry: DirectoryEntry) -> None:
        self.writes += 1
        if entry.state == DirState.UNCACHED:
            self._bits.pop(line, None)
        else:
            self._bits[line] = encode(entry, self.num_nodes)

    # -- checkpoint/restore ------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Encoded directory bits plus access counters (the 44-bit codec
        means the serialised form is exactly the hardware-resident state)."""
        return dict(self.__dict__)

    def load_state(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    def __getstate__(self) -> Dict[str, object]:
        return self.state_dict()

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.load_state(state)

    def items(self):
        """Iterate ``(line, DirectoryEntry)`` over every non-UNCACHED line
        (decoded through the 44-bit codec; used by the protocol
        sanitizer's cross-consistency audit).  Does not bump ``reads`` —
        auditing must not perturb the access statistics it audits."""
        for line, bits in self._bits.items():
            yield line, decode(bits, self.num_nodes)

    def tracked_lines(self) -> int:
        """Number of lines with a non-UNCACHED directory entry."""
        return len(self._bits)


def ecc_accounting(line_bytes: int = 64) -> Dict[str, int]:
    """Reproduce the ECC-widening arithmetic of Section 2.5.2.

    SEC-DED ECC over k data bits needs r check bits with 2**r >= k + r + 1.
    64-bit granularity needs 8 check bits per word; 256-bit granularity
    needs 10.  Over a 64-byte line the widening frees
    ``8 * 8 - 2 * 10 = 44`` bits.
    """
    def secded_bits(data_bits: int) -> int:
        r = 0
        while (1 << r) < data_bits + r + 1:
            r += 1
        return r + 1  # +1 for double-error detection

    line_bits = line_bytes * 8
    fine = (line_bits // 64) * secded_bits(64)
    coarse = (line_bits // 256) * secded_bits(256)
    return {
        "ecc_bits_64b_granularity": fine,
        "ecc_bits_256b_granularity": coarse,
        "freed_bits_per_line": fine - coarse,
    }
