"""Transaction State Register File (TSRF) — Section 2.5.1.

Each protocol engine owns 16 TSRF entries.  An entry represents the state
of one protocol thread: addresses, microcode program counter, timer, and
scratch state variables.  A thread waiting for a response parks in a
waiting state; the incoming response is matched against the entry by
transaction address.

The 16-entry bound is architectural: it is what makes Piranha's network
buffering requirement independent of system size (Section 2.5.3, with
cruise-missile invalidates bounding messages per entry at four).

The TSRF also anchors the RAS hooks of Section 2.7: every entry carries a
timer, and the engine can encapsulate a timed-out entry's state in a
control message directed at recovery software.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .microcode import END

TSRF_ENTRIES = 16


class TsrfFullError(Exception):
    """No free TSRF entry; the input controller must stall the message."""


@dataclass
class TsrfEntry:
    """One protocol thread's architected state."""

    index: int
    valid: bool = False
    addr: int = 0
    pc: int = END
    #: waiting mode: None (runnable/idle), "external", "local"
    waiting: Optional[str] = None
    #: timer (ps timestamp of allocation) for time-out based error recovery
    timer: int = 0
    #: protocol state variables (requester, type, ack counts, ...)
    vars: Dict[str, Any] = field(default_factory=dict)

    def reset(self) -> None:
        self.valid = False
        self.addr = 0
        self.pc = END
        self.waiting = None
        self.timer = 0
        self.vars = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "free" if not self.valid else (self.waiting or "runnable")
        return f"TSRF[{self.index}]({state}, addr={self.addr:#x}, pc={self.pc})"


class Tsrf:
    """The 16-entry register file with address-based matching."""

    def __init__(self, entries: int = TSRF_ENTRIES) -> None:
        self.entries: List[TsrfEntry] = [TsrfEntry(i) for i in range(entries)]
        self.high_water = 0
        self.allocations = 0
        self.frees = 0
        self.alloc_failures = 0

    def allocate(self, addr: int, pc: int, now_ps: int, **vars: Any) -> TsrfEntry:
        """Claim a free entry for a new protocol thread."""
        for entry in self.entries:
            if not entry.valid:
                entry.valid = True
                entry.addr = addr
                entry.pc = pc
                entry.waiting = None
                entry.timer = now_ps
                entry.vars = dict(vars)
                self.allocations += 1
                self.high_water = max(
                    self.high_water, sum(1 for e in self.entries if e.valid)
                )
                return entry
        self.alloc_failures += 1
        raise TsrfFullError(f"all {len(self.entries)} TSRF entries busy")

    def free(self, entry: TsrfEntry) -> None:
        if entry.valid:
            self.frees += 1
        entry.reset()

    def match(self, addr: int, waiting: str) -> Optional[TsrfEntry]:
        """Find the entry waiting (in mode *waiting*) on transaction *addr*."""
        for entry in self.entries:
            if entry.valid and entry.waiting == waiting and entry.addr == addr:
                return entry
        return None

    def find(self, addr: int) -> Optional[TsrfEntry]:
        """Find any valid entry for *addr* (used for the early-forwarded-
        request race, which piggybacks on the outstanding request's entry)."""
        for entry in self.entries:
            if entry.valid and entry.addr == addr:
                return entry
        return None

    def occupancy(self) -> int:
        return sum(1 for e in self.entries if e.valid)

    @property
    def free_count(self) -> int:
        return len(self.entries) - self.occupancy()

    def timed_out(self, now_ps: int, timeout_ps: int) -> List[TsrfEntry]:
        """Entries older than *timeout_ps* (RAS error-recovery hook)."""
        return [
            e for e in self.entries
            if e.valid and now_ps - e.timer > timeout_ps
        ]

    # -- checkpoint/restore ------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """All 16 entries (including in-flight protocol-thread ``vars``,
        which may hold closures — the checkpoint pickler handles those)
        plus occupancy counters."""
        return dict(self.__dict__)

    def load_state(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    def __getstate__(self) -> Dict[str, Any]:
        return self.state_dict()

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.load_state(state)
