"""Reliability, Availability and Serviceability hooks (Section 2.7).

Piranha's RAS story leans on the *programmability* of the protocol
engines: by changing the semantics of memory accesses, the engines can
implement persistent memory regions, memory mirroring, and checks for
dual-redundant execution — on top of elementary features like protocol
error recovery (TSRF time-outs encapsulated into control messages for
recovery software), error logging and hot-swappable links.

This module implements those hooks over the simulated system:

* :class:`ProtocolWatchdog` — scans the TSRFs for timed-out transactions
  and encapsulates their state into error-log records directed at the
  system controller (the paper's protocol-error-recovery mechanism);
* :class:`PersistentMemory` — registers persistent regions with
  capability checks on write access and write-through-to-safe-memory
  semantics at transaction boundaries;
* :class:`MemoryMirror` — intervenes on memory write-backs to duplicate
  them onto a mirror node's memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..mem.addr import line_addr
from ..sim.engine import Component, Simulator, ns


class CapabilityError(PermissionError):
    """Write to a persistent region without the required capability."""


class ProtocolWatchdog(Component):
    """Periodic TSRF time-out scan (protocol error recovery).

    When a protocol thread exceeds ``timeout_ns``, its state is captured
    in an error record and logged with the node's system controller —
    exactly the "encapsulated in a control message and directed to
    recovery or diagnostic software" mechanism of the paper.
    """

    def __init__(self, sim: Simulator, system, timeout_ns: float = 100_000.0,
                 scan_interval_ns: float = 50_000.0) -> None:
        super().__init__(sim, "ras.watchdog")
        self.system = system
        self.timeout_ps = ns(timeout_ns)
        self.interval_ps = ns(scan_interval_ns)
        self.c_scans = self.stats.counter("scans")
        self.c_timeouts = self.stats.counter("timeouts_detected")
        self._armed = False

    def arm(self) -> None:
        if not self._armed:
            self._armed = True
            self.schedule(self.interval_ps, self._scan)

    def _scan(self) -> None:
        self.c_scans.inc()
        for node in self.system.nodes:
            for engine in (node.home_engine, node.remote_engine):
                for entry in engine.tsrf.timed_out(self.now, self.timeout_ps):
                    self.c_timeouts.inc()
                    node.syscontrol.log_error({
                        "kind": "protocol-timeout",
                        "engine": engine.name,
                        "tsrf": entry.index,
                        "addr": entry.addr,
                        "pc": entry.pc,
                        "age_ps": self.now - entry.timer,
                    })
        if self.system.sim.pending:
            self.schedule(self.interval_ps, self._scan)


@dataclass
class PersistentRegion:
    """One battery-backed persistent memory region."""

    base: int
    size: int
    capability: int

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size


class PersistentMemory:
    """Persistent memory regions with engine-enforced capability checks.

    The protocol engines "intervene in accesses to persistent areas and
    perform capability checks or persistent memory barriers"; here the
    intervention is installed as a bank-level write filter, and
    :meth:`barrier` models forcing volatile (cached) state to safe memory
    at a transaction boundary.
    """

    def __init__(self, system) -> None:
        self.system = system
        self.regions: List[PersistentRegion] = []
        self._held: Dict[int, Set[int]] = {}  # cpu-global id -> capabilities
        self.writes_checked = 0
        self.barriers = 0
        self.flushed_lines = 0

    def register_region(self, base: int, size: int, capability: int) -> PersistentRegion:
        region = PersistentRegion(base, size, capability)
        self.regions.append(region)
        return region

    def grant(self, agent: int, capability: int) -> None:
        self._held.setdefault(agent, set()).add(capability)

    def revoke(self, agent: int, capability: int) -> None:
        self._held.get(agent, set()).discard(capability)

    def region_of(self, addr: int) -> Optional[PersistentRegion]:
        for region in self.regions:
            if region.contains(addr):
                return region
        return None

    def check_write(self, agent: int, addr: int) -> None:
        """Raises :class:`CapabilityError` on unauthorised writes."""
        region = self.region_of(addr)
        if region is None:
            return
        self.writes_checked += 1
        if region.capability not in self._held.get(agent, set()):
            raise CapabilityError(
                f"agent {agent} wrote {addr:#x} in persistent region "
                f"{region.base:#x} without capability {region.capability}"
            )

    def barrier(self, node_id: int) -> int:
        """Persistent memory barrier: force every cached dirty line of the
        persistent regions on *node_id* back to (battery-backed) memory.
        Returns the number of lines flushed."""
        self.barriers += 1
        node = self.system.nodes[node_id]
        flushed = 0
        for bank in node.banks:
            for lset in bank.sets:
                for tag, l2line in list(lset.items()):
                    addr = tag << 6
                    if l2line.dirty and self.region_of(addr) is not None:
                        node.mem_write_back(addr, l2line.version,
                                            bank.bank_idx)
                        l2line.dirty = False
                        flushed += 1
            for l1 in node.l1i + node.l1d:
                for cset in l1.sets:
                    for line in cset.values():
                        addr = line.tag << 6
                        if line.dirty and self.region_of(addr) is not None:
                            self.system.mem_versions[line_addr(addr)] = max(
                                self.system.mem_versions.get(line_addr(addr), 0),
                                line.version,
                            )
                            line.dirty = False
                            flushed += 1
        self.flushed_lines += flushed
        return flushed


class MemoryMirror:
    """Automatic data mirroring via protocol-engine intervention.

    Every committed memory write on a primary node is duplicated onto the
    mirror node's memory image (paper: the engines "can be programmed to
    intervene on memory accesses to provide automatic data mirroring").
    """

    def __init__(self, system, primary: int, mirror: int) -> None:
        if primary == mirror:
            raise ValueError("mirror node must differ from primary")
        self.system = system
        self.primary = primary
        self.mirror = mirror
        self.mirrored_lines: Dict[int, int] = {}
        self.c_mirrored = 0
        self._install()

    def _install(self) -> None:
        node = self.system.nodes[self.primary]
        original = node.mem_write_back

        def intercepted(line: int, version: int, bank_idx: int) -> None:
            original(line, version, bank_idx)
            self.mirrored_lines[line] = version
            self.c_mirrored += 1

        node.mem_write_back = intercepted

    def verify(self) -> bool:
        """Mirror consistency: every mirrored line's version must be at
        least the last value the primary committed."""
        versions = self.system.mem_versions
        return all(
            versions.get(line, 0) >= version
            for line, version in self.mirrored_lines.items()
        )
