"""The Piranha I/O node (Figure 2).

An I/O chip is a stripped-down processing chip: one CPU, one L2 bank with
its memory controller, and a two-link router (no routing table needed).
From the programmer's point of view the CPU on the I/O chip is
indistinguishable from one on a processing chip, and the I/O node's memory
fully participates in the global coherence protocol — I/O is a
*full-fledged member of the interconnect*.

The PCI/X interface reuses the first-level **data cache module** (dL1) to
talk to the memory system: the dL1 gives the PCI/X bridge address
translation, access to I/O-space registers, and interrupt generation.  DMA
transfers therefore move through the ordinary coherence protocol — reads
pull cache lines like a CPU load, writes take ownership like a CPU store.

Having a real CPU on the I/O node enables the optimisations the paper
lists: scheduling device drivers on it for low-latency I/O access, or
interpreting accesses to virtual control registers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional

from ..sim.engine import Component, Simulator, ns
from .chip import PiranhaChip
from .config import ChipConfig, L2Params
from .l1 import L1Cache
from .messages import AccessKind, MemRequest, ReplySource, request_for


def io_node_config(base: ChipConfig) -> ChipConfig:
    """Derive the I/O-chip configuration from a processing-chip config:
    one CPU and a single L2/MC module (Section 2)."""
    return replace(
        base,
        name=f"{base.name}-io",
        cpus=1,
        l2=replace(base.l2, banks=1,
                   size_bytes=base.l2.size_bytes // base.l2.banks),
        is_io_node=True,
    )


@dataclass
class DmaTransfer:
    """Bookkeeping for one DMA burst."""

    addr: int
    lines: int
    is_write: bool
    done_lines: int = 0
    start_ps: int = 0
    end_ps: int = 0


class PciInterface(Component):
    """PCI/X bridge fronted by its own dL1 module.

    DMA requests issue one coherence transaction per line through the
    bridge's dL1; completions raise an interrupt through the system
    controller.  Device-register reads/writes go through the same port
    (modelled as uncached single-line transactions).
    """

    def __init__(self, sim: Simulator, chip: PiranhaChip,
                 link_mb_s: float = 533.0) -> None:
        super().__init__(sim, f"{chip.name}.pci")
        self.chip = chip
        self.dl1 = L1Cache(chip.config.l1, cpu_id=chip.config.cpus,
                           is_instr=False)
        self.cache_id = chip.register_extra_cache(self.dl1)
        #: PCI/X 64-bit @ 66 MHz ~ 533 MB/s: per-line transfer time
        self.line_transfer_ps = int(64 / (link_mb_s * 1e6) * 1e12)
        self.c_dma_reads = self.stats.counter("dma_read_lines")
        self.c_dma_writes = self.stats.counter("dma_write_lines")
        self.c_register_ops = self.stats.counter("register_accesses")
        self.transfers: List[DmaTransfer] = []

    # -- DMA ---------------------------------------------------------------

    def dma(self, addr: int, lines: int, is_write: bool,
            on_done: Optional[Callable[[DmaTransfer], None]] = None,
            interrupt_vector: Optional[int] = None) -> DmaTransfer:
        """Start a DMA burst of ``lines`` cache lines at ``addr``."""
        if lines < 1:
            raise ValueError("DMA burst needs at least one line")
        transfer = DmaTransfer(addr=addr, lines=lines, is_write=is_write,
                               start_ps=self.now)
        self.transfers.append(transfer)
        self._issue_line(transfer, 0, on_done, interrupt_vector)
        return transfer

    def _issue_line(self, transfer: DmaTransfer, index: int,
                    on_done, vector) -> None:
        addr = transfer.addr + index * 64
        kind = AccessKind.WH64 if transfer.is_write else AccessKind.LOAD
        result = self.dl1.lookup(addr, kind)

        def line_finished(latency_ps: int = 0,
                          source: ReplySource = ReplySource.L1_HIT) -> None:
            (self.c_dma_writes if transfer.is_write else self.c_dma_reads).inc()
            transfer.done_lines += 1
            # PCI-side serialisation per line
            next_delay = self.line_transfer_ps
            if transfer.done_lines >= transfer.lines:
                transfer.end_ps = self.now + next_delay
                self.schedule(next_delay, self._complete, transfer,
                              on_done, vector)
            else:
                self.schedule(next_delay, self._issue_line, transfer,
                              index + 1, on_done, vector)

        if result.hit:
            line_finished()
            return
        req = MemRequest(
            cpu_id=self.chip.config.cpus,  # the bridge's pseudo-CPU slot
            kind=kind, addr=addr, is_instr=False,
            done=line_finished, node=self.chip.node_id,
        )
        req.issue_time = self.now
        # The bridge's dL1 misses enter the memory system like any CPU's.
        self.chip.issue_miss_from_cache(req, request_for(kind, result.state),
                                        self.cache_id)

    def _complete(self, transfer: DmaTransfer, on_done, vector) -> None:
        if vector is not None:
            self.chip.syscontrol.raise_interrupt(self.chip.node_id, vector)
        if on_done is not None:
            on_done(transfer)

    # -- device registers ------------------------------------------------

    def register_read(self, device_addr: int) -> int:
        """Uncached device-register read (constant PCI latency)."""
        self.c_register_ops.inc()
        return 0

    def register_write(self, device_addr: int, value: int) -> None:
        self.c_register_ops.inc()


class IoNode:
    """A complete Piranha I/O node: stripped-down chip + PCI/X bridge."""

    def __init__(self, system, base_config: ChipConfig, node_id: int) -> None:
        self.config = io_node_config(base_config)
        self.chip = PiranhaChip(system.sim, self.config, system,
                                node_id=node_id)
        self.pci = PciInterface(system.sim, self.chip)

    @property
    def cpu(self):
        """The driver CPU — indistinguishable from a processing-chip CPU."""
        return self.chip.cpus[0]
