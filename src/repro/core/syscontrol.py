"""System Control (SC) module — Sections 2 and 2.6.

The SC handles miscellaneous maintenance functions: system configuration,
initialisation, interrupt distribution, exception handling and performance
monitoring.  After reset the router forwards *all* packets to the SC, which
interprets control packets, programs control registers (including the
routing table), and can start or stop individual Alpha cores; nodes can
also boot the traditional Alpha way from a serial EPROM.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..interconnect.packets import Packet, PacketType
from ..sim.engine import Component, Simulator

#: Well-known control-register addresses.
REG_NODE_ID = 0x00
REG_NUM_NODES = 0x01
REG_ROUTING_BASE = 0x10     # routing-table entries live above this
REG_CPU_ENABLE = 0x02       # bitmask of running CPUs
REG_INTERRUPT_PENDING = 0x03
REG_ERROR_LOG = 0x04


class SystemControl(Component):
    """Control registers + interrupt distribution for one node."""

    def __init__(self, sim: Simulator, name: str, chip) -> None:
        super().__init__(sim, name)
        self.chip = chip
        self.registers: Dict[int, int] = {
            REG_NODE_ID: chip.node_id,
            REG_CPU_ENABLE: (1 << chip.config.cpus) - 1,
            REG_INTERRUPT_PENDING: 0,
            REG_ERROR_LOG: 0,
        }
        self.error_log: List[dict] = []
        self.interrupts: List[Packet] = []
        self.initialized = False
        self.c_control = self.stats.counter("control_packets")
        self.c_interrupts = self.stats.counter("interrupts")

    # -- register file -----------------------------------------------------

    def read_register(self, reg: int) -> int:
        return self.registers.get(reg, 0)

    def write_register(self, reg: int, value: int) -> None:
        self.registers[reg] = value
        if reg == REG_CPU_ENABLE:
            self._apply_cpu_enable(value)

    def _apply_cpu_enable(self, mask: int) -> None:
        """Start/stop individual Alpha cores (initialisation capability)."""
        for i, _cpu in enumerate(self.chip.cpus):
            enabled = bool(mask & (1 << i))
            self.registers[REG_CPU_ENABLE] = mask
            # Stopping a running workload core is a test/bring-up facility;
            # the core simply stops being scheduled (we flag it).
            _cpu.stats.counter("enabled").value = int(enabled)

    # -- packet interface ----------------------------------------------------

    def deliver(self, pkt: Packet) -> bool:
        """Disposition-vector target for CONTROL and INTERRUPT packets."""
        if pkt.ptype == PacketType.INTERRUPT:
            self.c_interrupts.inc()
            self.interrupts.append(pkt)
            self.registers[REG_INTERRUPT_PENDING] |= 1 << (pkt.info.get("vector", 0) & 31)
            return True
        self.c_control.inc()
        op = pkt.info.get("op")
        if op == "write_reg":
            self.write_register(pkt.info["reg"], pkt.info["value"])
        elif op == "read_reg":
            # reply travels back as another CONTROL packet
            reply = Packet(
                ptype=PacketType.CONTROL, src=self.chip.node_id, dst=pkt.src,
                addr=pkt.addr,
                info={"op": "reg_value", "reg": pkt.info["reg"],
                      "value": self.read_register(pkt.info["reg"])},
            )
            self.chip.send_packet(reply)
        elif op == "init":
            self.initialized = True
            self.registers[REG_NUM_NODES] = pkt.info.get("num_nodes", 1)
        return True

    # -- interrupt distribution ----------------------------------------------

    def raise_interrupt(self, target_node: int, vector: int) -> None:
        """Send an inter-node interrupt via the interconnect (I/O lane)."""
        pkt = Packet(
            ptype=PacketType.INTERRUPT, src=self.chip.node_id,
            dst=target_node, info={"vector": vector},
        )
        if target_node == self.chip.node_id:
            self.deliver(pkt)
        else:
            self.chip.send_packet(pkt)

    def log_error(self, record: dict) -> None:
        """RAS hook: capture a protocol/time-out error for diagnostics."""
        self.error_log.append(dict(record, time_ps=self.now))
        self.registers[REG_ERROR_LOG] = len(self.error_log)
