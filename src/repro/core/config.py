"""Configuration presets reproducing Table 1 of the paper.

Three processor designs are compared:

* **Piranha (P8)** — the ASIC prototype: eight 500 MHz single-issue
  in-order cores, 64 KB 2-way L1s, a shared 1 MB 8-way non-inclusive L2
  (16 ns hit / 24 ns forward), 80 ns local memory.
* **OOO** — a next-generation 1 GHz 4-issue out-of-order processor
  (Alpha 21364-like) with a 64-entry instruction window, 1.5 MB 6-way L2
  (12 ns hit), 80 ns local memory.
* **P8F** — the full-custom Piranha: 1.25 GHz cores, 12 ns / 16 ns L2.

All designs share 64-byte lines, 64 KB 2-way L1s, 120 ns remote and 180 ns
remote-dirty latencies.  Derived single-issue (INO) and reduced-core
(P1/P2/P4) variants used in Figures 5-7 are generated from these presets.

End-to-end latencies are *composed* from module latencies; the composition
functions at the bottom are unit-tested to reproduce Table 1 exactly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..sim.engine import Clock, ns


@dataclass(frozen=True)
class CoreParams:
    """One processor core."""

    model: str = "inorder"          # "inorder" | "ooo"
    clock_mhz: float = 500.0
    issue_width: int = 1
    window_size: int = 0            # instruction window (OOO only)
    pipeline_stages: int = 8        # fetch, reg-read, ALU1..5, write-back
    #: fraction of a miss's latency the OOO window can hide (derived from
    #: window occupancy; in-order cores hide nothing)
    overlap_ns: float = 0.0
    #: additional outstanding non-blocking misses the core can sustain
    max_outstanding: int = 1

    def clock(self) -> Clock:
        """This core's clock domain."""
        return Clock(self.clock_mhz)


@dataclass(frozen=True)
class L1Params:
    """Per-core split instruction/data first-level caches (Section 2.1)."""

    size_bytes: int = 64 * 1024
    assoc: int = 2
    line_bytes: int = 64
    tlb_entries: int = 256
    tlb_assoc: int = 4
    #: PALcode TLB-refill cost in ns.  0 (the default) disables explicit
    #: TLB simulation: the calibrated workload CPIs already fold TLB
    #: effects in, as the paper's SimOS runs did.  Set positive for
    #: explicit TLB sensitivity studies.
    tlb_refill_ns: float = 0.0

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True)
class L2Params:
    """Shared second-level cache (Section 2.3)."""

    size_bytes: int = 1024 * 1024
    assoc: int = 8
    banks: int = 8
    line_bytes: int = 64
    inclusive: bool = False         # Piranha's headline no-inclusion policy
    pending_entries: int = 16       # concurrent outstanding transactions/bank

    @property
    def sets_per_bank(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes * self.banks)


@dataclass(frozen=True)
class LatencyParams:
    """Module latencies (ns) whose compositions reproduce Table 1.

    ``l2_hit = l1_miss_detect + ics + l2_tag + l2_data + ics``
    ``l2_fwd = l1_miss_detect + ics + l2_tag + ics + owner_l1 + ics``
    ``local_mem = l1_miss_detect + ics + l2_tag + mc_overhead + dram_random
    + ics``
    """

    l1_miss_detect: float = 2.0
    ics: float = 2.0
    l2_tag: float = 4.0
    l2_data: float = 6.0
    owner_l1: float = 12.0
    mc_overhead: float = 10.0
    dram_random: float = 60.0       # critical word (Section 2.4)
    dram_page_hit: float = 40.0
    dram_rest_of_line: float = 30.0
    # Inter-node legs.  ``remote_mem_ns`` / ``remote_dirty_ns`` are the
    # Table 1 end-to-end targets for adjacent nodes; the event-driven
    # multi-chip simulation composes them from the per-leg constants below
    # plus real router/RDRAM latencies, and a calibration test checks the
    # emergent values against the targets.
    protocol_engine: float = 4.0    # engine send/receive microcode service
    he_dispatch: float = 4.0        # home-engine dispatch + directory logic
    net_oneway_short: float = 8.0   # OQ + 2-cycle serialisation + wire + IQ
    net_oneway_long: float = 24.0   # short + 16 ns extra serialisation
    #: input/output controller stages + TSRF dispatch at a forwarded-to
    #: owner node (3-hop transactions only)
    owner_node_pad: float = 22.0
    remote_mem_ns: float = 120.0
    remote_dirty_ns: float = 180.0

    def l2_hit(self) -> float:
        """Composed L2-hit latency (Table 1: 16 ns on P8)."""
        return self.l1_miss_detect + self.ics + self.l2_tag + self.l2_data + self.ics

    def l2_fwd(self) -> float:
        """Composed L1-to-L1 forward latency (Table 1: 24 ns on P8)."""
        return (
            self.l1_miss_detect + self.ics + self.l2_tag + self.ics
            + self.owner_l1 + self.ics
        )

    def local_memory(self) -> float:
        """Composed local-memory latency (Table 1: 80 ns)."""
        return (
            self.l1_miss_detect + self.ics + self.l2_tag
            + self.mc_overhead + self.dram_random + self.ics
        )

    def remote_memory(self) -> float:
        """Adjacent-node 2-hop read serviced by home memory (Table 1)."""
        return self.remote_mem_ns

    def remote_dirty(self) -> float:
        """Adjacent-node 3-hop read serviced by a dirty remote owner
        (Table 1)."""
        return self.remote_dirty_ns

    def remote_memory_composed(self) -> float:
        """Per-leg composition of the 2-hop remote read; the calibration
        test checks this against ``remote_mem_ns``."""
        local_leg = self.l1_miss_detect + self.ics + self.l2_tag
        return (
            local_leg
            + self.protocol_engine + self.net_oneway_short       # RE -> home
            + self.he_dispatch                                    # HE
            + self.mc_overhead + self.dram_random                 # data+dir
            + self.net_oneway_long                                # reply
            + self.ics
        )

    def remote_dirty_composed(self) -> float:
        """Per-leg composition of the 3-hop remote-dirty read: the home
        fetches the directory from memory, forwards to the owner node, and
        the owner replies directly to the requester (reply forwarding)."""
        return (
            self.remote_memory_composed()
            - self.net_oneway_long                               # data not from home
            + self.net_oneway_short                              # fwd to owner
            + self.owner_node_pad                                 # owner dispatch
            + self.he_dispatch                                    # owner engine
            + self.ics + self.l2_tag + self.ics                   # owner L2 path
            + self.owner_l1 + self.ics                            # dirty data in L1
            + self.protocol_engine                                # reply send
            + self.net_oneway_long                                # reply to requester
        )


@dataclass(frozen=True)
class MemoryParams:
    """Direct Rambus memory system (Section 2.4)."""

    controllers: int = 8
    rdram_per_channel: int = 32
    channel_gb_s: float = 1.6
    page_bytes: int = 512
    #: internal banks per RDRAM device, each with its own open page: with
    #: 8 channels x 32 devices x 8 banks the chip can hold the paper's
    #: "as many as 2K (512-byte) pages open" (Section 2.4)
    banks_per_device: int = 8
    page_keep_open_ns: float = 1000.0  # ~1 us keep-open policy
    capacity_gb_per_chip: float = 2.0  # 64 Mbit generation


@dataclass(frozen=True)
class ChipConfig:
    """A complete node configuration (Table 1 column + structure)."""

    name: str
    cpus: int
    core: CoreParams
    l1: L1Params = field(default_factory=L1Params)
    l2: L2Params = field(default_factory=L2Params)
    lat: LatencyParams = field(default_factory=LatencyParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    is_io_node: bool = False

    def with_cpus(self, cpus: int, name: Optional[str] = None) -> "ChipConfig":
        """Derive a reduced-core variant (P1/P2/P4 in the paper)."""
        return replace(self, cpus=cpus, name=name or f"{self.name}x{cpus}")

    def table1_row(self) -> Dict[str, object]:
        """This configuration's Table 1 column."""
        ghz = self.core.clock_mhz / 1000.0
        return {
            "Processor Speed": f"{ghz:g} GHz" if ghz >= 1 else f"{self.core.clock_mhz:g} MHz",
            "Type": self.core.model,
            "Issue Width": self.core.issue_width,
            "Instruction Window Size": self.core.window_size or "-",
            "Cache Line Size": f"{self.l1.line_bytes} bytes",
            "L1 Cache Size": f"{self.l1.size_bytes // 1024} KB",
            "L1 Cache Associativity": f"{self.l1.assoc}-way",
            "L2 Cache Size": f"{self.l2.size_bytes / (1024 * 1024):g}MB",
            "L2 Cache Associativity": f"{self.l2.assoc}-way",
            "L2 Hit / L2 Fwd Latency": (
                f"{self.lat.l2_hit():g} ns / "
                + (f"{self.lat.l2_fwd():g} ns" if self.cpus > 1 else "NA")
            ),
            "Local Memory Latency": f"{self.lat.local_memory():g} ns",
            "Remote Memory Latency": f"{round(self.lat.remote_memory()):g} ns",
            "Remote Dirty Latency": f"{round(self.lat.remote_dirty()):g} ns",
        }


# ---------------------------------------------------------------------------
# Table 1 presets
# ---------------------------------------------------------------------------

#: Piranha ASIC prototype (P8): 8 single-issue in-order 500 MHz cores.
PIRANHA_P8 = ChipConfig(
    name="P8",
    cpus=8,
    core=CoreParams(model="inorder", clock_mhz=500.0, issue_width=1),
    l2=L2Params(size_bytes=1024 * 1024, assoc=8),
    lat=LatencyParams(
        l1_miss_detect=2.0, ics=2.0, l2_tag=4.0, l2_data=6.0,
        owner_l1=12.0, mc_overhead=10.0,
    ),
)

#: Next-generation out-of-order processor (Alpha 21364-like).
OOO = ChipConfig(
    name="OOO",
    cpus=1,
    core=CoreParams(
        model="ooo", clock_mhz=1000.0, issue_width=4, window_size=64,
        overlap_ns=6.0, max_outstanding=8,
    ),
    l2=L2Params(size_bytes=1536 * 1024, assoc=6, banks=8),
    lat=LatencyParams(
        l1_miss_detect=1.0, ics=1.0, l2_tag=3.0, l2_data=6.0,
        owner_l1=10.0, mc_overhead=14.0,
    ),
)

#: Hypothetical single-issue in-order core otherwise identical to OOO
#: (the INO configuration of Figure 5).
INO = ChipConfig(
    name="INO",
    cpus=1,
    core=CoreParams(model="inorder", clock_mhz=1000.0, issue_width=1),
    l2=OOO.l2,
    lat=OOO.lat,
)

#: Full-custom Piranha (P8F): 1.25 GHz cores, custom SRAM latencies.
PIRANHA_P8F = ChipConfig(
    name="P8F",
    cpus=8,
    core=CoreParams(model="inorder", clock_mhz=1250.0, issue_width=1),
    l2=L2Params(size_bytes=1536 * 1024, assoc=6),
    lat=LatencyParams(
        l1_miss_detect=0.8, ics=1.0, l2_tag=3.0, l2_data=6.2,
        owner_l1=9.2, mc_overhead=14.2,
    ),
)

#: Hypothetical single-CPU Piranha chip (P1 of Figure 5).
PIRANHA_P1 = PIRANHA_P8.with_cpus(1, "P1")
PIRANHA_P2 = PIRANHA_P8.with_cpus(2, "P2")
PIRANHA_P4 = PIRANHA_P8.with_cpus(4, "P4")

#: Pessimistic sensitivity study (Section 4): 400 MHz CPUs, 32 KB
#: direct-mapped L1s, 22 ns / 32 ns L2 latencies.
PIRANHA_P8_PESSIMISTIC = ChipConfig(
    name="P8-pessimistic",
    cpus=8,
    core=CoreParams(model="inorder", clock_mhz=400.0, issue_width=1),
    l1=L1Params(size_bytes=32 * 1024, assoc=1),
    l2=L2Params(size_bytes=1024 * 1024, assoc=8),
    lat=LatencyParams(
        l1_miss_detect=2.5, ics=2.5, l2_tag=6.0, l2_data=8.5,
        owner_l1=16.0, mc_overhead=9.0,
    ),
)

PRESETS: Dict[str, ChipConfig] = {
    "P1": PIRANHA_P1,
    "P2": PIRANHA_P2,
    "P4": PIRANHA_P4,
    "P8": PIRANHA_P8,
    "P8F": PIRANHA_P8F,
    "OOO": OOO,
    "INO": INO,
    "P8-pessimistic": PIRANHA_P8_PESSIMISTIC,
}


def preset(name: str) -> ChipConfig:
    """Look up a named configuration preset."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None


def table1() -> Dict[str, Dict[str, object]]:
    """Regenerate Table 1 (P8 / OOO / P8F columns)."""
    return {name: PRESETS[name].table1_row() for name in ("P8", "OOO", "P8F")}
