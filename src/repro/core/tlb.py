"""Instruction/data TLBs (Section 2.1).

Each L1 module includes a 256-entry, 4-way set-associative TLB.  Alpha
refills TLBs in PALcode (software), so a miss costs tens of cycles of
extra execution.

The performance experiments leave the refill cost at zero — the paper's
workload CPIs (which our calibration targets) already include TLB
effects, so charging them again would double-count.  Set
``L1Params.tlb_refill_ns`` to a positive value to study TLB sensitivity
explicitly; the CPU models then consult the TLBs on every reference and
charge the refill as busy time (PAL executes instructions).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

#: Alpha base page size.
PAGE_BYTES = 8192
PAGE_SHIFT = 13


class Tlb:
    """A set-associative TLB over 8 KB pages."""

    def __init__(self, entries: int = 256, assoc: int = 4) -> None:
        if entries % assoc:
            raise ValueError("entries must be a multiple of associativity")
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("TLB set count must be a power of two")
        self._set_mask = self.num_sets - 1
        self.sets: List[OrderedDict] = [OrderedDict()
                                        for _ in range(self.num_sets)]
        self.lookups = 0
        self.misses = 0

    def lookup(self, addr: int) -> bool:
        """True on a TLB hit; a miss installs the translation (the refill
        cost is charged by the caller)."""
        self.lookups += 1
        vpn = addr >> PAGE_SHIFT
        tset = self.sets[vpn & self._set_mask]
        if vpn in tset:
            tset.move_to_end(vpn)
            return True
        self.misses += 1
        if len(tset) >= self.assoc:
            tset.popitem(last=False)
        tset[vpn] = True
        return False

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0

    def flush(self) -> None:
        """Full TLB shootdown (context switch / invalidate-all)."""
        for tset in self.sets:
            tset.clear()

    def resident_pages(self) -> int:
        return sum(len(s) for s in self.sets)
