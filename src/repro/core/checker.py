"""Global coherence invariant checker.

The paper verifies its coherence protocols with formal methods; here a
runtime checker audits every fill and invalidation across all nodes:

* **single writer per node**: an exclusive/modified fill must be the only
  on-node copy (on-chip invalidations are atomic over the ICS);
* **eager-reply discipline**: when a node gains an exclusive copy, copies
  at *other* nodes may transiently survive (eager exclusive replies grant
  ownership before invalidation acks return) but must be invalidated
  before the system quiesces, and may never be upgraded meanwhile;
* **version monotonicity**: fill versions never regress below the line's
  committed version.

Tests run simulations with the checker attached and call
:meth:`CoherenceChecker.verify_quiesced` at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .messages import MESI


class CoherenceViolation(AssertionError):
    """A protocol invariant was broken."""


Holder = Tuple[int, int]  # (node, cache_id)


@dataclass
class LineAudit:
    holders: Dict[Holder, MESI] = field(default_factory=dict)
    committed_version: int = 0
    #: holders invalidated-in-flight by an eager exclusive grant
    stale: Set[Holder] = field(default_factory=set)


class CoherenceChecker:
    """Audits fills/invalidations across every node of a system."""

    def __init__(self) -> None:
        self.lines: Dict[int, LineAudit] = {}
        self.fills = 0
        self.invalidations = 0

    def _audit(self, line: int) -> LineAudit:
        audit = self.lines.get(line)
        if audit is None:
            audit = LineAudit()
            self.lines[line] = audit
        return audit

    def on_fill(self, node: int, cache_id: int, line: int, state: MESI,
                version: int) -> None:
        """Audit one cache fill against the invariants."""
        self.fills += 1
        audit = self._audit(line)
        holder = (node, cache_id)
        if holder in audit.stale:
            # A refill can legitimately race ahead of the invalidation that
            # made the copy stale (unordered network); the fresh fill must
            # carry the newer epoch, and the late invalidation is epoch-
            # filtered at the receiving bank.
            if version < audit.committed_version:
                raise CoherenceViolation(
                    f"line {line:#x}: {holder} refilled a stale copy with "
                    f"an old version {version} < {audit.committed_version}"
                )
            audit.stale.discard(holder)
        if version < audit.committed_version and state in (MESI.MODIFIED,):
            raise CoherenceViolation(
                f"line {line:#x}: exclusive fill with regressed version "
                f"{version} < {audit.committed_version}"
            )
        if state in (MESI.EXCLUSIVE, MESI.MODIFIED):
            for other, other_state in list(audit.holders.items()):
                if other == holder:
                    continue
                if other[0] == node:
                    raise CoherenceViolation(
                        f"line {line:#x}: node {node} granted "
                        f"{state.name} while {other} still holds "
                        f"{other_state.name} on the same node"
                    )
                # Cross-node survivors are the eager-reply transient; they
                # must die before quiesce.
                audit.stale.add(other)
                del audit.holders[other]
            audit.committed_version = max(audit.committed_version, version)
        audit.holders[holder] = state

    def on_downgrade(self, node: int, cache_id: int, line: int) -> None:
        """An exclusive/modified holder dropped to SHARED."""
        audit = self.lines.get(line)
        if audit is None:
            return
        holder = (node, cache_id)
        if holder in audit.holders:
            audit.holders[holder] = MESI.SHARED

    def on_invalidate(self, node: int, cache_id: int, line: int) -> None:
        """A holder's copy was invalidated (or silently evicted)."""
        self.invalidations += 1
        audit = self.lines.get(line)
        if audit is None:
            return
        holder = (node, cache_id)
        audit.holders.pop(holder, None)
        audit.stale.discard(holder)

    def verify_quiesced(self) -> None:
        """Assert end-state invariants once the simulation has drained."""
        for line, audit in self.lines.items():
            if audit.stale:
                raise CoherenceViolation(
                    f"line {line:#x}: stale copies never invalidated: "
                    f"{sorted(audit.stale)}"
                )
            exclusive = [
                h for h, s in audit.holders.items()
                if s in (MESI.EXCLUSIVE, MESI.MODIFIED)
            ]
            if len(exclusive) > 1:
                raise CoherenceViolation(
                    f"line {line:#x}: multiple exclusive holders "
                    f"{exclusive}"
                )
            if exclusive and len(audit.holders) > 1:
                others = set(audit.holders) - set(exclusive)
                raise CoherenceViolation(
                    f"line {line:#x}: exclusive holder {exclusive[0]} "
                    f"coexists with {sorted(others)}"
                )
