"""Protocol sanitizer: coherence invariants, structural audits, traces.

The paper verifies its coherence protocols with formal methods (Section
3.4); the runtime stand-in is this sanitizer layer:

* :class:`CoherenceChecker` audits every fill / invalidation /
  downgrade across all nodes as it happens:

  - **single writer per node**: an exclusive/modified fill must be the
    only on-node copy (on-chip invalidations are atomic over the ICS);
  - **eager-reply discipline**: when a node gains an exclusive copy,
    copies at *other* nodes may transiently survive (eager exclusive
    replies grant ownership before invalidation acks return) but must be
    invalidated before the system quiesces, and may never be upgraded
    meanwhile;
  - **version monotonicity**: fill versions never regress below the
    line's committed version.

* the **structural audits** (:func:`audit_system` and the individual
  ``audit_*`` functions) verify the state the protocol leaves behind:
  exact duplicate-tag mirroring, L1/L2 non-inclusion, TSRF leaks, and
  home-directory/on-chip cross-consistency.  The continuous-safe subset
  runs mid-simulation (:meth:`~repro.core.system.PiranhaSystem.
  enable_continuous_audit`); the full set runs at quiesce.

* every checker hook feeds the bounded
  :class:`~repro.core.trace.ProtocolTrace`; any
  :class:`CoherenceViolation` raised with a trace attached carries the
  last events for the violating line, so a protocol bug is replayable
  instead of opaque.

Tests and the harness run simulations with the checker attached and call
:func:`audit_system` at the end; the CLI exposes the same path via
``repro run --check`` (see DESIGN.md, "Protocol sanitizer").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .messages import MESI
from .trace import ProtocolTrace


class CoherenceViolation(AssertionError):
    """A protocol invariant was broken."""


Holder = Tuple[int, int]  # (node, cache_id)


@dataclass
class LineAudit:
    holders: Dict[Holder, MESI] = field(default_factory=dict)
    committed_version: int = 0
    #: holders invalidated-in-flight by an eager exclusive grant
    stale: Set[Holder] = field(default_factory=set)


class CoherenceChecker:
    """Audits fills/invalidations across every node of a system.

    Pass a :class:`~repro.core.trace.ProtocolTrace` to capture the event
    history that accompanies any violation; ``CoherenceChecker.with_trace()``
    builds the pair in one call.
    """

    def __init__(self, trace: Optional[ProtocolTrace] = None) -> None:
        self.lines: Dict[int, LineAudit] = {}
        self.fills = 0
        self.invalidations = 0
        self.downgrades = 0
        self.trace = trace

    @classmethod
    def with_trace(cls, capacity: int = 0) -> "CoherenceChecker":
        """Checker plus an attached trace (default ring capacity)."""
        trace = ProtocolTrace(capacity) if capacity else ProtocolTrace()
        return cls(trace=trace)

    def _audit(self, line: int) -> LineAudit:
        audit = self.lines.get(line)
        if audit is None:
            audit = LineAudit()
            self.lines[line] = audit
        return audit

    def violation(self, message: str, line: Optional[int] = None) -> None:
        """Raise a :class:`CoherenceViolation`, attaching the trace history
        for *line* (when a trace is recording)."""
        raise CoherenceViolation(decorate_violation(message, self.trace, line))

    def on_fill(self, node: int, cache_id: int, line: int, state: MESI,
                version: int) -> None:
        """Audit one cache fill against the invariants."""
        self.fills += 1
        if self.trace is not None:
            self.trace.record("fill", node, line,
                              f"cache={cache_id} {state.name} v{version}")
        audit = self._audit(line)
        holder = (node, cache_id)
        if holder in audit.stale:
            # A refill can legitimately race ahead of the invalidation that
            # made the copy stale (unordered network); the fresh fill must
            # carry the newer epoch, and the late invalidation is epoch-
            # filtered at the receiving bank.
            if version < audit.committed_version:
                self.violation(
                    f"line {line:#x}: {holder} refilled a stale copy with "
                    f"an old version {version} < {audit.committed_version}",
                    line,
                )
            audit.stale.discard(holder)
        if version < audit.committed_version and state in (MESI.MODIFIED,):
            self.violation(
                f"line {line:#x}: exclusive fill with regressed version "
                f"{version} < {audit.committed_version}", line,
            )
        if state in (MESI.EXCLUSIVE, MESI.MODIFIED):
            for other, other_state in list(audit.holders.items()):
                if other == holder:
                    continue
                if other[0] == node:
                    self.violation(
                        f"line {line:#x}: node {node} granted "
                        f"{state.name} while {other} still holds "
                        f"{other_state.name} on the same node", line,
                    )
                # Cross-node survivors are the eager-reply transient; they
                # must die before quiesce.
                audit.stale.add(other)
                del audit.holders[other]
            audit.committed_version = max(audit.committed_version, version)
        audit.holders[holder] = state

    def on_downgrade(self, node: int, cache_id: int, line: int) -> None:
        """An exclusive/modified holder dropped to SHARED."""
        self.downgrades += 1
        if self.trace is not None:
            self.trace.record("downgrade", node, line, f"cache={cache_id}")
        audit = self.lines.get(line)
        if audit is None:
            return
        holder = (node, cache_id)
        if holder in audit.holders:
            audit.holders[holder] = MESI.SHARED

    def on_invalidate(self, node: int, cache_id: int, line: int) -> None:
        """A holder's copy was invalidated (or silently evicted)."""
        self.invalidations += 1
        if self.trace is not None:
            self.trace.record("inval", node, line, f"cache={cache_id}")
        audit = self.lines.get(line)
        if audit is None:
            return
        holder = (node, cache_id)
        audit.holders.pop(holder, None)
        audit.stale.discard(holder)

    def verify_quiesced(self) -> None:
        """Assert end-state invariants once the simulation has drained."""
        for line, audit in self.lines.items():
            if audit.stale:
                self.violation(
                    f"line {line:#x}: stale copies never invalidated: "
                    f"{sorted(audit.stale)}", line,
                )
            exclusive = [
                h for h, s in audit.holders.items()
                if s in (MESI.EXCLUSIVE, MESI.MODIFIED)
            ]
            if len(exclusive) > 1:
                self.violation(
                    f"line {line:#x}: multiple exclusive holders "
                    f"{exclusive}", line,
                )
            if exclusive and len(audit.holders) > 1:
                others = set(audit.holders) - set(exclusive)
                self.violation(
                    f"line {line:#x}: exclusive holder {exclusive[0]} "
                    f"coexists with {sorted(others)}", line,
                )

    # -- checkpoint/restore ------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Per-line audit records, counters, and the attached trace."""
        return dict(self.__dict__)

    def load_state(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    def __getstate__(self) -> Dict[str, object]:
        return self.state_dict()

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.load_state(state)

    def telemetry(self) -> Dict[str, float]:
        """Deterministic checker counters (for ``RunResult.extras``)."""
        out = {
            "checker_fills": float(self.fills),
            "checker_invalidations": float(self.invalidations),
            "checker_downgrades": float(self.downgrades),
            "checker_lines": float(len(self.lines)),
        }
        if self.trace is not None:
            out["trace_events"] = float(self.trace.recorded)
        return out


def decorate_violation(message: str, trace: Optional[ProtocolTrace],
                       line: Optional[int] = None) -> str:
    """Append the bounded trace history for *line* to a violation message."""
    if trace is None:
        return message
    dump = trace.dump(line=line, header="violation trace")
    return f"{message}\n{dump}"


# ---------------------------------------------------------------------------
# Structural audits (the sanitizer's quiesce / continuous audit set)
# ---------------------------------------------------------------------------


def _trace_of(system) -> Optional[ProtocolTrace]:
    checker = getattr(system, "checker", None)
    return checker.trace if checker is not None else None


def audit_duplicate_tags(system) -> int:
    """Run every node's exact duplicate-tag mirror audit (§2.3).

    Divergence raises :class:`CoherenceViolation` with the violating
    line's trace history attached.  Returns the number of nodes audited.
    Continuous-safe: the L1 fill/evict paths update the duplicate tags in
    the same event, so the mirror is exact between events.
    """
    for node in system.nodes:
        try:
            node.audit_duplicate_tags()
        except AssertionError as exc:
            raise CoherenceViolation(
                decorate_violation(str(exc), _trace_of(system))
            ) from None
    return len(system.nodes)


def audit_non_inclusion(system) -> int:
    """L1/L2 non-inclusion invariants (§2.3's clean-exclusive rule).

    In Piranha's non-inclusive design an exclusive/modified L1 copy and
    an L2-resident copy of the same line cannot coexist: the L2 drops its
    copy on every exclusive grant, otherwise a silent E->M upgrade in the
    L1 would leave the L2 serving stale data.  Also checks duplicate-tag
    ownership sanity (the owner is the L2, one of the sharers, or vacant,
    and an L2-owner claim implies an L2-resident line).  Returns the
    number of L2-resident lines inspected.  Continuous-safe.
    """
    trace = _trace_of(system)
    inspected = 0
    for node in system.nodes:
        for bank in node.banks:
            for line in bank.resident_line_addrs():
                inspected += 1
                if bank.inclusive:
                    continue
                entry = bank.dup.entry(line)
                if entry is None:
                    continue
                for sharer, state in entry.states.items():
                    if state in (MESI.EXCLUSIVE, MESI.MODIFIED):
                        raise CoherenceViolation(decorate_violation(
                            f"{node.name}: non-inclusion violated for "
                            f"{line:#x}: L2 bank {bank.bank_idx} holds a "
                            f"copy while L1 cache {sharer} holds "
                            f"{state.name}", trace, line))
            problems = bank.dup.audit_owner_sanity(
                l2_resident=bank.resident_line_set())
            if problems:
                line, why = problems[0]
                raise CoherenceViolation(decorate_violation(
                    f"{node.name}: duplicate-tag ownership broken for "
                    f"{line:#x}: {why}", trace, line))
    return inspected


def audit_tsrf(system, quiesced: bool = True,
               timeout_ps: Optional[int] = None) -> int:
    """TSRF-leak detection (§2.5.1's 16-entry architectural bound).

    At quiesce every entry must have been freed (allocations == frees,
    occupancy 0) and no message may still be parked waiting for an entry.
    Mid-run (``quiesced=False``) an entry older than *timeout_ps* is
    reported as leaked — the software equivalent of the RAS watchdog's
    timed-out-transaction scan.  Returns total TSRF entries inspected.
    """
    trace = _trace_of(system)
    inspected = 0
    now = system.sim.now
    for node in system.nodes:
        for engine in (node.home_engine, node.remote_engine):
            inspected += len(engine.tsrf.entries)
            if quiesced:
                busy = [e for e in engine.tsrf.entries if e.valid]
                if busy:
                    raise CoherenceViolation(decorate_violation(
                        f"{engine.name}: TSRF leak at quiesce: "
                        f"{len(busy)} entries never freed: "
                        f"{[repr(e) for e in busy]}", trace,
                        busy[0].addr))
                if engine.stalled:
                    raise CoherenceViolation(decorate_violation(
                        f"{engine.name}: {len(engine.stalled)} messages "
                        f"still stalled waiting for a TSRF entry at "
                        f"quiesce", trace))
            elif timeout_ps is not None:
                hung = engine.tsrf.timed_out(now, timeout_ps)
                if hung:
                    e = hung[0]
                    raise CoherenceViolation(decorate_violation(
                        f"{engine.name}: TSRF entry {e.index} for "
                        f"{e.addr:#x} has been live {now - e.timer} ps "
                        f"(> {timeout_ps} ps): leaked or hung protocol "
                        f"thread", trace, e.addr))
    if quiesced:
        for node in system.nodes:
            for bank in node.banks:
                leaks = (set(bank.pending) | bank._sharing_wb_due
                         | bank._local_inval_due)
                if leaks:
                    line = sorted(leaks)[0]
                    raise CoherenceViolation(decorate_violation(
                        f"{bank.name}: serialisation state leaked at "
                        f"quiesce for {line:#x} (pending="
                        f"{sorted(bank.pending)}, sharing_wb_due="
                        f"{sorted(bank._sharing_wb_due)}, "
                        f"local_inval_due="
                        f"{sorted(bank._local_inval_due)})", trace, line))
    return inspected


def audit_directory(system) -> int:
    """Home-directory vs. on-chip state cross-consistency (§2.5.2).

    Quiesce-only (mid-flight transactions legitimately leave the
    directory behind the caches).  Verified both ways:

    * **no hidden copies**: every on-chip copy of a remote-home line is
      covered by the home's directory entry (the directory may
      over-approximate — silent clean evictions, coarse vectors — but
      never under-approximate);
    * **exclusive owners exist**: a directory entry naming a remote
      exclusive owner is backed by an actual copy at that node;
    * **write-back buffers drained**: the no-NAK guarantee means every
      buffered write-back has been acked by quiesce.

    Returns the number of (node, line) holdings cross-checked.
    """
    trace = _trace_of(system)
    if system.num_nodes <= 1:
        return 0
    from .directory import DirState

    checked = 0
    holdings: Dict[int, Dict[int, str]] = {}  # node -> line -> evidence
    for node in system.nodes:
        held: Dict[int, str] = {}
        for bank in node.banks:
            for line in bank.wb_buffer:
                raise CoherenceViolation(decorate_violation(
                    f"{node.name}: write-back buffer entry for {line:#x} "
                    f"never acked by the home (no-NAK guarantee broken)",
                    trace, line))
            for line in bank.resident_line_addrs():
                held.setdefault(line, "L2")
            for line, entry in bank.dup.entries.items():
                if entry.sharers:
                    held.setdefault(line, f"L1 sharers {sorted(entry.sharers)}")
        holdings[node.node_id] = held

    for node_id, held in holdings.items():
        for line, evidence in held.items():
            home = system.address_map.home_of(line)
            if home == node_id:
                continue  # home-node copies are covered by on-chip state
            checked += 1
            entry = system.dirstores[home].read(line)
            covered = (node_id in entry.sharers
                       or entry.owner == node_id)
            if not covered:
                raise CoherenceViolation(decorate_violation(
                    f"node{node_id} holds {line:#x} ({evidence}) but home "
                    f"node{home}'s directory entry is {entry.state.name} "
                    f"sharers={sorted(entry.sharers)} — hidden remote copy",
                    trace, line))

    for home_id, store in enumerate(system.dirstores):
        for line, entry in store.items():
            if entry.state != DirState.EXCLUSIVE:
                continue
            checked += 1
            owner_held = holdings.get(entry.owner, {})
            if line not in owner_held:
                raise CoherenceViolation(decorate_violation(
                    f"home node{home_id} directory says node{entry.owner} "
                    f"owns {line:#x} exclusively, but that node holds no "
                    f"copy — lost exclusive owner", trace, line))
    return checked


def audit_system(system, quiesced: bool = True,
                 tsrf_timeout_ps: Optional[int] = None) -> Dict[str, float]:
    """Run the full sanitizer audit set; returns deterministic telemetry.

    This is the single audit entry point shared by the CLI (``repro run
    --check``), the harness (``check_coherence=True``) and the continuous
    mid-run audits, so no caller can silently verify less than another.
    Raises :class:`CoherenceViolation` (with trace history when a trace
    is attached) on the first broken invariant.
    """
    telemetry: Dict[str, float] = {}
    checker = getattr(system, "checker", None)
    if checker is not None:
        if quiesced:
            checker.verify_quiesced()
        telemetry.update(checker.telemetry())
    telemetry["audit_nodes"] = float(audit_duplicate_tags(system))
    telemetry["audit_l2_lines"] = float(audit_non_inclusion(system))
    telemetry["audit_tsrf_entries"] = float(
        audit_tsrf(system, quiesced=quiesced, timeout_ps=tsrf_timeout_ps))
    telemetry["audit_dir_holdings"] = float(
        audit_directory(system) if quiesced else 0)
    telemetry["audit_quiesced"] = 1.0 if quiesced else 0.0
    return telemetry
