"""The home- and remote-engine protocol microprograms (Sections 2.5.1/2.5.3).

These are the actual coherence flows of the inter-node protocol, written in
the symbolic microcode assembly of :mod:`repro.core.microcode`.  The control
flow — which messages are sent, in what order, and where threads block —
lives here; the binding of symbolic SEND/SET/TEST names to node behaviour
lives in :mod:`repro.core.protocol_engine`.

Protocol properties encoded below:

* four request types: read, read-exclusive, exclusive (upgrade) and
  exclusive-without-data (``wh64``);
* clean-exclusive optimisation (read returns an exclusive copy when there
  are no other sharers);
* reply forwarding from a remote owner (3-hop transactions complete
  without an "ownership change" confirmation to the home — the home's
  directory is updated *immediately*);
* eager exclusive replies (ownership granted before invalidations
  complete; acknowledgements are gathered at the requesting node);
* no NAKs and no retries anywhere: forwarded requests are guaranteed
  serviceable (owners keep data valid until the home acks a write-back;
  early-arriving forwards wait on the outstanding request's state);
* cruise-missile invalidates for large sharer sets.

A remote read costs exactly four instructions at the requester's remote
engine — ``SEND, RECEIVE, TEST, LSEND`` — matching the paper's example.
"""

from __future__ import annotations

from typing import Dict

from ..interconnect.packets import PacketType
from .microcode import Assembler, Instr, Op, Program

# ---------------------------------------------------------------------------
# Local message kinds (LRECEIVE dispatch codes and engine entry selectors).
# The 4-bit dispatch field allows 16 kinds per engine.
# ---------------------------------------------------------------------------

LOCAL_MSG = {
    # bank -> remote engine (new transactions)
    "NEW_READ": 0,
    "NEW_READX": 1,        # read-exclusive / upgrade / wh64 (req_type in TSRF)
    "NEW_WB": 2,           # L2 victim write-back to a remote home
    # bank -> engine (responses to LSENDs)
    "BANK_DATA": 3,        # data retrieved for a forwarded request
    "HOME_CLEAN": 4,       # home lookup: no remote owner
    "HOME_DIRTY": 5,       # home lookup: a remote node owns the line dirty
    "BANK_DONE": 6,        # completion of a bank-side action (mem write...)
    # bank -> home engine (local requests that need remote action)
    "NEW_LOCAL_FETCH": 7,  # local read/readx found dir EXCLUSIVE(remote)
    "NEW_LOCAL_INVAL": 8,  # local exclusive grant needs remote invalidations
}

#: External dispatch codes are simply the 4-bit PacketType values.
EXT = PacketType


def _receive(label_map: Dict[int, str], label: str = None) -> Instr:
    return Instr(Op.RECEIVE, label=label, targets=dict(label_map))


def _lreceive(label_map: Dict[int, str], label: str = None) -> Instr:
    return Instr(Op.LRECEIVE, label=label, targets=dict(label_map))


# ---------------------------------------------------------------------------
# Remote engine: imports memory whose home is remote.
# ---------------------------------------------------------------------------

def build_remote_program() -> Program:
    asm = Assembler("remote-engine")
    I = Instr
    code = [
        # ---- read to a remote home: the paper's 4-instruction example ----
        I(Op.SEND, "req_to_home", label="re_read"),
        _receive({
            int(EXT.DATA_REPLY): "re_read_test",
            int(EXT.DATA_EXCLUSIVE_REPLY): "re_read_test",
        }),
        I(Op.TEST, "reply_was_exclusive", label="re_read_test",
          targets={0: "re_read_ls_s", None: "re_read_ls_e"}),
        I(Op.LSEND, "fill_shared", label="re_read_ls_s", next="end"),
        I(Op.LSEND, "fill_exclusive", label="re_read_ls_e", next="end"),

        # ---- read-exclusive / upgrade / wh64 to a remote home ----
        I(Op.SEND, "req_to_home", label="re_readx"),
        _receive({
            int(EXT.DATA_EXCLUSIVE_REPLY): "re_readx_data",
            int(EXT.ACK_REPLY): "re_readx_data",      # upgrade grant, no data
            int(EXT.INVAL_ACK): "re_readx_early_ack",  # ack raced ahead of data
        }, label="re_readx_wait"),
        I(Op.SET, "count_ack", label="re_readx_early_ack", next="re_readx_wait"),
        I(Op.SET, "load_reply_state", label="re_readx_data"),
        I(Op.LSEND, "fill_modified"),            # eager exclusive reply
        I(Op.TEST, "acks_pending", label="re_readx_test",
          targets={0: "re_readx_done", None: "re_gather"}),
        _receive({int(EXT.INVAL_ACK): "re_gather_count"}, label="re_gather"),
        I(Op.SET, "count_ack", label="re_gather_count", next="re_readx_test"),
        I(Op.SET, "acks_complete", label="re_readx_done", next="end"),

        # ---- forwarded read: we own a dirty remote-home line ----
        I(Op.LSEND, "bank_fetch_shared", label="re_fwd_read"),
        _lreceive({LOCAL_MSG["BANK_DATA"]: "re_fwd_read_reply"}),
        I(Op.SEND, "data_reply_to_requester", label="re_fwd_read_reply"),
        I(Op.SEND, "sharing_wb_to_home", next="end"),

        # ---- forwarded read-exclusive ----
        I(Op.LSEND, "bank_fetch_inval", label="re_fwd_readx"),
        _lreceive({LOCAL_MSG["BANK_DATA"]: "re_fwd_readx_reply"}),
        I(Op.SEND, "data_excl_reply_to_requester", label="re_fwd_readx_reply",
          next="end"),

        # ---- plain invalidation of our shared copy ----
        I(Op.LSEND, "bank_invalidate", label="re_inval"),
        _lreceive({LOCAL_MSG["BANK_DONE"]: "re_inval_ack"}),
        I(Op.SEND, "inval_ack_to_requester", label="re_inval_ack", next="end"),

        # ---- cruise-missile invalidation visit ----
        I(Op.LSEND, "bank_invalidate", label="re_cmi"),
        _lreceive({LOCAL_MSG["BANK_DONE"]: "re_cmi_test"}),
        I(Op.TEST, "cmi_more_stops", label="re_cmi_test",
          targets={0: "re_cmi_last", None: "re_cmi_next"}),
        I(Op.SEND, "cmi_to_next", label="re_cmi_next", next="end"),
        I(Op.SEND, "inval_ack_to_requester", label="re_cmi_last", next="end"),

        # ---- L2 victim write-back to a remote home ----
        # The bank keeps the line valid in its write-back buffer until the
        # home acknowledges (NAK-free guarantee).
        I(Op.SEND, "wb_to_home", label="re_wb"),
        _receive({int(EXT.WRITEBACK_ACK): "re_wb_release"}),
        I(Op.LSEND, "release_wb_buffer", label="re_wb_release", next="end"),
    ]
    return asm.assemble(code)


#: entry points: which label a newly allocated RE thread starts at,
#: selected by the triggering message.
REMOTE_ENTRY = {
    ("local", LOCAL_MSG["NEW_READ"]): "re_read",
    ("local", LOCAL_MSG["NEW_READX"]): "re_readx",
    ("local", LOCAL_MSG["NEW_WB"]): "re_wb",
    ("ext", int(EXT.FWD_READ)): "re_fwd_read",
    ("ext", int(EXT.FWD_READ_EXCLUSIVE)): "re_fwd_readx",
    ("ext", int(EXT.INVALIDATE)): "re_inval",
    ("ext", int(EXT.CMI_INVALIDATE)): "re_cmi",
}


# ---------------------------------------------------------------------------
# Home engine: exports memory whose home is the local node.
# ---------------------------------------------------------------------------

def build_home_program() -> Program:
    asm = Assembler("home-engine")
    I = Instr
    code = [
        # ---- remote READ arriving at home ----
        I(Op.LSEND, "bank_home_lookup", label="he_read"),
        _lreceive({
            LOCAL_MSG["HOME_CLEAN"]: "he_read_clean",
            LOCAL_MSG["HOME_DIRTY"]: "he_read_dirty",
        }),
        I(Op.TEST, "no_other_sharers", label="he_read_clean",
          targets={0: "he_read_shared", None: "he_read_excl"}),
        I(Op.SET, "dir_add_sharer", label="he_read_shared"),
        I(Op.SEND, "data_reply"),
        I(Op.LSEND, "dir_write", next="end"),
        I(Op.SET, "dir_make_exclusive", label="he_read_excl"),  # clean-excl opt
        I(Op.SEND, "data_excl_reply"),
        I(Op.LSEND, "dir_write", next="end"),
        # 3-hop: directory state changes immediately; no confirmation ever
        # comes back (this is the no-"ownership change" property).
        I(Op.SET, "dir_share_with_owner", label="he_read_dirty"),
        I(Op.SEND, "fwd_read_to_owner"),
        I(Op.LSEND, "dir_write", next="end"),

        # ---- remote READ-EXCLUSIVE / EXCLUSIVE / wh64 arriving at home ----
        I(Op.LSEND, "bank_home_lookup_x", label="he_readx"),
        _lreceive({
            LOCAL_MSG["HOME_CLEAN"]: "he_readx_clean",
            LOCAL_MSG["HOME_DIRTY"]: "he_readx_dirty",
        }),
        I(Op.TEST, "has_remote_sharers", label="he_readx_clean",
          targets={0: "he_readx_grant", None: "he_readx_invals"}),
        I(Op.SET, "dir_make_exclusive", label="he_readx_grant"),
        I(Op.SEND, "data_excl_reply"),
        I(Op.LSEND, "dir_write", next="end"),
        I(Op.TEST, "use_cmi", label="he_readx_invals",
          targets={0: "he_inval_loop", None: "he_cmi_plan"}),
        I(Op.SET, "next_sharer", label="he_inval_loop"),
        I(Op.SEND, "inval_to_sharer"),
        I(Op.TEST, "more_sharers",
          targets={0: "he_readx_grant_acks", None: "he_inval_loop"}),
        I(Op.SET, "plan_cmi", label="he_cmi_plan"),
        I(Op.SET, "next_missile", label="he_cmi_loop"),
        I(Op.SEND, "cmi_launch"),
        I(Op.TEST, "more_missiles",
          targets={0: "he_readx_grant_acks", None: "he_cmi_loop"}),
        # eager exclusive reply: data + inval count; the *requester*
        # gathers the acknowledgements.
        I(Op.SET, "dir_make_exclusive", label="he_readx_grant_acks"),
        I(Op.SEND, "data_excl_reply"),
        I(Op.LSEND, "dir_write", next="end"),
        I(Op.SET, "dir_make_exclusive", label="he_readx_dirty"),
        I(Op.SEND, "fwd_readx_to_owner"),
        I(Op.LSEND, "dir_write", next="end"),

        # ---- write-back from a remote owner.  A *sharing* write-back
        #      (data sent home by a forwarded read's owner) needs neither a
        #      directory update nor an ack: the directory changed when the
        #      home forwarded the request.  It *does* release the home
        #      bank's serialisation hold — requests for the line queued at
        #      the home while the data was in flight resume now, reading a
        #      fresh memory image instead of the stale pre-forward one. ----
        I(Op.LSEND, "bank_mem_write", label="he_wb"),
        _lreceive({LOCAL_MSG["BANK_DONE"]: "he_wb_test"}),
        I(Op.TEST, "is_sharing_wb", label="he_wb_test",
          targets={0: "he_wb_ack", None: "he_sharing_done"}),
        I(Op.SET, "dir_clear", label="he_wb_ack"),
        I(Op.SEND, "wb_ack"),
        I(Op.LSEND, "dir_write", next="end"),
        I(Op.LSEND, "sharing_wb_done", label="he_sharing_done", next="end"),

        # ---- local request found the directory EXCLUSIVE(remote):
        #      3-hop fetch on behalf of a local CPU ----
        I(Op.SET, "dir_share_with_owner", label="he_local_fetch"),
        I(Op.SEND, "fwd_read_to_owner"),
        I(Op.LSEND, "dir_write"),
        _receive({
            int(EXT.DATA_REPLY): "he_local_fill",
            int(EXT.DATA_EXCLUSIVE_REPLY): "he_local_fill",
        }),
        I(Op.LSEND, "fill_local", label="he_local_fill", next="end"),

        # ---- local exclusive grant needs remote invalidations; the grant
        #      itself was eager (bank already completed the fill), this
        #      thread drives invals and gathers the acks ----
        # The remote-sharer hint can be stale (the sharers were invalidated
        # by an interleaved transaction): re-check against the directory.
        I(Op.TEST, "has_remote_sharers", label="he_local_inval",
          targets={0: "he_li_dirw", None: "he_li_kinds"}),
        I(Op.TEST, "use_cmi", label="he_li_kinds",
          targets={0: "he_li_loop", None: "he_li_cmi_plan"}),
        I(Op.SET, "next_sharer", label="he_li_loop"),
        I(Op.SEND, "inval_to_sharer"),
        I(Op.TEST, "more_sharers",
          targets={0: "he_li_dirw", None: "he_li_loop"}),
        I(Op.SET, "plan_cmi", label="he_li_cmi_plan"),
        I(Op.SET, "next_missile", label="he_li_cmi_loop"),
        I(Op.SEND, "cmi_launch"),
        I(Op.TEST, "more_missiles",
          targets={0: "he_li_dirw", None: "he_li_cmi_loop"}),
        I(Op.SET, "dir_make_exclusive_local", label="he_li_dirw"),
        I(Op.LSEND, "dir_write"),
        # The directory is consistent again: release the home bank's
        # serialisation hold before parking to gather acks.
        I(Op.LSEND, "local_inval_done"),
        I(Op.TEST, "acks_pending", label="he_li_test",
          targets={0: "he_li_done", None: "he_li_gather"}),
        _receive({int(EXT.INVAL_ACK): "he_li_count"}, label="he_li_gather"),
        I(Op.SET, "count_ack", label="he_li_count", next="he_li_test"),
        I(Op.SET, "acks_complete", label="he_li_done", next="end"),
    ]
    return asm.assemble(code)


HOME_ENTRY = {
    ("ext", int(EXT.READ)): "he_read",
    ("ext", int(EXT.READ_EXCLUSIVE)): "he_readx",
    ("ext", int(EXT.EXCLUSIVE)): "he_readx",
    ("ext", int(EXT.EXCLUSIVE_NO_DATA)): "he_readx",
    ("ext", int(EXT.WRITEBACK)): "he_wb",
    ("local", LOCAL_MSG["NEW_LOCAL_FETCH"]): "he_local_fetch",
    ("local", LOCAL_MSG["NEW_LOCAL_INVAL"]): "he_local_inval",
}
