"""Shared second-level cache bank and intra-chip coherence (Section 2.3).

Piranha's 1 MB L2 is physically partitioned into eight banks interleaved on
the low-order line-address bits, each with its own controller, duplicate L1
tag store, and private memory controller.  The controllers are the
serialisation point for intra-chip coherence: on every access the L2 tags
and the duplicate L1 tags are checked in parallel, giving the controller
complete and exact information about all on-chip copies of the lines that
map to it — a full-map, centralised, directory-style scheme.

Non-inclusion ("victim cache" behaviour) is the headline policy:

* L1 misses that also miss in the L2 are filled **directly from memory
  without allocating in the L2**;
* the L2 is filled only by L1 replacements — even *clean* L1 victims are
  written back when their L1 holds the line's **ownership**;
* ownership lives in the duplicate tags: the owner is the L2 (valid copy),
  an exclusive L1, or one of the sharing L1s (the last requester), and
  only the owner's replacement triggers a write-back, giving near-optimal
  replacement without extra tag-lookup cycles on the L2 hit path.

Replacement within an L2 set is least-recently-*loaded* (round-robin) when
no invalid way exists — note: not least-recently-used; hits do not refresh
a line's replacement age.

For multi-node systems the bank cooperates with the protocol engines: it
partially interprets directory information (cached "remote mode" hints) to
avoid engine involvement for the majority of local requests, keeps a
pending entry per in-flight line to block conflicting requests, and keeps
written-back lines valid in a write-back buffer until the home acks (the
protocol's no-NAK guarantee).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..mem.addr import LINE_SHIFT, line_addr
from ..sim.engine import Component, Simulator, ns
from .config import ChipConfig
from .directory import DirectoryEntry, DirState
from .dup_tags import L2_OWNER, DuplicateTags
from .l1 import Eviction, L1Cache
from .messages import (
    MESI,
    AccessKind,
    CacheId,
    MemRequest,
    ReplySource,
    RequestType,
)


@dataclass
class L2Line:
    """One L2-resident line."""

    tag: int
    dirty: bool = False
    version: int = 0


@dataclass
class PendingEntry:
    """In-flight transaction for one line; conflicting requests queue here
    (Section 2.3: 'the L2 keeps a request pending entry which is used to
    block conflicting requests for the duration of the original
    transaction')."""

    line: int
    waiters: deque = field(default_factory=deque)
    #: forwarded requests that arrived before our own data (the
    #: early-forward race of Section 2.5.3) park here, as
    #: (invalidate, callback, probe-or-None) triples
    deferred_fetches: List[Tuple[bool, Callable, object]] = field(
        default_factory=list)
    #: deferred home-engine lookups (home-side serialisation)
    deferred_lookups: List[Callable] = field(default_factory=list)


class L2Bank(Component):
    """One of the eight L2 banks plus its controller."""

    def __init__(self, sim: Simulator, name: str, chip, bank_idx: int,
                 config: ChipConfig) -> None:
        super().__init__(sim, name)
        self.chip = chip
        self.bank_idx = bank_idx
        self.config = config
        p = config.l2
        #: ablation switch: True enforces a conventional inclusive L2
        #: (fills allocate in the L2; an L2 eviction invalidates the L1
        #: copies).  Piranha's design point is False (Section 2.3).
        self.inclusive = p.inclusive
        self.assoc = p.assoc
        self.num_sets = p.sets_per_bank
        self._set_mask = self.num_sets - 1
        self._bank_mask = p.banks - 1
        self._bank_shift = LINE_SHIFT
        self._nbank_bits = self._bank_mask.bit_length()
        # Per-set OrderedDict tag -> L2Line in *load* order (replacement is
        # least-recently-loaded; lookups do not reorder).
        self.sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.dup = DuplicateTags(bank_idx)
        self.pending: Dict[int, PendingEntry] = {}
        self.pending_limit = p.pending_entries
        self.overflow: deque = deque()  # requests stalled on a full pending table
        #: write-back buffer: line -> version (valid until home acks)
        self.wb_buffer: Dict[int, int] = {}
        #: lines whose pending entry is held by a home-engine transaction
        self._engine_holds: Set[int] = set()
        #: home-side lines whose freshest data is in flight (a sharing
        #: write-back from the old owner): the pending hold must not be
        #: released until the write-back lands, or a subsequent request
        #: would be served from the stale memory image
        self._sharing_wb_due: Set[int] = set()
        #: home-side lines with an eager local exclusive grant whose
        #: background invalidation campaign has not written the directory
        #: yet: a grant interleaved before that write would be clobbered
        #: by the campaign's stale directory update
        self._local_inval_due: Set[int] = set()
        #: partial directory interpretation (Section 2.3):
        #: - our privilege on cached remote-home lines ('S' or 'E')
        self.our_mode: Dict[int, str] = {}
        #: - "remote sharers exist" hint for on-chip local-home lines
        self.remote_cached: Set[int] = set()

        lat = config.lat
        self.t_tag = ns(lat.l2_tag)
        self.t_data = ns(lat.l2_data)
        self.t_owner = ns(lat.owner_l1)
        self.t_ics = ns(lat.ics)

        s = self.stats
        self.c_requests = s.counter("requests")
        self.c_hits = s.counter("l2_hits")
        self.c_fwds = s.counter("l2_fwds")
        self.c_local_mem = s.counter("local_mem")
        self.c_remote_mem = s.counter("remote_mem")
        self.c_remote_dirty = s.counter("remote_dirty")
        self.c_upgrades = s.counter("upgrade_grants")
        self.c_l1_wb_owner = s.counter("l1_owner_writebacks")
        self.c_l1_evict_clean = s.counter("l1_nonowner_evictions")
        self.c_l2_evictions = s.counter("l2_evictions")
        self.c_l2_dirty_evictions = s.counter("l2_dirty_evictions")
        self.c_conflicts = s.counter("pending_conflicts")
        self.c_wh64_data_avoided = s.counter("wh64_data_fetch_avoided")

    # -- geometry ----------------------------------------------------------

    def _set_of(self, line: int) -> int:
        return ((line >> LINE_SHIFT) >> self._nbank_bits) & self._set_mask

    def _bank_bits(self) -> int:
        return self._nbank_bits

    def _l2_line(self, line: int) -> Optional[L2Line]:
        return self.sets[self._set_of(line)].get(line >> LINE_SHIFT)

    # -----------------------------------------------------------------------
    # CPU/L1 request path (arrives here after L1-miss-detect + ICS charge)
    # -----------------------------------------------------------------------

    def request(self, req: MemRequest, reqtype: RequestType) -> None:
        """Handle one L1 miss / upgrade for a line mapping to this bank."""
        line = line_addr(req.addr)
        self.c_requests.inc()
        if req.probe is not None:
            # re-stamped on every arrival, so conflict-serialisation wait
            # (pending-entry queueing) is attributed to the bank hop
            req.probe.stamp("bank", self.now)
        entry = self.pending.get(line)
        if entry is not None:
            self.c_conflicts.inc()
            entry.waiters.append((req, reqtype))
            return
        if len(self.pending) >= self.pending_limit:
            self.overflow.append((req, reqtype))
            return
        self.pending[line] = PendingEntry(line)
        # The L2 tag and duplicate L1 tag lookup happen in parallel.
        self.schedule(self.t_tag, self._after_tag_lookup, req, reqtype, line)

    def _after_tag_lookup(self, req: MemRequest, reqtype: RequestType,
                          line: int) -> None:
        if req.probe is not None:
            req.probe.stamp("l2_tag", self.now)
        cache_id = CacheId.encode(req.cpu_id, req.is_instr)
        l1_owner = self.dup.l1_owner(line)
        if l1_owner is not None and l1_owner != cache_id:
            self._serve_fwd(req, reqtype, line, l1_owner)
            return
        if cache_id in self.dup.sharers(line):
            # The requester's own L1 already holds the line — a non-blocking
            # core can have queued this request behind an earlier miss to
            # the same line that has since filled.
            own = self.chip.l1_by_id(cache_id).peek(line)
            if own is not None:
                if reqtype == RequestType.READ:
                    # Complete from the local copy (hit-equivalent).
                    self.schedule(self.t_ics, self._fill, req, line,
                                  own.state, own.owner, own.version,
                                  own.dirty, ReplySource.L2_HIT)
                    return
                # Exclusive-class requests become upgrades — exactly what
                # the protocol's dedicated 'exclusive' request type is for.
                self._serve_upgrade(req, line, cache_id)
                return
        l2line = self._l2_line(line)
        if l2line is not None:
            self._serve_l2_hit(req, reqtype, line, l2line)
            return
        # A line in the write-back buffer is NOT served locally: the buffer
        # exists solely to satisfy *forwarded* requests until the home acks
        # (no-NAK guarantee).  A local re-reference goes back to the home,
        # which orders it against the in-flight write-back.
        if reqtype == RequestType.EXCLUSIVE:
            # The S copy vanished between the L1 lookup and now (conflict
            # resolution); fall back to a full read-exclusive.
            reqtype = RequestType.READ_EXCLUSIVE
        self._serve_miss(req, reqtype, line)

    # -- on-chip service paths ---------------------------------------------

    def _serve_upgrade(self, req: MemRequest, line: int, cache_id: int) -> None:
        """Exclusive-upgrade grant to a CPU that already holds the line:
        a control-only reply (no data crosses the ICS)."""
        delay = self.t_ics  # grant message back to the L1
        self.schedule(delay, self._finish_upgrade, req, line, cache_id)

    def _finish_upgrade(self, req: MemRequest, line: int, cache_id: int) -> None:
        own_line = self.chip.l1_by_id(cache_id).peek(line)
        if own_line is None:
            # The requester's copy was invalidated between the duplicate-
            # tag lookup and the grant (a racing exclusive swept it): the
            # upgrade degenerates into a full read-exclusive.
            self._serve_miss(req, RequestType.READ_EXCLUSIVE, line)
            return
        if self._must_wait_for_home(line):
            self._launch_remote_request(req, RequestType.EXCLUSIVE, line)
            return
        self.c_upgrades.inc()
        version = own_line.version
        self._fill(req, line, MESI.MODIFIED, owner=True, version=version + 1,
                   dirty=True, source=ReplySource.L2_HIT)
        self._invalidate_remote_sharers_if_home(line, version + 1, req.cpu_id)

    def _serve_fwd(self, req: MemRequest, reqtype: RequestType, line: int,
                   owner_id: int) -> None:
        """Another on-chip L1 owns the line: forward and serve L1-to-L1."""
        delay = self.t_ics + self.t_owner + self.t_ics
        if req.probe is not None:
            req.probe.stamp("fwd_owner", self.now + self.t_ics + self.t_owner)
        self.schedule(delay, self._finish_fwd, req, reqtype, line, owner_id)

    def _finish_fwd(self, req: MemRequest, reqtype: RequestType, line: int,
                    owner_id: int) -> None:
        owner_l1 = self.chip.l1_by_id(owner_id)
        owner_line = owner_l1.peek(line)
        if owner_line is None:
            # Owner evicted while we were in flight (its eviction is queued
            # behind our pending entry only for *its* bank); retry the tag
            # lookup — the dup tags have been updated meanwhile.
            self.schedule(self.t_tag, self._after_tag_lookup, req, reqtype, line)
            return
        self.c_fwds.inc()
        version = owner_line.version
        dirty = owner_line.dirty
        if reqtype == RequestType.READ:
            owner_l1.downgrade(line)
            owner_l1.set_owner(line, False)
            if self.chip.checker is not None:
                self.chip.checker.on_downgrade(self.chip.node_id, owner_id, line)
            # dirtiness travels with ownership
            owner_line.dirty = False
            self.dup.set_state(line, owner_id, MESI.SHARED)
            e = self.dup.entry(line)
            if e is not None:
                e.owner = None
            self._fill(req, line, MESI.SHARED, owner=True, version=version,
                       dirty=dirty, source=ReplySource.L2_FWD)
        else:
            if self._must_wait_for_home(line):
                self._launch_remote_request(req, RequestType.EXCLUSIVE, line)
                return
            self._fill(req, line, MESI.MODIFIED, owner=True,
                       version=version + 1, dirty=True,
                       source=ReplySource.L2_FWD)
            self._invalidate_remote_sharers_if_home(line, version + 1, req.cpu_id)

    def _serve_l2_hit(self, req: MemRequest, reqtype: RequestType, line: int,
                      l2line: L2Line) -> None:
        delay = self.t_data + self.t_ics
        if req.probe is not None:
            # the whole delay is charged in one event, so stamp the data
            # array completion at its computed (future) time
            req.probe.stamp("l2_data", self.now + self.t_data)
        self.schedule(delay, self._finish_l2_hit, req, reqtype, line, l2line)

    def _finish_l2_hit(self, req: MemRequest, reqtype: RequestType, line: int,
                       l2line: L2Line) -> None:
        self.c_hits.inc()
        version = l2line.version
        sharers = self.dup.sharers(line)
        cache_id = CacheId.encode(req.cpu_id, req.is_instr)
        others = sharers - {cache_id}
        if reqtype == RequestType.READ:
            can_be_exclusive = (
                not others
                and line not in self.remote_cached
                and self.our_mode.get(line) != "S"
            )
            if can_be_exclusive:
                # Clean-exclusive optimisation: hand the only copy to the
                # L1; the L2 copy is invalidated so a silent E->M upgrade
                # cannot leave it stale.  (Inclusive mode keeps the copy;
                # the duplicate-tag owner pointer covers staleness.)
                if not self.inclusive:
                    self._drop_l2_copy(line, l2line)
                self._fill(req, line, MESI.EXCLUSIVE, owner=True,
                           version=version, dirty=l2line.dirty,
                           source=ReplySource.L2_HIT)
            else:
                self.dup.set_l2_owner(line)
                self._fill(req, line, MESI.SHARED, owner=False,
                           version=version, dirty=False,
                           source=ReplySource.L2_HIT)
        else:
            if self._must_wait_for_home(line):
                self._launch_remote_request(req, RequestType.EXCLUSIVE, line)
                return
            self._fill(req, line, MESI.MODIFIED, owner=True,
                       version=version + 1, dirty=True,
                       source=ReplySource.L2_HIT)
            self._invalidate_remote_sharers_if_home(line, version + 1, req.cpu_id)

    # -- miss path -----------------------------------------------------------

    def _serve_miss(self, req: MemRequest, reqtype: RequestType, line: int) -> None:
        if self.chip.is_home(line):
            mc = self.chip.mc_for_bank(self.bank_idx)
            wants_data = reqtype != RequestType.EXCLUSIVE_NO_DATA
            if not wants_data and self.chip.num_nodes == 1:
                # Single node: no directory exists; grant straight away.
                self.c_wh64_data_avoided.inc()
                self.schedule(self.t_ics, self._finish_local_mem, req, reqtype,
                              line, 0, True)
                return
            if not wants_data:
                self.c_wh64_data_avoided.inc()
            res = mc.read_line(line, probe=req.probe)  # data + in-ECC directory
            self.schedule(res.critical_word_ps + self.t_ics,
                          self._finish_local_mem, req, reqtype, line,
                          res.critical_word_ps, False)
        else:
            self._launch_remote_request(req, reqtype, line)

    def _finish_local_mem(self, req: MemRequest, reqtype: RequestType,
                          line: int, mem_ps: int, skipped_dir: bool) -> None:
        if self.chip.num_nodes == 1 or skipped_dir:
            direntry = DirectoryEntry.uncached()
        else:
            direntry = self.chip.dirstore.read(line)
        version = self.chip.mem_version(line)
        if reqtype == RequestType.READ:
            if direntry.state == DirState.EXCLUSIVE:
                # 3-hop: a remote node owns the line dirty.
                self._hand_to_home_engine_fetch(req, reqtype, line, direntry)
                return
            self.c_local_mem.inc()
            if direntry.state == DirState.UNCACHED:
                self._fill(req, line, MESI.EXCLUSIVE, owner=True,
                           version=version, dirty=False,
                           source=ReplySource.LOCAL_MEM)
            else:
                self.remote_cached.add(line)
                self._fill(req, line, MESI.SHARED, owner=True,
                           version=version, dirty=False,
                           source=ReplySource.LOCAL_MEM)
        else:
            if direntry.state == DirState.EXCLUSIVE:
                self._hand_to_home_engine_fetch(req, reqtype, line, direntry)
                return
            self.c_local_mem.inc()
            needs_invals = direntry.state in (DirState.SHARED, DirState.SHARED_COARSE)
            if needs_invals:
                # The background campaign below must write the directory
                # before any other home-side transaction for the line runs
                # (its sharer snapshot is only valid under serialisation).
                self._local_inval_due.add(line)
            self._fill(req, line, MESI.MODIFIED, owner=True,
                       version=version + 1, dirty=True,
                       source=ReplySource.LOCAL_MEM)
            if needs_invals:
                # Eager exclusive grant; the home engine drives the remote
                # invalidations and gathers the acks in the background.
                # (no probe: the campaign runs after the eager grant
                # completed the miss, off its critical path)
                self.chip.home_engine.deliver_local(
                    "NEW_LOCAL_INVAL", line,
                    req_node=self.chip.node_id, is_local=True,
                    sharers=sorted(direntry.sharers - {self.chip.node_id}),
                    dir_entry=direntry, req_cpu=req.cpu_id,
                    version=version,  # epoch: sharers hold <= this version
                )

    def _hand_to_home_engine_fetch(self, req: MemRequest, reqtype: RequestType,
                                   line: int, direntry: DirectoryEntry) -> None:
        """Local request, directory says a remote node owns the line dirty:
        the home engine forwards on our behalf (3-hop)."""
        exclusive = reqtype != RequestType.READ

        def on_fill(version: int, state: MESI) -> None:
            self.c_remote_dirty.inc()
            if exclusive:
                self._fill(req, line, MESI.MODIFIED, owner=True,
                           version=version + 1, dirty=True,
                           source=ReplySource.REMOTE_DIRTY)
            else:
                self.remote_cached.add(line)
                self._fill(req, line, MESI.SHARED, owner=True,
                           version=version, dirty=False,
                           source=ReplySource.REMOTE_DIRTY)

        self.chip.home_engine.deliver_local(
            "NEW_LOCAL_FETCH", line,
            req_node=self.chip.node_id, is_local=True, owner=direntry.owner,
            fetch_excl=exclusive, dir_entry=direntry, on_fill=on_fill,
            req_cpu=req.cpu_id, probe=req.probe,
        )

    # -- remote home ----------------------------------------------------------

    def _launch_remote_request(self, req: MemRequest, reqtype: RequestType,
                               line: int) -> None:
        from ..interconnect.packets import PacketType

        ptype = {
            RequestType.READ: PacketType.READ,
            RequestType.READ_EXCLUSIVE: PacketType.READ_EXCLUSIVE,
            RequestType.EXCLUSIVE: PacketType.EXCLUSIVE,
            RequestType.EXCLUSIVE_NO_DATA: PacketType.EXCLUSIVE_NO_DATA,
        }[reqtype]

        def on_fill(state: str, version: int, three_hop: bool) -> None:
            if state == "S":
                self.our_mode[line] = "S"
                src = (ReplySource.REMOTE_DIRTY if three_hop
                       else ReplySource.REMOTE_MEM)
                (self.c_remote_dirty if three_hop else self.c_remote_mem).inc()
                self._fill(req, line, MESI.SHARED, owner=True,
                           version=version, dirty=False, source=src)
            elif state == "E":
                self.our_mode[line] = "E"
                self.c_remote_mem.inc()
                self._fill(req, line, MESI.EXCLUSIVE, owner=True,
                           version=version, dirty=False,
                           source=ReplySource.REMOTE_MEM)
            else:  # "M"
                self.our_mode[line] = "E"
                src = (ReplySource.REMOTE_DIRTY if three_hop
                       else ReplySource.REMOTE_MEM)
                (self.c_remote_dirty if three_hop else self.c_remote_mem).inc()
                if reqtype == RequestType.EXCLUSIVE:
                    # An upgrade grant carries no data: the write builds on
                    # our own cached copy, which may be fresher than the
                    # home's version token.
                    version = max(version, self._onchip_version(line))
                self._fill(req, line, MESI.MODIFIED, owner=True,
                           version=version + 1, dirty=True, source=src)

        kind = "NEW_READ" if reqtype == RequestType.READ else "NEW_READX"
        self.chip.remote_engine.deliver_local(
            kind, line, req_ptype=ptype, on_fill=on_fill,
            req_node=self.chip.node_id, req_cpu=req.cpu_id, probe=req.probe,
        )

    def _must_wait_for_home(self, line: int) -> bool:
        """A remote-home line held only SHARED cannot be upgraded locally:
        the exclusive grant must come from the home, which serialises all
        writers.  (The paper's *eager exclusive replies* are about granting
        before invalidation acks return — the grant itself always flows
        through the home.)"""
        if self.chip.num_nodes == 1 or self.chip.is_home(line):
            return False
        return self.our_mode.get(line) == "S"

    def _invalidate_remote_sharers_if_home(self, line: int,
                                           granted_version: int,
                                           req_cpu: int = 0) -> None:
        """Home-local eager exclusive grant: drive the remote invalidations
        through the home engine (which re-reads the directory and gathers
        the acks).  Sound because the bank's pending entry serialises this
        line at the home for the duration of the grant."""
        if self.chip.num_nodes == 1 or not self.chip.is_home(line):
            return
        if line not in self.remote_cached:
            return
        self.remote_cached.discard(line)
        # Hold the line at the home until the campaign's directory write:
        # an interleaved grant would otherwise be clobbered by it.  The
        # grant's own pending entry has already resolved, so re-create one
        # to carry the hold.
        self._local_inval_due.add(line)
        if line not in self.pending:
            self.pending[line] = PendingEntry(line)
        self.chip.home_engine.deliver_local(
            "NEW_LOCAL_INVAL", line,
            req_node=self.chip.node_id, is_local=True,
            sharers=None, dir_entry=None, req_cpu=req_cpu,
            version=granted_version - 1,  # epoch: kill copies <= pre-grant
        )

    # -----------------------------------------------------------------------
    # Fill + completion
    # -----------------------------------------------------------------------

    def _allocate_if_inclusive(self, line: int, version: int) -> None:
        """Inclusive-mode ablation: memory fills also allocate in the L2
        (exactly what Piranha's no-inclusion policy avoids)."""
        if self.inclusive:
            self._victim_fill(line, version, dirty=False)

    def _fill(self, req: MemRequest, line: int, state: MESI, owner: bool,
              version: int, dirty: bool, source: ReplySource) -> None:
        if source in (ReplySource.LOCAL_MEM, ReplySource.REMOTE_MEM,
                      ReplySource.REMOTE_DIRTY):
            self._allocate_if_inclusive(line, version)
        cache_id_req = CacheId.encode(req.cpu_id, req.is_instr)
        if state in (MESI.EXCLUSIVE, MESI.MODIFIED):
            # Single-writer invariant: an exclusive grant sweeps every
            # other on-chip copy (ICS ordering makes this ack-free).
            self._invalidate_on_chip(line, except_cache=cache_id_req)
            if not self.inclusive:
                self._drop_l2_copy(line, self._l2_line(line))
            # (inclusive mode keeps the L2 copy at its old version; the
            # dup tags' owner pointer routes reads to the fresh L1 copy,
            # and eviction recovers the freshest version from the L1s)
        l1 = self.chip.l1_of(req.cpu_id, req.is_instr)
        evicted = l1.fill(line, state, owner=owner, version=version, dirty=dirty)
        cache_id = CacheId.encode(req.cpu_id, req.is_instr)
        self.dup.add_sharer(line, cache_id, state, make_owner=owner)
        if self.chip.checker is not None:
            self.chip.checker.on_fill(self.chip.node_id, cache_id, line,
                                      state, version)
        if req.probe is not None:
            req.probe.stamp("fill", self.now)
        req.complete(self.now, source)
        if evicted is not None:
            self.chip.route_l1_eviction(cache_id, evicted)
        self._resolve_pending(line)

    def _resolve_pending(self, line: int) -> None:
        if line in self._sharing_wb_due or line in self._local_inval_due:
            # The old owner's sharing write-back has not reached the home
            # yet (memory and the inval epoch derived from it are stale),
            # or an eager local grant's invalidation campaign has not
            # written the directory yet: the line stays serialised until
            # the home's view is consistent again.
            return
        entry = self.pending.pop(line, None)
        self._engine_holds.discard(line)
        if entry is None:
            return
        for inval, fetch_cb, fetch_probe in entry.deferred_fetches:
            self._do_fetch_for_fwd(line, inval, fetch_cb, fetch_probe)
        for lookup_cb in entry.deferred_lookups:
            self.schedule(0, lookup_cb)
        for waiter_req, waiter_type in entry.waiters:
            self.schedule(0, self.request, waiter_req, waiter_type)
        while self.overflow and len(self.pending) < self.pending_limit:
            next_req, next_type = self.overflow.popleft()
            self.schedule(0, self.request, next_req, next_type)

    # -----------------------------------------------------------------------
    # Functional warming (fast-forward mode)
    # -----------------------------------------------------------------------

    def warm_request(self, cpu_id: int, is_instr: bool,
                     reqtype: RequestType, line: int) -> Optional[ReplySource]:
        """Serve one L1 miss synchronously: same state mutations as the
        event path (L1 fill, duplicate tags, victim-cache flow, DRAM page
        state, checker hooks, counters), zero simulated time, zero events.

        Fast-forward phases use this to keep the memory hierarchy warm
        between detailed measurement windows.  Returns the
        :class:`ReplySource` the detailed path would have charged, or
        ``None`` when the access is not warm-eligible — a line still
        in flight from a previous window, or a multi-node access that
        would need a protocol-engine transaction (remote home, remote
        sharers, or an upgrade the home must serialise).  Declined
        accesses leave all state untouched; the caller advances its
        stream statistically instead.
        """
        if line in self.pending or line in self.wb_buffer:
            return None
        chip = self.chip
        multi = chip.num_nodes > 1
        cache_id = cpu_id * 2 + (1 if is_instr else 0)
        exclusive = reqtype != RequestType.READ
        if exclusive and self._must_wait_for_home(line):
            return None
        if (exclusive and multi and chip.is_home(line)
                and line in self.remote_cached):
            # an eager exclusive grant here would have to drive a remote
            # invalidation campaign through the home engine
            return None
        dup_e = self.dup.entries.get(line)
        l1_owner = dup_e.owner if dup_e is not None else None
        if l1_owner == L2_OWNER:
            l1_owner = None
        if l1_owner is not None and l1_owner != cache_id:
            owner_l1 = chip.l1_by_id(l1_owner)
            owner_line = owner_l1.peek(line)
            if owner_line is None:
                return None
            self.c_requests.inc()
            self.c_fwds.inc()
            version = owner_line.version
            dirty = owner_line.dirty
            if reqtype == RequestType.READ:
                owner_l1.downgrade(line)
                owner_l1.set_owner(line, False)
                if chip.checker is not None:
                    chip.checker.on_downgrade(chip.node_id, l1_owner, line)
                # dirtiness travels with ownership (see _finish_fwd)
                owner_line.dirty = False
                if l1_owner in dup_e.sharers:
                    dup_e.states[l1_owner] = MESI.SHARED
                dup_e.owner = None
                self._warm_fill(cache_id, line, MESI.SHARED, True,
                                version, dirty, ReplySource.L2_FWD)
            else:
                self._warm_fill(cache_id, line, MESI.MODIFIED, True,
                                version + 1, True, ReplySource.L2_FWD)
            return ReplySource.L2_FWD
        if dup_e is not None and cache_id in dup_e.sharers:
            own = chip.l1_by_id(cache_id).peek(line)
            if own is not None:
                self.c_requests.inc()
                if reqtype == RequestType.READ:
                    self._warm_fill(cache_id, line, own.state,
                                    own.owner, own.version, own.dirty,
                                    ReplySource.L2_HIT)
                else:
                    self.c_upgrades.inc()
                    self._warm_fill(cache_id, line, MESI.MODIFIED,
                                    True, own.version + 1, True,
                                    ReplySource.L2_HIT)
                return ReplySource.L2_HIT
        l2line = self.sets[
            ((line >> LINE_SHIFT) >> self._nbank_bits) & self._set_mask
        ].get(line >> LINE_SHIFT)
        if l2line is not None:
            self.c_requests.inc()
            self.c_hits.inc()
            version = l2line.version
            others = (dup_e is not None
                      and bool(dup_e.sharers - {cache_id}))
            if reqtype == RequestType.READ:
                can_be_exclusive = (
                    not others
                    and line not in self.remote_cached
                    and self.our_mode.get(line) != "S"
                )
                if can_be_exclusive:
                    if not self.inclusive:
                        self._drop_l2_copy(line, l2line)
                    self._warm_fill(cache_id, line, MESI.EXCLUSIVE,
                                    True, version, l2line.dirty,
                                    ReplySource.L2_HIT)
                else:
                    self.dup.set_l2_owner(line)
                    self._warm_fill(cache_id, line, MESI.SHARED,
                                    False, version, False,
                                    ReplySource.L2_HIT)
            else:
                self._warm_fill(cache_id, line, MESI.MODIFIED, True,
                                version + 1, True, ReplySource.L2_HIT)
            return ReplySource.L2_HIT
        # L2 miss: only home-local, remotely-uncached lines can be filled
        # without engine involvement.
        if reqtype == RequestType.EXCLUSIVE:
            reqtype = RequestType.READ_EXCLUSIVE
        if multi:
            if not chip.is_home(line):
                return None
            if chip.dirstore.read(line).state != DirState.UNCACHED:
                return None
        self.c_requests.inc()
        wants_data = reqtype != RequestType.EXCLUSIVE_NO_DATA
        if not wants_data:
            self.c_wh64_data_avoided.inc()
        if wants_data or multi:
            chip.mc_for_bank(self.bank_idx).warm_read_line(line)
        version = chip.mem_version(line)
        self.c_local_mem.inc()
        if reqtype == RequestType.READ:
            self._warm_fill(cache_id, line, MESI.EXCLUSIVE, True,
                            version, False, ReplySource.LOCAL_MEM)
        else:
            self._warm_fill(cache_id, line, MESI.MODIFIED, True,
                            version + 1, True, ReplySource.LOCAL_MEM)
        return ReplySource.LOCAL_MEM

    def _warm_fill(self, cache_id: int, line: int, state: MESI,
                   owner: bool, version: int, dirty: bool,
                   source: ReplySource) -> None:
        """:meth:`_fill` minus the event-path plumbing (probe stamps,
        request completion, pending-entry resolution): identical cache /
        duplicate-tag / checker mutations.  L1 evictions route through
        the normal synchronous victim-cache cascade, so warm fills
        exercise the real replacement policy; on multi-node systems that
        cascade may schedule a remote write-back, which the fast-forward
        driver drains before advancing time."""
        chip = self.chip
        if source in (ReplySource.LOCAL_MEM, ReplySource.REMOTE_MEM,
                      ReplySource.REMOTE_DIRTY):
            self._allocate_if_inclusive(line, version)
        if state is MESI.EXCLUSIVE or state is MESI.MODIFIED:
            self._invalidate_on_chip(line, except_cache=cache_id)
            if not self.inclusive:
                self._drop_l2_copy(line, self._l2_line(line))
        l1 = chip.l1_of(cache_id >> 1, bool(cache_id & 1))
        evicted = l1.fill(line, state, owner=owner, version=version,
                          dirty=dirty)
        self.dup.add_sharer(line, cache_id, state, make_owner=owner)
        if chip.checker is not None:
            chip.checker.on_fill(chip.node_id, cache_id, line,
                                 state, version)
        if evicted is not None:
            chip.route_l1_eviction(cache_id, evicted)

    # -----------------------------------------------------------------------
    # L1 replacement handling (victim-cache fill policy)
    # -----------------------------------------------------------------------

    def l1_eviction(self, cache_id: int, ev: Eviction) -> None:
        """An L1 replaced a line that maps to this bank."""
        line = line_addr(ev.addr)
        self.dup.remove_sharer(line, cache_id)
        if self.chip.checker is not None:
            # the holder is gone (its data may live on in the L2)
            self.chip.checker.on_invalidate(self.chip.node_id, cache_id, line)
        if not ev.owner:
            if self.inclusive and ev.dirty:
                self._victim_fill(line, ev.version, True)
            self.c_l1_evict_clean.inc()
            e = self.dup.entry(line)
            if e is None and self._l2_line(line) is None:
                self._line_left_chip(line)
            return
        # Owner replacement: write the line back into the L2 (victim fill)
        # even when clean — this is what makes the L2 a victim cache.
        self.c_l1_wb_owner.inc()
        self._victim_fill(line, ev.version, ev.dirty)
        self.dup.set_l2_owner(line)

    def _victim_fill(self, line: int, version: int, dirty: bool) -> None:
        lset = self.sets[self._set_of(line)]
        tag = line >> LINE_SHIFT
        existing = lset.get(tag)
        if existing is not None:
            existing.version = max(existing.version, version)
            existing.dirty = existing.dirty or dirty
            return
        if len(lset) >= self.assoc:
            victim_tag, victim = lset.popitem(last=False)  # least recently loaded
            self._evict_l2_line(victim_tag << LINE_SHIFT, victim)
        lset[tag] = L2Line(tag=tag, dirty=dirty, version=version)

    def _evict_l2_line(self, vline: int, victim: L2Line) -> None:
        self.c_l2_evictions.inc()
        home_local = self.chip.is_home(vline)
        sharers = self.dup.sharers(vline)
        if self.inclusive and sharers:
            # inclusion enforcement: the L1 copies die with the L2 line —
            # recover the freshest (possibly silently-modified) data first
            for sharer in sharers:
                held = self.chip.l1_by_id(sharer).peek(vline)
                if held is None:
                    continue
                if held.version > victim.version:
                    victim.version = held.version
                    victim.dirty = True
                elif held.dirty:
                    victim.dirty = True
        if sharers and home_local and not self.inclusive:
            # True non-inclusion: the duplicate tags are independent of the
            # L2 tags, so L1 copies survive an L2 eviction.  Ownership (the
            # write-back filter) moves from the L2 to one of the sharing
            # L1s; future misses to this line are L1-to-L1 forwards.
            e = self.dup.entry(vline)
            if e is not None and e.owner == L2_OWNER:
                e.owner = None
            new_owner = self.dup.promote_any_owner(vline)
            if new_owner is not None:
                self.chip.l1_by_id(new_owner).set_owner(vline, True)
            if victim.dirty:
                self.c_l2_dirty_evictions.inc()
                self.chip.mem_write_back(vline, victim.version, self.bank_idx)
            return
        # Remote-home lines keep the conservative rule (invalidate L1
        # sharers) so the home's view of our caching stays simple.
        for sharer in list(sharers):
            l1 = self.chip.l1_by_id(sharer)
            l1.invalidate(vline)
            self.dup.remove_sharer(vline, sharer)
            if self.chip.checker is not None:
                self.chip.checker.on_invalidate(self.chip.node_id, sharer, vline)
        self.dup.drop_line(vline)
        if victim.dirty:
            self.c_l2_dirty_evictions.inc()
            if home_local:
                self.chip.mem_write_back(vline, victim.version, self.bank_idx)
            else:
                self._remote_writeback(vline, victim.version)
        elif not home_local and self.our_mode.get(vline) == "E":
            # Clean but exclusively held: the home must reclaim ownership,
            # otherwise future forwards would find no data anywhere.
            self._remote_writeback(vline, victim.version)
        else:
            self._line_left_chip(vline)

    def _remote_writeback(self, line: int, version: int) -> None:
        self.wb_buffer[line] = version
        self.chip.remote_engine.deliver_local(
            "NEW_WB", line, version=version, req_node=self.chip.node_id,
            sharing=False,
        )

    def release_wb(self, line: int) -> None:
        """Home acknowledged our write-back: drop the buffered copy.  The
        node may have legitimately re-acquired the line meanwhile (e.g. a
        forward serviced from the buffer re-registered us as a sharer), so
        the partial-interpretation hints are only cleared when no on-chip
        copy remains."""
        self.wb_buffer.pop(line, None)
        if not self.dup.sharers(line) and self._l2_line(line) is None:
            self._line_left_chip(line)

    def _line_left_chip(self, line: int) -> None:
        self.our_mode.pop(line, None)
        self.remote_cached.discard(line)

    def _drop_l2_copy(self, line: int, l2line: Optional[L2Line]) -> None:
        if l2line is None:
            return
        lset = self.sets[self._set_of(line)]
        lset.pop(line >> LINE_SHIFT, None)
        e = self.dup.entry(line)
        if e is not None and e.owner == L2_OWNER:
            e.owner = None

    # -----------------------------------------------------------------------
    # On-chip invalidation (no acks needed: ICS ordering, Section 2.3)
    # -----------------------------------------------------------------------

    def _invalidate_on_chip(self, line: int, except_cache: Optional[int]) -> None:
        e = self.dup.entries.get(line)
        if e is None:
            return
        for sharer in list(e.sharers):
            if sharer == except_cache:
                continue
            l1 = self.chip.l1_by_id(sharer)
            l1.invalidate(line)
            self.dup.remove_sharer(line, sharer)
            if self.chip.checker is not None:
                self.chip.checker.on_invalidate(self.chip.node_id, sharer, line)

    # -----------------------------------------------------------------------
    # Services for the protocol engines
    # -----------------------------------------------------------------------

    def service_home_lookup(self, line: int, exclusive: bool, req_node: int,
                            on_done: Callable, probe=None) -> None:
        """Home engine asks: gather the line's data + directory, resolving
        on-chip copies at the home node (downgrading for reads,
        invalidating for exclusive requests).

        ``on_done(kind, version, direntry, no_other_sharers)`` with kind in
        {"clean", "dirty_remote"}.

        Home-side serialisation: if the line has an in-flight transaction
        (a local request or another engine transaction) this lookup defers
        behind it; otherwise it takes the pending entry itself, blocking
        local requests until the engine writes the directory back
        (:meth:`dir_write` releases the hold).
        """
        pend = self.pending.get(line)
        if pend is not None:
            pend.deferred_lookups.append(
                lambda: self.service_home_lookup(line, exclusive, req_node,
                                                 on_done, probe)
            )
            return
        self.pending[line] = PendingEntry(line)
        self._engine_holds.add(line)
        mc = self.chip.mc_for_bank(self.bank_idx)
        res = mc.read_line(line, probe=probe)
        delay = self.t_tag + res.critical_word_ps

        def finish() -> None:
            direntry = self.chip.dirstore.read(line)
            if direntry.state == DirState.EXCLUSIVE:
                on_done("dirty_remote", 0, direntry, False)
                return
            # Freshest data may be on-chip (home node's own caches).
            version = self.chip.mem_version(line)
            onchip_sharers = self.dup.sharers(line)
            l1_owner = self.dup.l1_owner(line)
            l2line = self._l2_line(line)
            if l1_owner is not None:
                owner_l1 = self.chip.l1_by_id(l1_owner)
                owner_line = owner_l1.peek(line)
                if owner_line is not None:
                    version = max(version, owner_line.version)
            if l2line is not None:
                version = max(version, l2line.version)
            if exclusive:
                self._invalidate_on_chip(line, except_cache=None)
                self._drop_l2_copy(line, l2line)
                self.remote_cached.discard(line)
                no_others = direntry.state == DirState.UNCACHED
            else:
                if l1_owner is not None:
                    owner_l1 = self.chip.l1_by_id(l1_owner)
                    owner_l1.downgrade(line)
                    self.dup.set_state(line, l1_owner, MESI.SHARED)
                    if self.chip.checker is not None:
                        self.chip.checker.on_downgrade(self.chip.node_id,
                                                       l1_owner, line)
                if onchip_sharers or l2line is not None:
                    self.remote_cached.add(line)
                no_others = (
                    direntry.state == DirState.UNCACHED
                    and not onchip_sharers
                    and l2line is None
                )
                # keep memory fresh: model sharing write-back of on-chip
                # dirty data into memory at the home
                self.chip.set_mem_version(line, version)
            on_done("clean", version, direntry, no_others)

        self.schedule(delay, finish)

    def service_fetch_for_fwd(self, line: int, inval: bool,
                              on_done: Callable, probe=None) -> None:
        """Remote engine asks for the data of a remote-home line we own, to
        service a forwarded request.  Guaranteed serviceable: the data is
        in an L1, the L2, or the write-back buffer; if our own fill is
        still in flight the fetch waits on the pending entry (the
        early-forward race)."""
        if line in self.wb_buffer:
            # The buffered copy is valid regardless of any pending local
            # request (which may itself be the one this forward services —
            # deferring here would deadlock the pair).
            self._do_fetch_for_fwd(line, inval, on_done, probe)
            return
        pend = self.pending.get(line)
        if pend is not None:
            pend.deferred_fetches.append((inval, on_done, probe))
            return
        self._do_fetch_for_fwd(line, inval, on_done, probe)

    def _do_fetch_for_fwd(self, line: int, inval: bool, on_done: Callable,
                          probe=None) -> None:
        version: Optional[int] = None
        l1_owner = self.dup.l1_owner(line)
        delay = self.t_tag
        if l1_owner is not None:
            owner_line = self.chip.l1_by_id(l1_owner).peek(line)
            if owner_line is not None:
                version = owner_line.version
                delay += self.t_ics + self.t_owner
        if version is None:
            l2line = self._l2_line(line)
            if l2line is not None:
                version = l2line.version
                delay += self.t_data
        if version is None and line in self.wb_buffer:
            version = self.wb_buffer[line]
            delay += self.t_data
        if version is None:
            # Sharers-only copies (clean): any L1 sharer can supply data.
            sharers = self.dup.sharers(line)
            for sharer in sharers:
                sline = self.chip.l1_by_id(sharer).peek(line)
                if sline is not None:
                    version = sline.version
                    delay += self.t_ics + self.t_owner
                    break
        if version is None:
            raise RuntimeError(
                f"{self.name}: forwarded request for {line:#x} found no "
                f"data — the no-NAK guarantee was violated"
            )
        if probe is not None:
            probe.stamp("owner_fetch", self.now + delay)
        if inval:
            self._invalidate_on_chip(line, except_cache=None)
            self._drop_l2_copy(line, self._l2_line(line))
            self._line_left_chip(line)
        else:
            if l1_owner is not None:
                self.chip.l1_by_id(l1_owner).downgrade(line)
                self.dup.set_state(line, l1_owner, MESI.SHARED)
                if self.chip.checker is not None:
                    self.chip.checker.on_downgrade(self.chip.node_id,
                                                   l1_owner, line)
            self.our_mode[line] = "S"
        self.schedule(delay, on_done, version)

    def service_invalidate(self, line: int, on_done: Callable,
                           epoch: Optional[int] = None) -> None:
        """Invalidate every on-chip copy of a remote-home line.

        ``epoch`` is the committed version at the home when the
        invalidation was issued: a late invalidation that raced past a
        fresher grant must not kill the newer copy (it is still
        acknowledged)."""
        if epoch is not None and self._onchip_version(line) > epoch:
            self.schedule(self.t_tag + self.t_ics, on_done)
            return
        self._invalidate_on_chip(line, except_cache=None)
        self._drop_l2_copy(line, self._l2_line(line))
        self._line_left_chip(line)
        self.schedule(self.t_tag + self.t_ics, on_done)

    def _onchip_version(self, line: int) -> int:
        best = -1
        l2line = self._l2_line(line)
        if l2line is not None:
            best = l2line.version
        for sharer in self.dup.sharers(line):
            sline = self.chip.l1_by_id(sharer).peek(line)
            if sline is not None and sline.version > best:
                best = sline.version
        return best

    def service_mem_write(self, line: int, version: int, on_done: Callable) -> None:
        """Write back data (+directory) for the home engine."""
        mc = self.chip.mc_for_bank(self.bank_idx)
        res = mc.write_line(line)
        self.chip.set_mem_version(line, version)
        self.schedule(res.critical_word_ps, on_done)

    def dir_write(self, line: int, direntry: Optional[DirectoryEntry]) -> None:
        """Fire-and-forget directory update (rides the MC write path).
        Also releases the home-side serialisation hold taken by
        :meth:`service_home_lookup`."""
        if direntry is not None:
            self.chip.dirstore.write(line, direntry)
            mc = self.chip.mc_for_bank(self.bank_idx)
            mc.write_line(line)
        if line in self._engine_holds:
            self._resolve_pending(line)

    def expect_sharing_wb(self, line: int) -> None:
        """The home engine forwarded a dirty read: the owner will downgrade
        and send the data home as a sharing write-back.  Until it arrives
        the memory image is stale, so the line's serialisation hold
        persists (see :meth:`_resolve_pending`)."""
        self._sharing_wb_due.add(line)

    def sharing_wb_arrived(self, line: int) -> None:
        """The sharing write-back landed (memory is fresh again): release
        the serialisation hold and wake anything queued behind it."""
        self._sharing_wb_due.discard(line)
        if line in self.pending:
            self._resolve_pending(line)

    def local_inval_done(self, line: int) -> None:
        """The eager local grant's invalidation campaign has written the
        directory: the home's view is consistent again, release the hold."""
        self._local_inval_due.discard(line)
        if line in self.pending:
            self._resolve_pending(line)

    # -- introspection -------------------------------------------------------

    def resident_lines(self) -> int:
        return sum(len(s) for s in self.sets)

    def resident_line_addrs(self):
        """Iterate the line addresses currently resident in this bank
        (sanitizer audits; no replacement-state side effects)."""
        for lset in self.sets:
            for tag in lset:
                yield tag << LINE_SHIFT

    def resident_line_set(self) -> Set[int]:
        """Set of resident line addresses (for membership tests)."""
        return set(self.resident_line_addrs())

    def miss_breakdown(self) -> Dict[str, int]:
        """L1-miss service decomposition (Figure 6b)."""
        return {
            "l2_hit": self.c_hits.value,
            "l2_fwd": self.c_fwds.value,
            "l2_miss": (self.c_local_mem.value + self.c_remote_mem.value
                        + self.c_remote_dirty.value),
        }
