"""Home and remote protocol engines (Section 2.5.1).

Each engine couples the microcode sequencer (:mod:`repro.core.microcode`),
the 16-entry TSRF (:mod:`repro.core.tsrf`) and an input/output controller.
Threads are charged one 500 MHz cycle (2 ns) per microinstruction; the
execution unit is a serial resource, so engine *occupancy* — which the
paper's protocol design works hard to minimise — emerges naturally and is
reported per engine.

The symbolic SEND/LSEND/TEST/SET names used by the microprograms are bound
here to node behaviour: packet construction, L2-bank services, directory
manipulation, and CMI planning.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Optional, Tuple

from ..interconnect.cmi import MAX_CMI_MESSAGES, plan_cmi
from ..interconnect.packets import Lane, Packet, PacketType
from ..mem.addr import line_addr
from ..sim.engine import Component, Simulator, ns
from .directory import DirectoryEntry, DirState, add_sharer, make_exclusive
from .microcode import END, Environment, Program, Sequencer, StepResult
from .microprograms import (
    HOME_ENTRY,
    LOCAL_MSG,
    REMOTE_ENTRY,
    build_home_program,
    build_remote_program,
)
from .tsrf import Tsrf, TsrfEntry, TsrfFullError

#: Reply packet types are matched against waiting TSRF entries; request
#: packet types allocate fresh protocol threads.
REPLY_TYPES = frozenset({
    PacketType.DATA_REPLY,
    PacketType.DATA_EXCLUSIVE_REPLY,
    PacketType.ACK_REPLY,
    PacketType.INVAL_ACK,
    PacketType.WRITEBACK_ACK,
})

#: Request-class messages: they start *new* transactions, as opposed to the
#: forward/write-back/invalidate class that completes transactions already
#: in flight.
REQUEST_TYPES = frozenset({
    PacketType.READ,
    PacketType.READ_EXCLUSIVE,
    PacketType.EXCLUSIVE,
    PacketType.EXCLUSIVE_NO_DATA,
})

#: TSRF entries reserved for the completion class (Section 2.5.1's
#: deadlock-avoidance reservation): if every entry could be taken by new
#: requests, the write-backs and forwards that those requests wait on
#: could find no entry, deadlocking the protocol.
TSRF_RESERVED = 2


class ProtocolEngine(Component):
    """One microprogrammable protocol engine (home or remote)."""

    #: engine clock: 500 MHz -> one microinstruction per 2 ns
    INSTR_PS = ns(2.0)

    def __init__(self, sim: Simulator, name: str, chip, is_home: bool) -> None:
        super().__init__(sim, name)
        self.chip = chip
        self.is_home = is_home
        self.program: Program = (
            build_home_program() if is_home else build_remote_program()
        )
        self.entry_map = HOME_ENTRY if is_home else REMOTE_ENTRY
        self.tsrf = Tsrf()
        self.busy_until = 0
        self.stalled: deque = deque()  # messages waiting for a TSRF entry
        self.env = self._bind_environment()
        self.sequencer = Sequencer(self.program, self.env)
        s = self.stats
        self.c_instructions = s.counter("microinstructions")
        self.c_threads = s.counter("threads")
        self.c_ext_msgs = s.counter("external_messages")
        self.c_local_msgs = s.counter("local_messages")
        self.c_tsrf_stalls = s.counter("tsrf_stalls")
        self.a_occupancy = s.accumulator("thread_instructions")
        #: time-weighted TSRF occupancy (satellite of the paper's 16-entry
        #: architectural bound; reset at the warm-up boundary)
        self.tw_tsrf = s.time_weighted("tsrf_occupancy")

    # -----------------------------------------------------------------------
    # Message entry points
    # -----------------------------------------------------------------------

    def _accepts_code(self, entry, code: int) -> bool:
        """True when the entry's pending RECEIVE/LRECEIVE has a programmed
        branch-table slot for *code* (hardware: the dispatch condition
        matches).  Disambiguates multiple same-address threads."""
        word = self.program.word_at(entry.pc)
        slot = word.next_addr | (code & 0xF)
        return self.program.store[slot] is not None

    def _match_waiting(self, addr: int, waiting: str, code: int):
        for entry in self.tsrf.entries:
            if (entry.valid and entry.waiting == waiting
                    and entry.addr == addr and self._accepts_code(entry, code)):
                return entry
        return None

    def has_waiting_external(self, addr: int, code: int) -> bool:
        """Used by the chip's reply router to pick the right engine."""
        return self._match_waiting(addr, "external", code) is not None

    def can_accept(self, pkt: Packet) -> bool:
        """IQ probe: replies always match a waiting entry; new requests
        need either a free TSRF entry or an entry to piggyback on."""
        if pkt.ptype in REPLY_TYPES:
            return True
        return self.tsrf.free_count > 0 or len(self.stalled) < 64

    def deliver_external(self, pkt: Packet) -> bool:
        """A packet addressed to this engine arrived via the IQ."""
        self.c_ext_msgs.inc()
        addr = line_addr(pkt.addr)
        code = int(pkt.ptype)
        if pkt.ptype in REPLY_TYPES:
            entry = self._match_waiting(addr, "external", code)
            if entry is None:
                # The reply raced ahead of the waiter reaching its RECEIVE
                # (engine busy) — or it belongs to the *other* engine whose
                # waiter was not parked yet.  Re-route from the chip level
                # so the retry reconsiders both engines.
                self.schedule(self.INSTR_PS, self.chip.deliver_packet, pkt)
                return True
            entry.vars["_msg"] = pkt
            entry.waiting = None
            self._start(entry, code)
            return True
        try:
            label = self.entry_map[("ext", code)]
        except KeyError:
            raise RuntimeError(f"{self.name}: no entry point for {pkt.ptype.name}")
        if (pkt.ptype in REQUEST_TYPES
                and self.tsrf.free_count <= TSRF_RESERVED):
            # keep the reserved entries for the completion class
            self.c_tsrf_stalls.inc()
            self.stalled.append(("ext", pkt))
            return True
        try:
            entry = self.tsrf.allocate(
                addr, self.program.entry_points[label], self.now,
                _msg=pkt,
                req_node=pkt.info.get("req_node", pkt.src),
                req_cpu=pkt.info.get("req_cpu", 0),
                req_ptype=pkt.ptype,
                version=pkt.info.get("version", 0),
                sharing=pkt.info.get("sharing", False),
                chain=tuple(pkt.info.get("chain", ())),
                is_local=False,
                probe=pkt.probe,
            )
        except TsrfFullError:
            self.c_tsrf_stalls.inc()
            self.stalled.append(("ext", pkt))
            return True
        self.c_threads.inc()
        self._start(entry, None)
        return True

    #: local message kinds that start new transactions.  NEW_WB completes
    #: a transaction and NEW_LOCAL_INVAL releases a serialisation hold, so
    #: both may use the reserved TSRF entries.
    REQUEST_LOCAL = frozenset({"NEW_READ", "NEW_READX", "NEW_LOCAL_FETCH"})

    def deliver_local(self, kind: str, addr: int, **vars: Any) -> None:
        """A bank (or other local module) starts a new protocol thread."""
        self.c_local_msgs.inc()
        code = LOCAL_MSG[kind]
        label = self.entry_map[("local", code)]
        if (kind in self.REQUEST_LOCAL
                and self.tsrf.free_count <= TSRF_RESERVED):
            self.c_tsrf_stalls.inc()
            self.stalled.append(("local", (kind, addr, vars)))
            return
        try:
            entry = self.tsrf.allocate(
                line_addr(addr), self.program.entry_points[label], self.now,
                is_local=vars.pop("is_local", True), **vars,
            )
        except TsrfFullError:
            self.c_tsrf_stalls.inc()
            self.stalled.append(("local", (kind, addr, vars)))
            return
        self.c_threads.inc()
        self._start(entry, None)

    def resume_local(self, addr: int, kind: str, **updates: Any) -> None:
        """A bank answers an LSEND; wake the waiting thread."""
        entry = self._match_waiting(line_addr(addr), "local", LOCAL_MSG[kind])
        if entry is None:
            # Waiter not parked yet (engine burst in progress): retry.
            self.schedule(self.INSTR_PS, self.resume_local, addr, kind,
                          **updates)
            return
        entry.vars.update(updates)
        entry.waiting = None
        self._start(entry, LOCAL_MSG[kind])

    def resume_entry(self, entry: TsrfEntry, kind: str, **updates: Any) -> None:
        """A bank answers an LSEND for a *specific* thread.  Address-based
        matching is ambiguous when two same-line threads wait on the same
        local message kind, so bank callbacks carry their entry."""
        if not entry.valid:
            raise RuntimeError(
                f"{self.name}: bank response for a retired TSRF entry "
                f"(addr={entry.addr:#x}, kind={kind})"
            )
        if entry.waiting != "local":
            # Thread still mid-burst; park the response briefly.
            self.schedule(self.INSTR_PS, self.resume_entry, entry, kind,
                          **updates)
            return
        entry.vars.update(updates)
        entry.waiting = None
        self._start(entry, LOCAL_MSG[kind])

    # -----------------------------------------------------------------------
    # Execution
    # -----------------------------------------------------------------------

    def _start(self, entry: TsrfEntry, dispatch_code: Optional[int]) -> None:
        trace = self.chip.trace
        if trace is not None:
            trace.record(
                "dispatch", self.chip.node_id, entry.addr,
                f"{'home' if self.is_home else 'remote'} tsrf[{entry.index}]"
                f" pc={entry.pc}"
                + (f" code={dispatch_code}" if dispatch_code is not None
                   else " new-thread"))
        self.tw_tsrf.set(self.now, self.tsrf.occupancy())
        start_at = max(0, self.busy_until - self.now)
        probe = entry.vars.get("probe")
        if probe is not None:
            # stamped at the (possibly future) execution-unit grant time,
            # so engine-occupancy queueing shows up in the dispatch hop
            probe.stamp("pe_dispatch", self.now + start_at)
        self.busy_until = max(self.busy_until, self.now) + self.INSTR_PS
        self.schedule(start_at, self._execute, entry, dispatch_code)

    def _execute(self, entry: TsrfEntry, dispatch_code: Optional[int]) -> None:
        effects = []
        entry.vars["_effects"] = effects
        executed, result = self.sequencer.run(entry, dispatch_code)
        self.c_instructions.inc(executed)
        self.a_occupancy.add(executed)
        burst_ps = executed * self.INSTR_PS
        self.busy_until = max(self.busy_until, self.now + burst_ps)
        for fn, args in effects:
            self.schedule(burst_ps, fn, *args)
        entry.vars.pop("_effects", None)
        if result is StepResult.DONE:
            self.schedule(burst_ps, self._retire, entry)
        elif result is StepResult.BLOCKED_EXTERNAL:
            entry.waiting = "external"
        else:
            entry.waiting = "local"

    def _retire(self, entry: TsrfEntry) -> None:
        self.tsrf.free(entry)
        self.tw_tsrf.set(self.now, self.tsrf.occupancy())
        if self.stalled:
            origin, payload = self.stalled.popleft()
            if origin == "ext":
                self.deliver_external(payload)
            else:
                kind, addr, vars = payload
                self.deliver_local(kind, addr, **vars)

    # -----------------------------------------------------------------------
    # Environment binding
    # -----------------------------------------------------------------------

    def _effect(self, entry: TsrfEntry, fn: Callable, *args: Any) -> None:
        """Defer an outgoing message to the end of the current burst, so
        sends are charged the microinstructions that precede them."""
        entry.vars["_effects"].append((fn, args))

    def _send(self, entry: TsrfEntry, ptype: PacketType, dst: int,
              **info: Any) -> None:
        pkt = Packet(
            ptype=ptype, src=self.chip.node_id, dst=dst, addr=entry.addr,
            txn_id=entry.index, info=info,
            probe=entry.vars.get("probe"),
        )
        self._effect(entry, self.chip.send_packet, pkt)

    def _bank(self, entry: TsrfEntry):
        return self.chip.bank_for(entry.addr)

    def _bind_environment(self) -> Environment:
        chip = self.chip

        # ---- shared helpers ------------------------------------------------

        def home_of(entry: TsrfEntry) -> int:
            return chip.home_of(entry.addr)

        def count_ack(entry: TsrfEntry, _op: int) -> None:
            entry.vars["acks_got"] = entry.vars.get("acks_got", 0) + 1

        def acks_pending(entry: TsrfEntry) -> int:
            needed = entry.vars.get("acks_needed", 0)
            got = entry.vars.get("acks_got", 0)
            return 1 if needed > got else 0

        def acks_complete(entry: TsrfEntry, _op: int) -> None:
            chip.note_acks_complete(entry.addr)

        def noop(entry: TsrfEntry, _op: int) -> None:
            return

        senders: Dict[str, Callable] = {}
        local_senders: Dict[str, Callable] = {}
        conditions: Dict[str, Callable] = {"acks_pending": acks_pending}
        actions: Dict[str, Callable] = {
            "count_ack": count_ack,
            "acks_complete": acks_complete,
            "noop": noop,
        }

        if not self.is_home:
            self._bind_remote(senders, local_senders, conditions, actions,
                              home_of)
        else:
            self._bind_home(senders, local_senders, conditions, actions)

        return Environment.bind(self.program, senders, local_senders,
                                conditions, actions)

    # ---- remote-engine bindings -------------------------------------------

    def _bind_remote(self, senders, local_senders, conditions, actions,
                     home_of) -> None:
        chip = self.chip

        def req_to_home(entry: TsrfEntry) -> None:
            ptype = entry.vars["req_ptype"]
            self._send(entry, ptype, home_of(entry),
                       req_node=chip.node_id, req_cpu=entry.vars.get("req_cpu", 0))

        def fill(entry: TsrfEntry, state: str) -> None:
            msg = entry.vars.get("_msg")
            version = msg.info.get("version", 0) if msg is not None else 0
            three_hop = bool(msg.info.get("three_hop", False)) if msg else False
            on_fill = entry.vars.get("on_fill")
            if on_fill is not None:
                self._effect(entry, on_fill, state, version, three_hop)

        def load_reply_state(entry: TsrfEntry, _op: int) -> None:
            msg = entry.vars["_msg"]
            needed = msg.info.get("inval_count", 0)
            entry.vars["acks_needed"] = needed
            if needed > entry.vars.get("acks_got", 0):
                # eager exclusive grant: a later MB by this CPU must wait
                # for the outstanding invalidation acks
                chip.register_pending_acks(entry.vars.get("req_cpu", 0),
                                           entry.addr)

        def reply_was_exclusive(entry: TsrfEntry) -> int:
            msg = entry.vars["_msg"]
            return 1 if msg.ptype == PacketType.DATA_EXCLUSIVE_REPLY else 0

        def bank_fetch(entry: TsrfEntry, inval: bool) -> None:
            bank = self._bank(entry)
            addr = entry.addr

            def on_data(version: int) -> None:
                self.resume_entry(entry, "BANK_DATA", version=version)

            self._effect(entry, bank.service_fetch_for_fwd, addr, inval,
                         on_data, entry.vars.get("probe"))

        def data_reply_to_requester(entry: TsrfEntry) -> None:
            self._send(entry, PacketType.DATA_REPLY,
                       entry.vars["req_node"],
                       version=entry.vars.get("version", 0), three_hop=True)

        def data_excl_reply_to_requester(entry: TsrfEntry) -> None:
            self._send(entry, PacketType.DATA_EXCLUSIVE_REPLY,
                       entry.vars["req_node"],
                       version=entry.vars.get("version", 0),
                       inval_count=0, three_hop=True)

        def sharing_wb_to_home(entry: TsrfEntry) -> None:
            self._send(entry, PacketType.WRITEBACK, home_of(entry),
                       version=entry.vars.get("version", 0), sharing=True)

        def bank_invalidate(entry: TsrfEntry) -> None:
            bank = self._bank(entry)
            addr = entry.addr
            epoch = entry.vars["_msg"].info.get("epoch")

            def on_done() -> None:
                self.resume_entry(entry, "BANK_DONE")

            self._effect(entry, bank.service_invalidate, addr, on_done, epoch)

        def inval_ack_to_requester(entry: TsrfEntry) -> None:
            msg = entry.vars["_msg"]
            requester = msg.info.get("req_node", msg.src)
            self._send(entry, PacketType.INVAL_ACK, requester)

        def cmi_more_stops(entry: TsrfEntry) -> int:
            return 1 if entry.vars.get("chain") else 0

        def cmi_to_next(entry: TsrfEntry) -> None:
            msg = entry.vars["_msg"]
            chain = tuple(entry.vars.get("chain", ()))
            nxt, rest = chain[0], chain[1:]
            self._send(entry, PacketType.CMI_INVALIDATE, nxt,
                       req_node=msg.info.get("req_node", msg.src), chain=rest,
                       epoch=msg.info.get("epoch"))

        def wb_to_home(entry: TsrfEntry) -> None:
            self._send(entry, PacketType.WRITEBACK, home_of(entry),
                       version=entry.vars.get("version", 0), sharing=False)

        def release_wb_buffer(entry: TsrfEntry) -> None:
            bank = self._bank(entry)
            self._effect(entry, bank.release_wb, entry.addr)

        senders.update({
            "req_to_home": req_to_home,
            "data_reply_to_requester": data_reply_to_requester,
            "data_excl_reply_to_requester": data_excl_reply_to_requester,
            "sharing_wb_to_home": sharing_wb_to_home,
            "inval_ack_to_requester": inval_ack_to_requester,
            "cmi_to_next": cmi_to_next,
            "wb_to_home": wb_to_home,
        })
        local_senders.update({
            "fill_shared": lambda e: fill(e, "S"),
            "fill_exclusive": lambda e: fill(e, "E"),
            "fill_modified": lambda e: fill(e, "M"),
            "bank_fetch_shared": lambda e: bank_fetch(e, False),
            "bank_fetch_inval": lambda e: bank_fetch(e, True),
            "bank_invalidate": bank_invalidate,
            "release_wb_buffer": release_wb_buffer,
        })
        conditions.update({
            "reply_was_exclusive": reply_was_exclusive,
            "cmi_more_stops": cmi_more_stops,
        })
        actions.update({
            "load_reply_state": load_reply_state,
        })

    # ---- home-engine bindings -----------------------------------------------

    def _bind_home(self, senders, local_senders, conditions, actions) -> None:
        chip = self.chip

        def bank_home_lookup(entry: TsrfEntry, exclusive: bool) -> None:
            bank = self._bank(entry)
            addr = entry.addr

            def on_done(kind: str, version: int, direntry: DirectoryEntry,
                        no_others: bool) -> None:
                code = "HOME_CLEAN" if kind == "clean" else "HOME_DIRTY"
                self.resume_entry(
                    entry, code, version=version, dir_entry=direntry,
                    no_other_sharers=no_others,
                    owner=direntry.owner,
                    sharers=sorted(direntry.sharers - {entry.vars["req_node"]}),
                )

            self._effect(entry, bank.service_home_lookup, addr, exclusive,
                         entry.vars["req_node"], on_done,
                         entry.vars.get("probe"))

        def data_reply(entry: TsrfEntry) -> None:
            self._send(entry, PacketType.DATA_REPLY, entry.vars["req_node"],
                       version=entry.vars.get("version", 0))

        def data_excl_reply(entry: TsrfEntry) -> None:
            count = entry.vars.get("inval_count", 0)
            wants_data = entry.vars.get("req_ptype") != PacketType.EXCLUSIVE
            ptype = (PacketType.DATA_EXCLUSIVE_REPLY if wants_data
                     else PacketType.ACK_REPLY)
            self._send(entry, ptype, entry.vars["req_node"],
                       version=entry.vars.get("version", 0), inval_count=count)

        def fwd_read_to_owner(entry: TsrfEntry) -> None:
            excl = entry.vars.get("fetch_excl", False)
            ptype = (PacketType.FWD_READ_EXCLUSIVE if excl
                     else PacketType.FWD_READ)
            if not excl:
                # The owner will downgrade and send the data home as a
                # sharing write-back; until it lands, memory is stale and
                # the line must stay serialised at the home bank.
                self._bank(entry).expect_sharing_wb(entry.addr)
            self._send(entry, ptype, entry.vars["owner"],
                       req_node=entry.vars["req_node"],
                       req_cpu=entry.vars.get("req_cpu", 0))

        def fwd_readx_to_owner(entry: TsrfEntry) -> None:
            self._send(entry, PacketType.FWD_READ_EXCLUSIVE,
                       entry.vars["owner"],
                       req_node=entry.vars["req_node"],
                       req_cpu=entry.vars.get("req_cpu", 0))

        def dir_write(entry: TsrfEntry) -> None:
            # A None dir_next still releases the bank's home-side hold.
            bank = self._bank(entry)
            self._effect(entry, bank.dir_write, entry.addr,
                         entry.vars.get("dir_next"))

        def bank_mem_write(entry: TsrfEntry) -> None:
            bank = self._bank(entry)
            addr = entry.addr

            def on_done() -> None:
                self.resume_entry(entry, "BANK_DONE")

            self._effect(entry, bank.service_mem_write, addr,
                         entry.vars.get("version", 0), on_done)

        def wb_ack(entry: TsrfEntry) -> None:
            self._send(entry, PacketType.WRITEBACK_ACK, entry.vars["req_node"])

        def sharing_wb_done(entry: TsrfEntry) -> None:
            bank = self._bank(entry)
            self._effect(entry, bank.sharing_wb_arrived, entry.addr)

        def local_inval_done(entry: TsrfEntry) -> None:
            bank = self._bank(entry)
            self._effect(entry, bank.local_inval_done, entry.addr)

        def fill_local(entry: TsrfEntry) -> None:
            msg = entry.vars["_msg"]
            on_fill = entry.vars.get("on_fill")
            if on_fill is not None:
                from .messages import MESI

                state = (MESI.MODIFIED if entry.vars.get("fetch_excl")
                         else MESI.SHARED)
                self._effect(entry, on_fill, msg.info.get("version", 0), state)

        def inval_to_sharer(entry: TsrfEntry) -> None:
            target = entry.vars["_cur_sharer"]
            self._send(entry, PacketType.INVALIDATE, target,
                       req_node=entry.vars["req_node"],
                       epoch=entry.vars.get("version"))

        def cmi_launch(entry: TsrfEntry) -> None:
            chain = entry.vars["_cur_chain"]
            nxt, rest = chain[0], tuple(chain[1:])
            self._send(entry, PacketType.CMI_INVALIDATE, nxt,
                       req_node=entry.vars["req_node"], chain=rest,
                       epoch=entry.vars.get("version"))

        # ---- conditions ----------------------------------------------------

        def no_other_sharers(entry: TsrfEntry) -> int:
            return 1 if entry.vars.get("no_other_sharers") else 0

        def has_remote_sharers(entry: TsrfEntry) -> int:
            return 1 if self._sharer_list(entry) else 0

        def use_cmi(entry: TsrfEntry) -> int:
            return 1 if len(self._sharer_list(entry)) > MAX_CMI_MESSAGES else 0

        def more_sharers(entry: TsrfEntry) -> int:
            return 1 if entry.vars.get("_sharer_queue") else 0

        def more_missiles(entry: TsrfEntry) -> int:
            return 1 if entry.vars.get("_chain_queue") else 0

        def is_sharing_wb(entry: TsrfEntry) -> int:
            return 1 if entry.vars.get("sharing") else 0

        # ---- actions -------------------------------------------------------

        def dir_add_sharer(entry: TsrfEntry, _op: int) -> None:
            current = entry.vars.get("dir_entry") or DirectoryEntry.uncached()
            entry.vars["dir_next"] = add_sharer(
                current, entry.vars["req_node"], chip.num_nodes
            )

        def dir_make_exclusive(entry: TsrfEntry, _op: int) -> None:
            entry.vars["dir_next"] = make_exclusive(entry.vars["req_node"])
            entry.vars["acks_needed"] = entry.vars.get("inval_count", 0)

        def dir_make_exclusive_local(entry: TsrfEntry, _op: int) -> None:
            # The home node's own exclusivity is never tracked in the
            # directory (home sharers are covered by the on-chip state).
            entry.vars["dir_next"] = DirectoryEntry.uncached()
            needed = entry.vars.get("inval_count", 0)
            entry.vars["acks_needed"] = needed
            if needed > entry.vars.get("acks_got", 0):
                chip.register_pending_acks(entry.vars.get("req_cpu", 0),
                                           entry.addr)

        def dir_share_with_owner(entry: TsrfEntry, _op: int) -> None:
            owner = entry.vars["owner"]
            if entry.vars.get("fetch_excl"):
                if entry.vars.get("is_local"):
                    entry.vars["dir_next"] = DirectoryEntry.uncached()
                else:
                    entry.vars["dir_next"] = make_exclusive(entry.vars["req_node"])
                return
            sharers = {owner}
            if not entry.vars.get("is_local"):
                sharers.add(entry.vars["req_node"])
            entry.vars["dir_next"] = DirectoryEntry(
                DirState.SHARED, frozenset(sharers), None
            )

        def dir_clear(entry: TsrfEntry, _op: int) -> None:
            current = entry.vars.get("dir_entry")
            if current is None:
                current = chip.dirstore.read(entry.addr)
            if (current.state == DirState.EXCLUSIVE
                    and current.owner != entry.vars["req_node"]):
                # Late write-back: the home already granted the line to a
                # new owner (the forward crossed the WB in flight).  The
                # directory stays as-is; the WB is acked and its data is
                # version-superseded.
                entry.vars["dir_next"] = current
                return
            remaining = set(current.sharers) - {entry.vars["req_node"]}
            if not remaining:
                entry.vars["dir_next"] = DirectoryEntry.uncached()
            else:
                entry.vars["dir_next"] = DirectoryEntry(
                    DirState.SHARED if len(remaining) <= 4 else DirState.SHARED_COARSE,
                    frozenset(remaining), None,
                )

        def next_sharer(entry: TsrfEntry, _op: int) -> None:
            queue = entry.vars.get("_sharer_queue")
            if queue is None:
                queue = list(self._sharer_list(entry))
                entry.vars["_sharer_queue"] = queue
                entry.vars["inval_count"] = len(queue)
            entry.vars["_cur_sharer"] = queue.pop(0)

        def plan_cmi_action(entry: TsrfEntry, _op: int) -> None:
            sharers = self._sharer_list(entry)
            plan = plan_cmi(chip.topology, chip.node_id,
                            entry.vars["req_node"], sharers)
            entry.vars["_chain_queue"] = list(plan.chains)
            entry.vars["inval_count"] = len(plan.chains)

        def next_missile(entry: TsrfEntry, _op: int) -> None:
            entry.vars["_cur_chain"] = entry.vars["_chain_queue"].pop(0)

        senders.update({
            "data_reply": data_reply,
            "data_excl_reply": data_excl_reply,
            "fwd_read_to_owner": fwd_read_to_owner,
            "fwd_readx_to_owner": fwd_readx_to_owner,
            "wb_ack": wb_ack,
            "inval_to_sharer": inval_to_sharer,
            "cmi_launch": cmi_launch,
        })
        local_senders.update({
            "bank_home_lookup": lambda e: bank_home_lookup(e, False),
            "bank_home_lookup_x": lambda e: bank_home_lookup(e, True),
            "dir_write": dir_write,
            "bank_mem_write": bank_mem_write,
            "fill_local": fill_local,
            "sharing_wb_done": sharing_wb_done,
            "local_inval_done": local_inval_done,
        })
        conditions.update({
            "no_other_sharers": no_other_sharers,
            "has_remote_sharers": has_remote_sharers,
            "use_cmi": use_cmi,
            "more_sharers": more_sharers,
            "more_missiles": more_missiles,
            "is_sharing_wb": is_sharing_wb,
        })
        actions.update({
            "dir_add_sharer": dir_add_sharer,
            "dir_make_exclusive": dir_make_exclusive,
            "dir_make_exclusive_local": dir_make_exclusive_local,
            "dir_share_with_owner": dir_share_with_owner,
            "dir_clear": dir_clear,
            "next_sharer": next_sharer,
            "plan_cmi": plan_cmi_action,
            "next_missile": next_missile,
        })

    def _sharer_list(self, entry: TsrfEntry):
        sharers = entry.vars.get("sharers")
        if sharers is None:
            direntry = entry.vars.get("dir_entry")
            if direntry is None:
                direntry = self.chip.dirstore.read(entry.addr)
                entry.vars["dir_entry"] = direntry
            sharers = sorted(
                direntry.sharers - {entry.vars.get("req_node", -1),
                                    self.chip.node_id}
            )
            entry.vars["sharers"] = sharers
        return sharers
