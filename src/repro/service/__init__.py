"""Simulation-as-a-service: async job server + deduplicating store.

This package promotes the one-shot CLI harness into a long-running
multi-tenant service (ROADMAP "simulation-as-a-service"):

:mod:`~repro.service.store`
    :class:`ArtifactStore` — one digest-addressed root unifying the
    PR 1 disk result-cache, the PR 5 warm-checkpoint store and a new
    content-addressed job-artifact area, all sharing the locked
    first-writer-wins write path so concurrent workers dedupe safely.
:mod:`~repro.service.queue`
    :class:`JobQueue` / :class:`JobRecord` — the priority queue and the
    per-job on-disk manifests a crash-restarted server recovers from.
:mod:`~repro.service.worker`
    the job executor subprocess (``python -m repro.service.worker``):
    runs one run/sweep/fuzz/xval job, streams telemetry, and suspends
    to a checkpoint when the server requests preemption.
:mod:`~repro.service.server`
    the asyncio job server: REST + line-JSON API, scheduler with
    priority preemption, worker pool, live subscriber streaming.
:mod:`~repro.service.client`
    :class:`ServiceClient` — the stdlib HTTP client behind
    ``repro submit`` / ``repro jobs`` / ``repro attach``.

Everything is stdlib-only (``asyncio`` + ``http.client``); the wire
format is JSON bodies plus newline-delimited JSON for event streams.
"""

from __future__ import annotations

from .queue import (JOB_STATES, JobQueue, JobRecord, dedupe_key_for,
                    normalize_spec)
from .store import ArtifactStore
from .worker import (EXIT_DONE, EXIT_FAILED, EXIT_SUSPENDED, PreemptGuard,
                     execute_job)

__all__ = [
    "ArtifactStore", "JobQueue", "JobRecord", "JOB_STATES",
    "normalize_spec", "dedupe_key_for",
    "PreemptGuard", "execute_job",
    "EXIT_DONE", "EXIT_SUSPENDED", "EXIT_FAILED",
]
