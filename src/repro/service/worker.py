"""Service worker: executes one job directory, suspend/resume capable.

Launched by the server as ``python -m repro.service.worker <job_dir>``
(one subprocess per running job, so a simulation crash never takes the
server down and ``REPRO_SCALE`` can differ per job).  Protocol, all
through the filesystem plus the exit code:

* reads ``job.json`` (never writes it — the server owns the manifest);
* appends telemetry records to ``telemetry.jsonl`` (``run_start``,
  ``interval``, ``sweep_point``, ``job_preempted``, ``job_resumed``,
  ``run_end``);
* exit ``0``: finished — ``result.json`` holds the artifact document,
  already published to the content-addressed artifact store;
* exit ``85``: suspended — the server asked for preemption (it dropped
  ``preempt.req``) and the machine state is parked in ``suspend.ckpt``;
* any other exit: failed — ``error.txt`` holds the traceback.

Preemption (``run`` jobs) rides the PR 5 checkpoint subsystem via
:class:`PreemptGuard`, a ``schedule_every`` ticker that polls the flag
file between events.  On request it snapshots the machine *before*
halting (``halt()`` discards the event queue) and the snapshot lands
exactly on a tick boundary ``k * every_ps``.  Because a periodic tick
reschedules itself only *after* its callback returns, the snapshot
contains neither the guard nor its next tick — the resumed worker
re-arms a fresh guard whose first tick falls at ``(k+1) * every_ps``,
the exact event (and engine sequence number) the uninterrupted run
schedules from inside its own tick.  Guard ticks read one flag and
mutate nothing, so a preempted-and-resumed run's metrics document is
byte-identical to an uninterrupted run with the same guard period
(tested); the period folds into the result-cache key because it does
shape the event schedule.

``sweep`` jobs preempt at point boundaries instead: no snapshot —
completed points are already in the result cache, so resume simply
re-walks the values and the finished ones answer instantly.  ``fuzz``
and ``xval`` jobs are short and run to completion once started.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
import tempfile
import time
import traceback
from typing import Any, Dict, Optional, Tuple

from .queue import JobRecord

__all__ = ["PreemptGuard", "execute_job", "main",
           "EXIT_DONE", "EXIT_SUSPENDED", "EXIT_FAILED",
           "DEFAULT_PREEMPT_EVERY_US"]

EXIT_DONE = 0
EXIT_SUSPENDED = 85
EXIT_FAILED = 1

#: default preemption-poll period in simulated microseconds (~tens of
#: milliseconds of wall-clock between polls at observed sim rates)
DEFAULT_PREEMPT_EVERY_US = 10.0

ARTIFACT_SCHEMA = "repro-service/1"


class PreemptGuard:
    """Polls the preemption flag between events; suspends on request.

    Host-side only: nothing in the simulated graph references the
    guard, and the pending tick is never in the queue while the
    callback runs, so snapshots it takes are free of the guard itself.
    """

    def __init__(self, system, flag_path: str, every_ps: int,
                 sink) -> None:
        if every_ps <= 0:
            raise ValueError("preemption poll period must be positive")
        self.system = system
        self.flag_path = flag_path
        self.every_ps = int(every_ps)
        #: ``sink(payload, sim_now_ps)`` persists the suspend snapshot
        self.sink = sink
        self.suspended = False

    def start(self) -> None:
        self.system.sim.schedule_every(self.every_ps, self.tick)

    def tick(self) -> bool:
        if os.path.exists(self.flag_path):
            from ..checkpoint import snapshot_bytes

            # capture BEFORE halt: halt() discards the event queue the
            # snapshot must carry
            payload = snapshot_bytes(self.system)
            self.sink(payload, self.system.sim.now)
            self.suspended = True
            self.system.sim.halt()
            return False
        return self.system._running_cpus > 0


def _read_preempt_request(record: JobRecord) -> Dict[str, Any]:
    """Who asked for the preemption (server writes ``{"by": job_id}``)."""
    try:
        with open(record.preempt_path, encoding="utf-8") as fh:
            doc = json.load(fh)
        return doc if isinstance(doc, dict) else {}
    except (OSError, ValueError):
        return {}


def _clear_preempt_flag(record: JobRecord) -> None:
    try:
        os.unlink(record.preempt_path)
    except OSError:
        pass


def _atomic_write_json(path: str, doc: Dict[str, Any]) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# -- job kinds ------------------------------------------------------------

def _execute_run(record: JobRecord, stream) -> Tuple[str, Optional[dict]]:
    """One preemptible simulation point.  Returns ``(outcome, artifact)``
    where outcome is ``"done"`` or ``"suspended"``."""
    from ..checkpoint import load_checkpoint, save_checkpoint
    from ..core import preset
    from ..harness.experiments import FACTORIES, UNITS_ATTR
    from ..harness.runner import (assemble_result, build_system,
                                  cached_result, store_result)
    from ..harness.cache import workload_token

    spec = record.spec
    config = preset(spec["config"])
    workload_name = spec["workload"]
    factory = FACTORIES[workload_name]()
    units_attr = UNITS_ATTR.get(workload_name, "transactions")
    nodes = int(spec["nodes"])
    check = bool(spec.get("check", False))
    probe_rate = int(spec.get("probe_rate", 0))
    sample_ps = int(float(spec.get("sample_interval_us", 0)) * 1e6)
    every_ps = int(float(spec.get("preempt_every_us",
                                  DEFAULT_PREEMPT_EVERY_US)) * 1e6)
    # the guard's ticks shape the event schedule, so the poll period is
    # measurement identity for cache purposes
    extra = ("svc-preempt", every_ps)
    wall0 = time.time()

    resuming = os.path.exists(record.suspend_path)
    if not resuming:
        cached = cached_result(config, factory, nodes, units_attr, check,
                               extra, 0, probe_rate, sample_ps,
                               telemetry=stream)
        if cached is not None:
            stream.emit("run_end", config=cached.config,
                        workload=cached.workload, items=cached.units,
                        throughput=cached.throughput,
                        sim_wall_s=cached.sim_wall_s, cached=True)
            return "done", _run_artifact(record, cached, cached=True)
        system, workload = build_system(config, factory, nodes, check,
                                        0, probe_rate, sample_ps)
        stream.emit("run_start", config=config.name,
                    workload=workload_token(factory), num_nodes=nodes,
                    mode="detailed", probe_rate=probe_rate,
                    sample_interval_ps=sample_ps, job_id=record.job_id)
    else:
        _manifest, system = load_checkpoint(record.suspend_path,
                                            expect_config=config)
        workload = system.workload
        stream.emit("job_resumed", job_id=record.job_id,
                    sim_now=system.sim.now)

    if system.sampler is not None:
        # host-side hook; stripped from snapshots, so re-hook every time
        system.sampler.on_record = stream.on_interval

    def sink(payload: bytes, sim_now: int) -> None:
        save_checkpoint(record.suspend_path, system, payload=payload,
                        sim_now=sim_now, workload=workload_name,
                        extra={"job_id": record.job_id})

    guard = PreemptGuard(system, record.preempt_path, every_ps, sink)
    guard.start()

    # Hand-rolled drive loop (vs run_to_completion): a suspended run
    # halts with CPUs still marked running — that must not raise, and
    # the *host-side* sampler must not finalize (the snapshot's copy is
    # the one that finishes the run later).
    system.start()  # idempotent: no-op on a restored machine
    system.sim.run()
    if guard.suspended:
        request = _read_preempt_request(record)
        stream.emit("job_preempted", job_id=record.job_id,
                    sim_now=system.sim.now, by=request.get("by"))
        _clear_preempt_flag(record)
        return "suspended", None
    if system._running_cpus != 0:
        raise RuntimeError(
            f"simulation stalled with {system._running_cpus} CPUs running")
    if system.sampler is not None:
        system.sampler.finalize()

    result = assemble_result(system, workload, config, nodes, units_attr,
                             probe_rate, sample_ps, time.time() - wall0)
    store_result(result, config, factory, nodes, units_attr, check, extra,
                 0, probe_rate, sample_ps, telemetry=stream)
    stream.emit("run_end", config=result.config, workload=result.workload,
                items=result.units, throughput=result.throughput,
                sim_wall_s=result.sim_wall_s, cached=False)
    try:
        os.unlink(record.suspend_path)  # the snapshot is now stale
    except OSError:
        pass
    return "done", _run_artifact(record, result, cached=False)


def _run_artifact(record: JobRecord, result, cached: bool) -> dict:
    return {
        "schema": ARTIFACT_SCHEMA,
        "kind": "run",
        "dedupe_key": record.dedupe_key,
        "cached": cached,
        "result": dataclasses.asdict(result),
    }


def _execute_sweep(record: JobRecord, stream) -> Tuple[str, Optional[dict]]:
    """A serial sweep; preempts between points (resume re-walks the
    values — completed points answer from the result cache)."""
    from ..core import preset
    from ..harness.experiments import FACTORIES, UNITS_ATTR
    from ..harness.runner import run_configured
    from ..harness.sweep import (parse_sweep_value, record_from_result,
                                 replace_field)

    spec = record.spec
    base = preset(spec["config"])
    workload_name = spec["workload"]
    factory = FACTORIES[workload_name]()
    units_attr = UNITS_ATTR.get(workload_name, "transactions")
    nodes = int(spec["nodes"])
    check = bool(spec.get("check", False))
    field = spec["field"]
    values = [parse_sweep_value(str(v)) for v in spec["values"]]

    if record.resumes:
        stream.emit("job_resumed", job_id=record.job_id, sim_now=0)
    else:
        stream.emit("run_start", config=base.name, workload=workload_name,
                    num_nodes=nodes, mode="sweep", field=field,
                    points=len(values), job_id=record.job_id)
    records = []
    for index, value in enumerate(values):
        if os.path.exists(record.preempt_path):
            request = _read_preempt_request(record)
            stream.emit("job_preempted", job_id=record.job_id, sim_now=0,
                        by=request.get("by"), point=index)
            _clear_preempt_flag(record)
            return "suspended", None
        config = replace_field(base, field, value)
        result = run_configured(config, factory, nodes, units_attr, check)
        point = {"value": value}
        point.update(record_from_result(result))
        records.append(point)
        stream.emit("sweep_point", index=index, field=field, value=value,
                    throughput=result.throughput,
                    cached=not result.sim_wall_s)
    stream.emit("run_end", config=base.name, workload=workload_name,
                items=len(records), sim_wall_s=0.0, cached=False)
    return "done", {
        "schema": ARTIFACT_SCHEMA,
        "kind": "sweep",
        "dedupe_key": record.dedupe_key,
        "field": field,
        "records": records,
    }


def _execute_fuzz(record: JobRecord, stream) -> Tuple[str, Optional[dict]]:
    from ..fuzz import generate, params_for, run_fuzz_program

    spec = record.spec
    params = params_for(int(spec.get("seed", 0)),
                        total_ops=int(spec.get("ops", 2000)),
                        nodes=int(spec["nodes"]),
                        config=spec["config"],
                        cpus_per_node=int(spec.get("cpus", 4)))
    program = generate(params)
    stream.emit("run_start", config=spec["config"], workload="fuzz",
                num_nodes=int(spec["nodes"]), mode="fuzz",
                job_id=record.job_id)
    verdict = run_fuzz_program(program, check=bool(spec.get("check", True)),
                               trace_capacity=int(spec.get("trace", 512)))
    stream.emit("run_end", config=spec["config"], workload="fuzz",
                items=int(spec.get("ops", 2000)), sim_wall_s=0.0,
                cached=False, ok=verdict.ok)
    return "done", {
        "schema": ARTIFACT_SCHEMA,
        "kind": "fuzz",
        "dedupe_key": record.dedupe_key,
        "ok": verdict.ok,
        "signature": verdict.signature,
        "counts": {k: int(v) for k, v in (verdict.counts or {}).items()},
    }


def _execute_xval(record: JobRecord, stream) -> Tuple[str, Optional[dict]]:
    from ..isa.kernels import KERNEL_NAMES
    from ..isa.validate import run_suite

    spec = record.spec
    kernels = spec.get("kernels", "all")
    if kernels == "all":
        kernels = KERNEL_NAMES
    elif isinstance(kernels, str):
        kernels = (kernels,)
    stream.emit("run_start", config=spec["config"], workload="xval",
                num_nodes=int(spec["nodes"]), mode="xval",
                job_id=record.job_id)
    doc = run_suite(tuple(kernels), config=spec["config"],
                    nodes=int(spec["nodes"]), scale=float(spec["scale"]),
                    seeds=tuple(range(int(spec.get("seeds", 3)))))
    stream.emit("run_end", config=spec["config"], workload="xval",
                items=doc["summary"]["kernels"], sim_wall_s=0.0,
                cached=False, ok=doc["ok"])
    return "done", {
        "schema": ARTIFACT_SCHEMA,
        "kind": "xval",
        "dedupe_key": record.dedupe_key,
        "ok": doc["ok"],
        "report": doc,
    }


_EXECUTORS = {
    "run": _execute_run,
    "sweep": _execute_sweep,
    "fuzz": _execute_fuzz,
    "xval": _execute_xval,
}


def execute_job(record: JobRecord, stream) -> Tuple[str, Optional[dict]]:
    """Run one job against an open telemetry stream.

    Returns ``("done", artifact)`` or ``("suspended", None)``.  Exposed
    for in-process tests (the preemption byte-diff gate) and the bench;
    the server goes through :func:`main` in a subprocess.
    """
    kind = record.spec.get("kind", "run")
    executor = _EXECUTORS.get(kind)
    if executor is None:
        raise ValueError(f"unknown job kind {kind!r}")
    return executor(record, stream)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print("usage: python -m repro.service.worker <job_dir>",
              file=sys.stderr)
        return 2
    record = JobRecord.load(args[0])
    spec = record.spec
    if spec.get("scale") is not None:
        # factories size themselves from the environment; one job = one
        # subprocess, so the override is clean
        os.environ["REPRO_SCALE"] = str(spec["scale"])

    from ..observe.telemetry import TelemetryStream

    # always append: the server already wrote job_queued, and a resumed
    # job continues the stream its first incarnation started
    stream = TelemetryStream(record.telemetry_path, append=True)
    try:
        outcome, artifact = execute_job(record, stream)
    except Exception:
        detail = traceback.format_exc()
        try:
            with open(record.error_path, "w", encoding="utf-8") as fh:
                fh.write(detail)
        except OSError:
            pass
        print(detail, file=sys.stderr)
        return EXIT_FAILED
    finally:
        stream.close()
    if outcome == "suspended":
        return EXIT_SUSPENDED
    _atomic_write_json(record.result_path, artifact)
    from .store import ArtifactStore

    ArtifactStore().put_artifact(record.dedupe_key, artifact)
    return EXIT_DONE


if __name__ == "__main__":
    sys.exit(main())
