"""Content-addressed artifact store shared by server and workers.

One digest-addressed root (``cache_dir()``, i.e. ``REPRO_CACHE_DIR``)
now carries every persistent artifact the harness produces:

``<root>/<d2>/<key>.json``
    the PR 1 result cache (:class:`repro.harness.cache.DiskCache`) —
    one ``RunResult`` per simulation point.
``<root>/checkpoints/<d2>/<key>.ckpt``
    the PR 5 warm-snapshot store (:class:`repro.checkpoint.store.WarmStore`).
``<root>/artifacts/<d2>/<key>.json``
    finished *job* documents keyed by the job's dedupe digest — the
    thing a duplicate submission answers from without simulating.
``<root>/service/``
    the server's mutable state: ``server.json`` (address manifest) and
    ``jobs/<job_id>/`` directories (manifest, telemetry, suspend
    snapshot, worker logs).

All three digest-addressed areas write through the same primitive
(:func:`repro.harness.cache.locked_exclusive_write`): take the entry's
file lock, re-check existence, tmp+rename.  Entries are pure functions
of their keys, so first-writer-wins *is* the dedupe — a losing writer
discards a byte-identical payload.  Readers never lock (rename
atomicity guarantees old-or-new).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from ..checkpoint.store import WarmStore
from ..harness.cache import (DiskCache, cache_dir, cache_enabled,
                             locked_exclusive_write)

__all__ = ["ArtifactStore"]


class ArtifactStore:
    """The unified digest-addressed root (results, checkpoints, artifacts).

    ``root=None`` follows the process-wide cache directory (and with it
    ``REPRO_CACHE_DIR``), making the store the same one the in-process
    harness caches already populate — a service job whose point was ever
    simulated on this root answers from cache.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self._root = root
        self.results = DiskCache(root)
        self.checkpoints = WarmStore(
            os.path.join(root, "checkpoints") if root else None)
        self.artifact_hits = 0
        self.artifact_misses = 0

    @property
    def root(self) -> str:
        return self._root or cache_dir()

    # -- service state directories ---------------------------------------

    def service_dir(self) -> str:
        return os.path.join(self.root, "service")

    def jobs_dir(self) -> str:
        return os.path.join(self.service_dir(), "jobs")

    def server_manifest_path(self) -> str:
        return os.path.join(self.service_dir(), "server.json")

    # -- content-addressed job artifacts ---------------------------------

    def _artifact_file(self, key: str) -> str:
        return os.path.join(self.root, "artifacts", key[:2], key + ".json")

    def get_artifact(self, key: Optional[str]) -> Optional[Dict[str, Any]]:
        """The finished job document for *key*, or None."""
        if not key:
            return None
        try:
            with open(self._artifact_file(key), "rb") as fh:
                doc = json.loads(fh.read().decode("utf-8"))
        except (OSError, ValueError):
            self.artifact_misses += 1
            return None
        self.artifact_hits += 1
        return doc

    def put_artifact(self, key: Optional[str], doc: Dict[str, Any]) -> bool:
        """Store a finished job document; True if this call created it.

        ``REPRO_NO_CACHE`` disables artifact persistence like the other
        stores — the service still runs, every duplicate re-simulates.
        """
        if not key or not cache_enabled():
            return False
        data = json.dumps(doc, sort_keys=True).encode("utf-8")
        try:
            return locked_exclusive_write(self._artifact_file(key), data)
        except OSError:
            return False

    def info(self) -> Dict[str, Any]:
        """Aggregate stats across the three digest-addressed areas."""
        entries = 0
        size = 0
        art_root = os.path.join(self.root, "artifacts")
        if os.path.isdir(art_root):
            for walk_root, _dirs, files in os.walk(art_root):
                for fname in files:
                    if fname.endswith(".json"):
                        entries += 1
                        try:
                            size += os.path.getsize(
                                os.path.join(walk_root, fname))
                        except OSError:
                            pass
        return {
            "root": self.root,
            "results": self.results.info(),
            "checkpoints": self.checkpoints.info(),
            "artifacts": {"entries": entries, "bytes": size,
                          "hits": self.artifact_hits,
                          "misses": self.artifact_misses},
        }
