"""Job records, the priority queue, and the crash-recovery manifest.

Every job owns one directory under ``<root>/service/jobs/<job_id>/``:

``job.json``
    the manifest (spec, priority, state, dedupe key, counters) —
    written atomically by the *server only*; the worker reads it and
    reports back through its exit code plus ``result.json``/``error.txt``.
``telemetry.jsonl``
    the job's live record stream (``job_queued``/``run_start``/
    ``interval``/``job_preempted``/``job_resumed``/``run_end``...),
    appended to by whichever process currently owns the job's lifecycle
    moment (server at queue/terminal time, worker while running).
``suspend.ckpt``
    the preemption snapshot (standard ``.ckpt`` format) a resumed
    worker restores from.
``preempt.req``
    the preemption request flag the server drops and the running
    worker's :class:`~repro.service.worker.PreemptGuard` polls.
``result.json`` / ``error.txt`` / ``worker.log``
    the worker's outputs.

States: ``QUEUED → RUNNING → DONE`` on the happy path; ``RUNNING →
SUSPENDED → RUNNING`` per preemption round-trip; ``FAILED`` and
``CANCELLED`` are terminal.  A server restart replays the manifests:
``QUEUED``/``SUSPENDED`` jobs re-enter the heap, a ``RUNNING`` job
whose worker died demotes to ``SUSPENDED`` (snapshot on disk) or
``QUEUED`` (restart from scratch — any completed points answer from the
result cache), and terminal jobs stay as they are.

Scheduling order is ``(-priority, seq)``: higher priority first,
FIFO within a priority.  A suspended job keeps its original ``seq``, so
after its preemptor finishes it resumes ahead of later arrivals at its
own priority.

Deduplication keys (:func:`dedupe_key_for`) digest the *normalized*
spec plus the library fingerprint — two textually different submissions
of the same simulation collide, and any code change invalidates every
key, exactly like the result cache.  Priority is scheduling policy, not
work identity, so it stays out of the key; an explicit ``tag`` field in
the spec deliberately splits otherwise-identical work (the bench uses
it to defeat dedupe when measuring raw throughput).
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import json
import os
import tempfile
import time
from typing import Any, Dict, List, Optional

from ..harness.cache import library_fingerprint

__all__ = ["JOB_STATES", "JobRecord", "JobQueue", "normalize_spec",
           "dedupe_key_for"]

QUEUED = "QUEUED"
RUNNING = "RUNNING"
SUSPENDED = "SUSPENDED"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

JOB_STATES = (QUEUED, RUNNING, SUSPENDED, DONE, FAILED, CANCELLED)
TERMINAL_STATES = (DONE, FAILED, CANCELLED)
#: job kinds the scheduler may preempt (fuzz/xval jobs are short and
#: have no suspend path; they always run to completion once started)
PREEMPTIBLE_KINDS = ("run", "sweep")

_SPEC_DEFAULTS: Dict[str, Any] = {
    "kind": "run",
    "config": "P8",
    "workload": "oltp",
    "nodes": 1,
    "scale": 1.0,
}


def normalize_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Canonicalise a job spec: fill defaults, coerce types, drop nulls.

    Normalisation happens *before* keying so that e.g. ``nodes: 1``
    present-vs-absent, or a float-vs-int scale, cannot split the dedupe
    key of identical work.
    """
    out = dict(_SPEC_DEFAULTS)
    out.update({k: v for k, v in spec.items() if v is not None})
    out["kind"] = str(out["kind"])
    out["nodes"] = int(out["nodes"])
    out["scale"] = float(out["scale"])
    for field in ("probe_rate", "seed", "ops", "cpus", "seeds"):
        if field in out:
            out[field] = int(out[field])
    for field in ("sample_interval_us", "preempt_every_us"):
        if field in out:
            out[field] = float(out[field])
    if "check" in out:
        out["check"] = bool(out["check"])
    if "values" in out and isinstance(out["values"], str):
        out["values"] = [v.strip() for v in out["values"].split(",")
                         if v.strip()]
    return out


def dedupe_key_for(spec: Dict[str, Any]) -> str:
    """Content digest of one unit of simulation work."""
    payload = json.dumps({"spec": normalize_spec(spec),
                          "lib": library_fingerprint()},
                         sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


def _atomic_write_json(path: str, doc: Dict[str, Any]) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True, indent=2)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclasses.dataclass
class JobRecord:
    """One job's manifest plus its on-disk paths."""

    job_id: str
    job_dir: str
    spec: Dict[str, Any]
    priority: int = 0
    seq: int = 0
    state: str = QUEUED
    dedupe_key: str = ""
    #: job id (or literal ``"artifact"``) this job deduplicated against
    dedup_of: Optional[str] = None
    preemptions: int = 0
    resumes: int = 0
    error: str = ""
    created_wall: float = 0.0
    finished_wall: float = 0.0

    # -- paths ------------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.job_dir, "job.json")

    @property
    def telemetry_path(self) -> str:
        return os.path.join(self.job_dir, "telemetry.jsonl")

    @property
    def suspend_path(self) -> str:
        return os.path.join(self.job_dir, "suspend.ckpt")

    @property
    def preempt_path(self) -> str:
        return os.path.join(self.job_dir, "preempt.req")

    @property
    def result_path(self) -> str:
        return os.path.join(self.job_dir, "result.json")

    @property
    def error_path(self) -> str:
        return os.path.join(self.job_dir, "error.txt")

    @property
    def log_path(self) -> str:
        return os.path.join(self.job_dir, "worker.log")

    # -- persistence ------------------------------------------------------

    def to_manifest(self) -> Dict[str, Any]:
        doc = dataclasses.asdict(self)
        doc.pop("job_dir")  # derivable; keeps manifests relocatable
        return doc

    def save(self) -> None:
        """Atomically persist the manifest (server is the only writer)."""
        _atomic_write_json(self.manifest_path, self.to_manifest())

    @classmethod
    def load(cls, job_dir: str) -> "JobRecord":
        with open(os.path.join(job_dir, "job.json"), encoding="utf-8") as fh:
            doc = json.load(fh)
        doc.pop("job_dir", None)
        return cls(job_dir=job_dir, **doc)

    def public(self) -> Dict[str, Any]:
        """The API-facing view of the job."""
        doc = self.to_manifest()
        doc["job_dir"] = self.job_dir
        return doc


class JobQueue:
    """Priority heap + manifest directory (no asyncio — the server
    layers its own wakeups on top).

    The heap holds ``(-priority, seq, job_id)`` entries and is purged
    lazily: state transitions (cancel, dedupe-resolve) just flip the
    record, and :meth:`pop_ready` discards entries whose record is no
    longer claimable.
    """

    def __init__(self, jobs_root: str) -> None:
        self.jobs_root = jobs_root
        self.records: Dict[str, JobRecord] = {}
        self._heap: List[tuple] = []
        self._next_seq = 0

    # -- submission -------------------------------------------------------

    def create(self, spec: Dict[str, Any], priority: int = 0) -> JobRecord:
        """Build (and persist) a new QUEUED record; caller decides
        whether it enters the heap or resolves as a duplicate."""
        spec = normalize_spec(spec)
        seq = self._next_seq
        self._next_seq += 1
        key = dedupe_key_for(spec)
        job_id = f"j{seq:05d}-{key[:8]}"
        record = JobRecord(
            job_id=job_id,
            job_dir=os.path.join(self.jobs_root, job_id),
            spec=spec,
            priority=int(priority),
            seq=seq,
            dedupe_key=key,
            created_wall=time.time(),
        )
        os.makedirs(record.job_dir, exist_ok=True)
        record.save()
        self.records[job_id] = record
        return record

    def push(self, record: JobRecord) -> None:
        heapq.heappush(self._heap, (-record.priority, record.seq,
                                    record.job_id))

    def pop_ready(self) -> Optional[JobRecord]:
        """Claim the best QUEUED/SUSPENDED job, or None."""
        while self._heap:
            _np, _seq, job_id = heapq.heappop(self._heap)
            record = self.records.get(job_id)
            if record is not None and record.state in (QUEUED, SUSPENDED):
                return record
        return None

    def peek_ready(self) -> Optional[JobRecord]:
        """The best claimable job without removing it (for preemption
        decisions), purging stale heap entries along the way."""
        while self._heap:
            _np, _seq, job_id = self._heap[0]
            record = self.records.get(job_id)
            if record is not None and record.state in (QUEUED, SUSPENDED):
                return record
            heapq.heappop(self._heap)
        return None

    def peek_priority(self) -> Optional[int]:
        """Priority of the best claimable job still in the heap."""
        record = self.peek_ready()
        return None if record is None else record.priority

    # -- dedupe -----------------------------------------------------------

    def active_leader(self, dedupe_key: str) -> Optional[JobRecord]:
        """The in-flight job other submissions of *dedupe_key* follow."""
        best = None
        for record in self.records.values():
            if (record.dedupe_key == dedupe_key and record.dedup_of is None
                    and record.state in (QUEUED, RUNNING, SUSPENDED)):
                if best is None or record.seq < best.seq:
                    best = record
        return best

    def followers_of(self, leader_id: str) -> List[JobRecord]:
        return [r for r in self.records.values()
                if r.dedup_of == leader_id and r.state not in TERMINAL_STATES]

    # -- recovery ---------------------------------------------------------

    def recover(self) -> Dict[str, int]:
        """Rebuild queue state from the on-disk manifests after a
        restart (or crash).  Returns transition counts for logging."""
        counts = {"queued": 0, "suspended": 0, "restarted": 0, "kept": 0}
        if not os.path.isdir(self.jobs_root):
            return counts
        loaded: List[JobRecord] = []
        for name in sorted(os.listdir(self.jobs_root)):
            job_dir = os.path.join(self.jobs_root, name)
            if not os.path.isfile(os.path.join(job_dir, "job.json")):
                continue
            try:
                record = JobRecord.load(job_dir)
            except (OSError, ValueError, TypeError):
                continue  # torn manifest from a crash mid-create
            loaded.append(record)
        for record in loaded:
            self.records[record.job_id] = record
            self._next_seq = max(self._next_seq, record.seq + 1)
            if record.state == RUNNING:
                # its worker died with the old server; the snapshot (if
                # any) resumes it, otherwise it restarts — completed
                # sweep points answer from the result cache either way
                if os.path.exists(record.suspend_path):
                    record.state = SUSPENDED
                    counts["suspended"] += 1
                else:
                    record.state = QUEUED
                    counts["restarted"] += 1
                # a stale preemption request must not instantly
                # re-suspend the recovered job
                try:
                    os.unlink(record.preempt_path)
                except OSError:
                    pass
                record.save()
                self.push(record)
            elif record.state in (QUEUED, SUSPENDED):
                if record.dedup_of is None:
                    self.push(record)
                counts["queued" if record.state == QUEUED
                       else "suspended"] += 1
            else:
                counts["kept"] += 1
        return counts

    def summary(self) -> Dict[str, int]:
        out: Dict[str, int] = {state: 0 for state in JOB_STATES}
        for record in self.records.values():
            out[record.state] = out.get(record.state, 0) + 1
        return out
