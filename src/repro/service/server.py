"""The asyncio job server: REST + line-JSON API over a worker pool.

One process owns the queue (:class:`~repro.service.queue.JobQueue`),
a pool of worker *subprocesses* (one per running job — a simulation
crash can never take the server down), and the HTTP endpoint:

====== ============================ =====================================
method path                         effect
====== ============================ =====================================
POST   ``/jobs``                    submit ``{"spec": {...},
                                    "priority": N}`` → job manifest
GET    ``/jobs``                    list all job manifests
GET    ``/jobs/<id>``               one job manifest
GET    ``/jobs/<id>/result``        the finished artifact (404 until
                                    DONE)
GET    ``/jobs/<id>/events``        NDJSON stream: full telemetry
                                    replay, then live follow until
                                    ``run_end``
POST   ``/jobs/<id>/cancel``        cancel a queued/running job
GET    ``/stats``                   queue/dedupe/preemption counters +
                                    store stats
POST   ``/shutdown``                suspend running jobs, persist
                                    manifests, stop
====== ============================ =====================================

Scheduling: highest priority first, FIFO within a priority.  When every
worker slot is busy and a strictly higher-priority job is waiting, the
scheduler preempts the lowest-priority running *preemptible* job by
dropping ``preempt.req`` in its directory; the worker suspends to
``suspend.ckpt`` at its next guard tick and exits 85, the job re-enters
the queue as ``SUSPENDED`` (keeping its original seq), and a later free
slot resumes it bit-identically.

Dedupe: a submission whose digest matches a finished artifact completes
instantly; one matching an in-flight job becomes a *follower* that
resolves when its leader finishes.  Either way the duplicate never
costs a simulation, which is the multi-tenant story: N clients
submitting overlapping sweeps fan out to the union of distinct points.

Crash recovery: every state change is persisted to ``job.json`` before
it takes effect, so a restarted server replays the manifests — queued
jobs re-enter the heap, suspended jobs resume from their snapshots,
and a ``RUNNING`` orphan (its worker died with the old server) demotes
to ``SUSPENDED`` or ``QUEUED``.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
import time
import traceback
from typing import Any, Dict, Optional, Tuple

from . import queue as jobq
from .queue import PREEMPTIBLE_KINDS, JobQueue, JobRecord
from .store import ArtifactStore
from .worker import EXIT_DONE, EXIT_SUSPENDED

__all__ = ["ServiceServer", "ServerThread", "run_server"]

#: how long a clean shutdown waits for workers to suspend before
#: escalating to SIGTERM
SHUTDOWN_GRACE_S = 60.0
#: scheduler poll period — wakeups (submit/exit) are event-driven; this
#: only bounds recovery from a missed edge
SCHED_POLL_S = 0.2


class ServiceServer:
    """See the module docstring.  ``workers=0`` accepts and queues but
    never launches — used by recovery tests and drain-only operation."""

    def __init__(self, root: Optional[str] = None, host: str = "127.0.0.1",
                 port: int = 0, workers: int = 2,
                 preempt: bool = True) -> None:
        self.store = ArtifactStore(root)
        self.queue = JobQueue(self.store.jobs_dir())
        self.host = host
        self.port = port
        self.workers = int(workers)
        self.preempt = preempt
        self.running: Dict[str, asyncio.subprocess.Process] = {}
        self.stats: Dict[str, int] = {
            "submitted": 0, "completed": 0, "failed": 0, "cancelled": 0,
            "dedupe_hits": 0, "preemptions": 0, "resumes": 0,
            "recovered": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._wake = asyncio.Event()
        self._closed = asyncio.Event()
        self._shutting_down = False
        self._sched_task: Optional[asyncio.Task] = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        os.makedirs(self.queue.jobs_root, exist_ok=True)
        recovered = self.queue.recover()
        self.stats["recovered"] = (recovered["queued"]
                                   + recovered["suspended"]
                                   + recovered["restarted"])
        self._resolve_recovered_followers()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._write_server_manifest()
        self._sched_task = asyncio.create_task(self._scheduler())

    def _write_server_manifest(self) -> None:
        jobq._atomic_write_json(self.store.server_manifest_path(), {
            "host": self.host, "port": self.port, "pid": os.getpid(),
            "workers": self.workers, "root": self.store.root,
        })

    def _resolve_recovered_followers(self) -> None:
        """Followers whose leader finished (or vanished) while the
        server was down: answer from the artifact, or promote."""
        for record in list(self.queue.records.values()):
            if record.dedup_of is None or record.state in jobq.TERMINAL_STATES:
                continue
            artifact = self.store.get_artifact(record.dedupe_key)
            if artifact is not None:
                self._finish_as_duplicate(record, record.dedup_of)
                continue
            leader = self.queue.records.get(record.dedup_of)
            if leader is None or leader.state in jobq.TERMINAL_STATES:
                record.dedup_of = None  # promote to leader
                record.save()
                self.queue.push(record)

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def shutdown(self) -> None:
        """Suspend running jobs, persist everything, stop serving."""
        if self._shutting_down:
            return
        self._shutting_down = True
        self._wake.set()
        for job_id in list(self.running):
            self._request_preemption(self.queue.records[job_id],
                                     by="shutdown")
        deadline = time.monotonic() + SHUTDOWN_GRACE_S
        while self.running and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        for job_id, proc in list(self.running.items()):
            try:
                proc.terminate()
            except ProcessLookupError:
                pass
        while self.running:
            await asyncio.sleep(0.05)
        if self._sched_task is not None:
            self._sched_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            os.unlink(self.store.server_manifest_path())
        except OSError:
            pass
        self._closed.set()

    # -- scheduler --------------------------------------------------------

    async def _scheduler(self) -> None:
        while not self._shutting_down:
            try:
                await self._launch_ready()
                self._maybe_preempt()
            except Exception:  # defensive: the loop must survive
                print("scheduler error:\n" + traceback.format_exc(),
                      file=sys.stderr)
            try:
                await asyncio.wait_for(self._wake.wait(),
                                       timeout=SCHED_POLL_S)
                self._wake.clear()
            except asyncio.TimeoutError:
                pass

    async def _launch_ready(self) -> None:
        while (not self._shutting_down
               and len(self.running) < self.workers):
            record = self.queue.pop_ready()
            if record is None:
                return
            await self._launch(record)

    async def _launch(self, record: JobRecord) -> None:
        resuming = record.state == jobq.SUSPENDED
        if resuming:
            record.resumes += 1
            self.stats["resumes"] += 1
        record.state = jobq.RUNNING
        record.save()
        log = open(record.log_path, "ab")
        # the worker's result cache, checkpoint store and artifact
        # publications must all land on *this server's* root, whatever
        # the subprocess environment would otherwise default to
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = self.store.root
        env.pop("REPRO_NO_CACHE", None)
        # the worker must import the same `repro` this server runs —
        # hosts that got it via sys.path surgery (scripts/) rather than
        # an installed package or PYTHONPATH need the path forwarded
        pkg_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        parts = env.get("PYTHONPATH", "").split(os.pathsep)
        if pkg_root not in parts:
            env["PYTHONPATH"] = os.pathsep.join(
                [pkg_root] + [p for p in parts if p])
        try:
            proc = await asyncio.create_subprocess_exec(
                sys.executable, "-m", "repro.service.worker",
                record.job_dir, stdout=log, stderr=log, env=env)
        finally:
            log.close()
        self.running[record.job_id] = proc
        asyncio.create_task(self._reap(record, proc))

    async def _reap(self, record: JobRecord, proc) -> None:
        returncode = await proc.wait()
        self.running.pop(record.job_id, None)
        try:
            self._apply_exit(record, returncode)
        except Exception:
            print(f"reap error for {record.job_id}:\n"
                  + traceback.format_exc(), file=sys.stderr)
        self._wake.set()

    def _apply_exit(self, record: JobRecord, returncode: int) -> None:
        # a preemption request the worker never consumed (finished or
        # died first) must not survive into a requeue
        try:
            os.unlink(record.preempt_path)
        except OSError:
            pass
        if record.state == jobq.CANCELLED:
            return  # cancel already accounted for this job
        if returncode == EXIT_DONE:
            record.state = jobq.DONE
            record.finished_wall = time.time()
            record.save()
            self.stats["completed"] += 1
            self._resolve_followers(record)
        elif returncode == EXIT_SUSPENDED:
            record.state = jobq.SUSPENDED
            record.preemptions += 1
            record.save()
            self.stats["preemptions"] += 1
            self.queue.push(record)  # original seq: resumes ahead of
            #                          later arrivals at its priority
        else:
            record.state = jobq.FAILED
            record.finished_wall = time.time()
            record.error = self._read_error_tail(record)
            record.save()
            self.stats["failed"] += 1
            self._emit_lifecycle(record, "run_end", error=record.error
                                 or f"worker exited {returncode}")
            for follower in self.queue.followers_of(record.job_id):
                follower.dedup_of = None  # rerun independently
                follower.save()
                self.queue.push(follower)

    @staticmethod
    def _read_error_tail(record: JobRecord, limit: int = 2000) -> str:
        try:
            with open(record.error_path, encoding="utf-8") as fh:
                text = fh.read()
            return text[-limit:]
        except OSError:
            return ""

    def _resolve_followers(self, leader: JobRecord) -> None:
        for follower in self.queue.followers_of(leader.job_id):
            self._finish_as_duplicate(follower, leader.job_id)

    def _finish_as_duplicate(self, record: JobRecord,
                             leader_id: Optional[str]) -> None:
        record.state = jobq.DONE
        record.dedup_of = leader_id or "artifact"
        record.finished_wall = time.time()
        record.save()
        self.stats["dedupe_hits"] += 1
        self.stats["completed"] += 1
        self._emit_lifecycle(record, "run_end", cached=True,
                             dedup_of=record.dedup_of)

    def _maybe_preempt(self) -> None:
        if not self.preempt or self._shutting_down or self.workers == 0:
            return
        if len(self.running) < self.workers:
            return  # a free slot serves the arrival without violence
        top = self.queue.peek_ready()
        if top is None:
            return
        victim = None
        for job_id in self.running:
            record = self.queue.records.get(job_id)
            if (record is None or record.state != jobq.RUNNING
                    or record.spec.get("kind") not in PREEMPTIBLE_KINDS
                    or os.path.exists(record.preempt_path)):
                continue
            if victim is None or (record.priority, -record.seq) \
                    < (victim.priority, -victim.seq):
                victim = record
        if victim is not None and top.priority > victim.priority:
            self._request_preemption(victim, by=top.job_id)

    def _request_preemption(self, record: JobRecord, by: str) -> None:
        jobq._atomic_write_json(record.preempt_path,
                                {"by": by, "wall": time.time()})

    # -- submission / lifecycle ------------------------------------------

    def submit(self, spec: Dict[str, Any], priority: int = 0) -> JobRecord:
        record = self.queue.create(spec, priority)
        self.stats["submitted"] += 1
        artifact = self.store.get_artifact(record.dedupe_key)
        if artifact is not None:
            self._emit_lifecycle(record, "job_queued", dedup_of="artifact")
            self._finish_as_duplicate(record, None)
            return record
        leader = self.queue.active_leader(record.dedupe_key)
        if leader is not None and leader.job_id != record.job_id:
            record.dedup_of = leader.job_id
            record.save()
            self._emit_lifecycle(record, "job_queued",
                                 dedup_of=leader.job_id)
            return record
        self._emit_lifecycle(record, "job_queued")
        self.queue.push(record)
        self._wake.set()
        return record

    def cancel(self, record: JobRecord) -> bool:
        if record.state in jobq.TERMINAL_STATES:
            return False
        was_running = record.state == jobq.RUNNING
        record.state = jobq.CANCELLED
        record.finished_wall = time.time()
        record.save()
        self.stats["cancelled"] += 1
        self._emit_lifecycle(record, "run_end", cancelled=True)
        if was_running:
            proc = self.running.get(record.job_id)
            if proc is not None:
                try:
                    proc.terminate()
                except ProcessLookupError:
                    pass
        self._wake.set()
        return True

    def _emit_lifecycle(self, record: JobRecord, kind: str,
                        **fields) -> None:
        """Append one lifecycle record to the job's telemetry stream.

        Single-writer discipline: the server only writes while no worker
        owns the job (queue time, terminal time), so lines never
        interleave with the worker's.
        """
        from ..observe.telemetry import TelemetryStream

        base = {"job_id": record.job_id,
                "priority": record.priority,
                "job_kind": record.spec.get("kind", "run")}
        base.update(fields)
        with TelemetryStream(record.telemetry_path, append=True) as stream:
            stream.emit(kind, **base)

    def stats_doc(self) -> Dict[str, Any]:
        return {
            "schema": "repro-service-stats/1",
            "workers": self.workers,
            "running": sorted(self.running),
            "jobs": self.queue.summary(),
            "counters": dict(self.stats),
            "store": self.store.info(),
        }

    # -- HTTP -------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, path, body = request
                await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception:
            try:
                self._write_response(writer, 500,
                                     {"error": traceback.format_exc()})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    def _write_response(self, writer, status: int,
                        doc: Dict[str, Any]) -> None:
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 409: "Conflict",
                  500: "Internal Server Error"}.get(status, "OK")
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        writer.write(
            f"HTTP/1.0 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1") + body)

    async def _route(self, method: str, path: str, body: bytes,
                     writer) -> None:
        path = path.split("?", 1)[0]
        segments = [s for s in path.split("/") if s]
        if method == "GET" and segments == ["stats"]:
            self._write_response(writer, 200, self.stats_doc())
        elif method == "GET" and segments == ["jobs"]:
            jobs = [r.public() for r in sorted(
                self.queue.records.values(), key=lambda r: r.seq)]
            self._write_response(writer, 200, {"jobs": jobs})
        elif method == "POST" and segments == ["jobs"]:
            try:
                doc = json.loads(body.decode("utf-8")) if body else {}
                spec = doc.get("spec") or {}
                if not isinstance(spec, dict) or not spec:
                    raise ValueError("missing job spec")
                record = self.submit(spec, int(doc.get("priority", 0)))
            except (ValueError, TypeError, KeyError) as exc:
                self._write_response(writer, 400, {"error": str(exc)})
                return
            self._write_response(writer, 200, record.public())
        elif method == "POST" and segments == ["shutdown"]:
            self._write_response(writer, 202, {"shutting_down": True})
            await writer.drain()
            asyncio.create_task(self.shutdown())
        elif len(segments) >= 2 and segments[0] == "jobs":
            record = self.queue.records.get(segments[1])
            if record is None:
                self._write_response(writer, 404,
                                     {"error": f"no job {segments[1]}"})
            elif method == "GET" and len(segments) == 2:
                self._write_response(writer, 200, record.public())
            elif method == "GET" and segments[2:] == ["result"]:
                doc = self._result_for(record)
                if doc is None:
                    self._write_response(
                        writer, 404 if record.state != jobq.FAILED else 409,
                        {"error": f"job is {record.state}",
                         "state": record.state, "detail": record.error})
                else:
                    self._write_response(writer, 200, doc)
            elif method == "GET" and segments[2:] == ["events"]:
                await self._stream_events(writer, record)
            elif method == "POST" and segments[2:] == ["cancel"]:
                changed = self.cancel(record)
                self._write_response(writer, 200,
                                     {"cancelled": changed,
                                      "state": record.state})
            else:
                self._write_response(writer, 404, {"error": "no such route"})
        else:
            self._write_response(writer, 404, {"error": "no such route"})
        await writer.drain()

    def _result_for(self, record: JobRecord) -> Optional[Dict[str, Any]]:
        if record.state != jobq.DONE:
            return None
        try:
            with open(record.result_path, encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            pass
        return self.store.get_artifact(record.dedupe_key)

    async def _stream_events(self, writer, record: JobRecord,
                             timeout_s: float = 600.0) -> None:
        """Replay the job's telemetry from the top, then follow live.

        NDJSON over HTTP/1.0 with ``Connection: close`` — the reader
        consumes lines until EOF.  Only complete lines are forwarded
        (same torn-line discipline as ``repro watch``); the stream ends
        at the job's ``run_end``, which the server guarantees exists for
        every terminal state.
        """
        from ..observe.telemetry import parse_line

        writer.write(b"HTTP/1.0 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        offset = 0
        buf = b""
        deadline = time.monotonic() + timeout_s
        while True:
            chunk = b""
            try:
                with open(record.telemetry_path, "rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
                    offset = fh.tell()
            except FileNotFoundError:
                pass
            if chunk:
                deadline = time.monotonic() + timeout_s
                buf += chunk
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    parsed = parse_line(line)
                    if parsed is None:
                        continue
                    writer.write(line.strip() + b"\n")
                    await writer.drain()
                    if parsed.get("kind") == "run_end":
                        return
            if time.monotonic() > deadline or self._shutting_down:
                return
            await asyncio.sleep(0.1)


# -- entry points ---------------------------------------------------------

async def _serve(server: ServiceServer) -> None:
    await server.start()
    print(f"repro service listening on "
          f"http://{server.host}:{server.port} "
          f"(root {server.store.root}, {server.workers} workers, "
          f"{server.stats['recovered']} jobs recovered)")
    try:
        await server.wait_closed()
    except asyncio.CancelledError:
        await server.shutdown()
        raise


def run_server(root: Optional[str] = None, host: str = "127.0.0.1",
               port: int = 0, workers: int = 2,
               preempt: bool = True) -> int:
    """Blocking entry point behind ``repro serve``."""
    server = ServiceServer(root=root, host=host, port=port,
                           workers=workers, preempt=preempt)
    try:
        asyncio.run(_serve(server))
    except KeyboardInterrupt:
        print("\nshutting down (suspending running jobs) ...")
    return 0


class ServerThread:
    """An in-process server on a background thread (tests, bench).

    ::

        with ServerThread(root=tmp, workers=2) as srv:
            client = ServiceClient(*srv.address)
            ...

    Exit performs a full clean shutdown (running jobs suspended and
    persisted), so a second ``ServerThread`` on the same root exercises
    the recovery path.
    """

    def __init__(self, **kwargs) -> None:
        self.server = ServiceServer(**kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.host, self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("service server failed to start in 30s")
        if self._startup_error is not None:
            raise RuntimeError("service server failed to start") \
                from self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_until_complete(self.server.wait_closed())
        finally:
            self._loop.close()

    def stop(self, timeout: float = SHUTDOWN_GRACE_S + 30) -> None:
        if self._loop is None or self._thread is None:
            return
        if not self._loop.is_closed():
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self._loop)
            try:
                future.result(timeout=timeout)
            except (TimeoutError, RuntimeError):
                pass
        self._thread.join(timeout=10)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
