"""Client side of the simulation service: stdlib HTTP, line-JSON attach.

:class:`ServiceClient` wraps the server's REST surface; every method is
a plain blocking call returning parsed JSON.  :meth:`ServiceClient.attach`
is the streaming exception — it holds one dedicated connection open and
yields telemetry records as the server forwards them (replay first,
then live), terminating at the job's ``run_end``.

Discovery: a server advertises itself in ``<root>/service/server.json``;
:func:`server_address` polls that manifest so scripts can start
``repro serve`` with ``--port 0`` (ephemeral) and still find it.
"""

from __future__ import annotations

import http.client
import json
import os
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..observe.telemetry import parse_line
from .store import ArtifactStore

__all__ = ["ServiceClient", "ServiceError", "server_address"]


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, doc: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {doc.get('error', doc)}")
        self.status = status
        self.doc = doc


def server_address(root: Optional[str] = None,
                   timeout_s: float = 10.0) -> Tuple[str, int]:
    """Resolve the (host, port) of the server on *root*'s store.

    Polls ``server.json`` for up to *timeout_s* — covers the race where
    a just-spawned ``repro serve`` hasn't bound its socket yet."""
    path = ArtifactStore(root).server_manifest_path()
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
            return str(doc["host"]), int(doc["port"])
        except (OSError, ValueError, KeyError):
            if time.monotonic() > deadline:
                raise ServiceError(0, {
                    "error": f"no server manifest at {path} "
                             f"after {timeout_s:.0f}s — is `repro serve` "
                             f"running on this cache root?"})
            time.sleep(0.1)


class ServiceClient:
    """One server endpoint; connections are per-request (HTTP/1.0)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 root: Optional[str] = None,
                 timeout_s: float = 30.0) -> None:
        if not port:
            host, port = server_address(root)
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s

    # -- plumbing ---------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                doc = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                doc = {"error": raw.decode("utf-8", "replace")}
            if response.status >= 400:
                raise ServiceError(response.status, doc)
            return doc
        finally:
            conn.close()

    # -- API --------------------------------------------------------------

    def submit(self, spec: Dict[str, Any],
               priority: int = 0) -> Dict[str, Any]:
        """Submit one job; returns its manifest (which may already be
        DONE — dedupe against a stored artifact is instantaneous)."""
        return self._request("POST", "/jobs",
                             {"spec": spec, "priority": int(priority)})

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished artifact (raises ServiceError until DONE)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown")

    def wait(self, job_id: str, timeout_s: float = 600.0,
             poll_s: float = 0.2) -> Dict[str, Any]:
        """Block until the job reaches a terminal state; returns the
        final manifest.  Raises TimeoutError if it doesn't."""
        deadline = time.monotonic() + timeout_s
        while True:
            doc = self.job(job_id)
            if doc.get("state") in ("DONE", "FAILED", "CANCELLED"):
                return doc
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc.get('state')} "
                    f"after {timeout_s:.0f}s")
            time.sleep(poll_s)

    # -- streaming --------------------------------------------------------

    def attach(self, job_id: str,
               timeout_s: Optional[float] = None
               ) -> Iterator[Dict[str, Any]]:
        """Yield the job's telemetry records: full replay, then live.

        Holds a dedicated connection; the stream ends at the job's
        ``run_end`` (the server emits one for every terminal state, so
        attach always terminates)."""
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout_s if timeout_s is not None else 600.0)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except ValueError:
                    doc = {"error": raw.decode("utf-8", "replace")}
                raise ServiceError(response.status, doc)
            buf = b""
            while True:
                chunk = response.read1(65536) if hasattr(response, "read1") \
                    else response.read(65536)
                if not chunk:
                    break
                buf += chunk
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    record = parse_line(line)
                    if record is not None:
                        yield record
        finally:
            conn.close()
