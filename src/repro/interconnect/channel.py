"""Bit-level channel model: framing, encoding, CRC, piggyback retransmit.

Section 2.6.1: each channel direction is 22 transmission-line wires
signalling at 2 Gbit/s.  Every interconnect clock the channel moves one
DC-balanced 22-bit word carrying 16 data bits and 2 CRC/flow-control bits
(plus the random balancing bit).  A *piggyback handshake* on the reverse
channel handles flow control and transmission-error recovery.

This module is the bit-exact data plane used by examples and tests; the
performance simulations use the :class:`~repro.interconnect.router.Link`
latency model instead (the two agree on serialisation timing by
construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..sim.rng import substream
from .crc import crc16_words
from .encoding import decode, encode
from .packets import Packet

#: 2-bit CRC/flow-control field meanings.
FLOW_IDLE = 0
FLOW_DATA = 1
FLOW_CRC = 2
FLOW_RETRY = 3


class ChannelError(RuntimeError):
    """Raised when the channel gives up on a frame (should not happen with
    retransmission enabled)."""


def packet_to_words(pkt: Packet) -> List[int]:
    """Serialise a packet into 16-bit channel words (header, then data)."""
    words: List[int] = []
    header = pkt.pack_header()
    for i in range(128 // 16 - 1, -1, -1):
        words.append((header >> (i * 16)) & 0xFFFF)
    if pkt.has_data:
        data = pkt.info.get("data_image", b"\x00" * 64)
        if len(data) != 64:
            raise ValueError("long packets carry exactly 64 data bytes")
        for i in range(0, 64, 2):
            words.append((data[i] << 8) | data[i + 1])
    return words


def words_to_packet(words: List[int]) -> Packet:
    """Inverse of :func:`packet_to_words`."""
    if len(words) not in (8, 40):
        raise ValueError(f"frame must be 8 or 40 words, got {len(words)}")
    header = 0
    for word in words[:8]:
        header = (header << 16) | word
    pkt = Packet.unpack_header(header)
    if len(words) == 40:
        data = bytearray()
        for word in words[8:]:
            data.append(word >> 8)
            data.append(word & 0xFF)
        pkt.has_data = True
        pkt.info["data_image"] = bytes(data)
    return pkt


@dataclass
class FrameLog:
    """Bookkeeping from one transfer attempt (for tests/examples)."""

    attempts: int = 0
    words_sent: int = 0
    errors_injected: int = 0
    retries: int = 0
    wire_words: List[int] = field(default_factory=list)


class BitSerialChannel:
    """One channel direction with CRC-checked frames and retransmission.

    ``error_rate`` injects per-word corruption on the wire; the receiver
    detects the corrupt frame via CRC (or via an illegal/unbalanced
    codeword) and the piggyback handshake requests a retransmit.
    """

    def __init__(self, error_rate: float = 0.0, seed: int = 0, max_retries: int = 8) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise ValueError("error rate must be in [0, 1)")
        self.error_rate = error_rate
        self.max_retries = max_retries
        self._rng = substream(seed, "channel")
        self.log = FrameLog()

    # -- framing ---------------------------------------------------------

    def _frame(self, pkt: Packet) -> Tuple[List[int], List[int]]:
        """Return (data words, flow-control fields) including the CRC word."""
        words = packet_to_words(pkt)
        crc = crc16_words(words)
        flow = [FLOW_DATA] * len(words) + [FLOW_CRC]
        return words + [crc], flow

    def _transmit_words(self, words: List[int], flow: List[int]) -> List[int]:
        """Encode, corrupt (maybe), and return the raw 22-bit wire words."""
        wire: List[int] = []
        for data16, flow2 in zip(words, flow):
            rnd = self._rng.getrandbits(1)
            word22 = encode((flow2 << 16) | data16, rnd)
            if self.error_rate and self._rng.random() < self.error_rate:
                # Flip one wire: breaks DC balance, detected immediately.
                word22 ^= 1 << self._rng.randrange(22)
                self.log.errors_injected += 1
            wire.append(word22)
            self.log.words_sent += 1
        return wire

    def _receive_words(self, wire: List[int]) -> Optional[Tuple[List[int], List[int]]]:
        """Decode a frame; None signals a detected error (retry needed)."""
        data16s: List[int] = []
        flows: List[int] = []
        for word22 in wire:
            try:
                data18, _rnd = decode(word22)
            except Exception:
                return None
            data16s.append(data18 & 0xFFFF)
            flows.append(data18 >> 16)
        payload, crc_word = data16s[:-1], data16s[-1]
        if flows[-1] != FLOW_CRC or crc16_words(payload) != crc_word:
            return None
        # The CRC covers only the 16 data bits of each word; the 2-bit
        # flow field rides outside it.  A corrupted-but-balanced codeword
        # that alters a flow field while preserving its data bits passes
        # the CRC, so the flow fields need their own validation: every
        # payload word of a frame must carry FLOW_DATA.
        if any(f != FLOW_DATA for f in flows[:-1]):
            return None
        return payload, flows[:-1]

    # -- public API ------------------------------------------------------

    def transfer(self, pkt: Packet) -> Packet:
        """Move a packet across the channel, retrying on detected errors."""
        words, flow = self._frame(pkt)
        for attempt in range(self.max_retries + 1):
            self.log.attempts += 1
            wire = self._transmit_words(words, flow)
            self.log.wire_words = wire
            result = self._receive_words(wire)
            if result is not None:
                payload, _flows = result
                return words_to_packet(payload)
            # A retry is a retransmission that actually happens: the
            # final failed attempt is followed by giving up, not by
            # another send, so it must not be counted (max_retries=0
            # used to report retries=1 on a lost frame).
            if attempt < self.max_retries:
                self.log.retries += 1
        raise ChannelError(
            f"frame lost after {self.max_retries} retries "
            f"(error_rate={self.error_rate})"
        )
