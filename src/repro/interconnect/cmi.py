"""Cruise-missile invalidates (CMI) — Section 2.5.3.

To bound the number of messages a single request can inject into the
network (a prerequisite of Piranha's linear buffering guarantee), the home
engine invalidates a large sharer set by launching **at most four**
invalidation messages.  Each message carries a predetermined visit chain:
it hops from sharer to sharer, invalidating at each stop, and only the
*final* node in the chain emits a single acknowledgement to the requester.

With 16 TSRF entries per engine and CMI capping invalidations at four
messages, a node needs buffering for only 2 engines x 16 TSRFs x 4 = 128
message headers — independent of system size.

This module plans the visit chains (a small travelling-salesman-flavoured
partitioning heuristic over the interconnect topology) and provides an
analytic latency comparison against the conventional home-fan-out scheme,
which the ablation benchmark exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .topology import Topology

#: The paper's bound on invalidation messages injected per request.
MAX_CMI_MESSAGES = 4


@dataclass(frozen=True)
class CmiPlan:
    """A set of cruise-missile chains covering a sharer set."""

    chains: Tuple[Tuple[int, ...], ...]
    requester: int
    home: int

    @property
    def messages_injected(self) -> int:
        """Messages the home injects (one per chain)."""
        return len(self.chains)

    @property
    def acks_generated(self) -> int:
        """Acks the requester gathers (one per chain — final node only)."""
        return len(self.chains)

    def covered(self) -> frozenset:
        return frozenset(n for chain in self.chains for n in chain)


def plan_cmi(
    topology: Topology,
    home: int,
    requester: int,
    sharers: Iterable[int],
    max_messages: int = MAX_CMI_MESSAGES,
) -> CmiPlan:
    """Partition *sharers* into at most *max_messages* visit chains.

    Chains are built greedily: sharers are split into balanced groups, and
    within each group ordered nearest-neighbour starting from the node
    closest to the home, so each missile flies a short path.
    """
    targets = sorted(set(sharers) - {requester})
    if max_messages < 1:
        raise ValueError("need at least one invalidation message")
    if not targets:
        return CmiPlan(chains=(), requester=requester, home=home)

    n_chains = min(max_messages, len(targets))
    # Seed each chain with the targets farthest from each other: sort by
    # distance from home and deal round-robin, then order each chain
    # nearest-neighbour.
    by_distance = sorted(targets, key=lambda n: (topology.distance(home, n), n))
    groups: List[List[int]] = [[] for _ in range(n_chains)]
    for i, node in enumerate(by_distance):
        groups[i % n_chains].append(node)

    chains: List[Tuple[int, ...]] = []
    for group in groups:
        remaining = set(group)
        current = home
        ordered: List[int] = []
        while remaining:
            nxt = min(remaining, key=lambda n: (topology.distance(current, n), n))
            ordered.append(nxt)
            remaining.discard(nxt)
            current = nxt
        chains.append(tuple(ordered))
    return CmiPlan(chains=tuple(chains), requester=requester, home=home)


def cmi_latency(
    topology: Topology,
    plan: CmiPlan,
    hop_ns: float,
    visit_ns: float,
) -> float:
    """Critical-path latency (ns) until the requester holds all acks.

    Each chain: home -> first sharer -> ... -> last sharer -> requester,
    paying *hop_ns* per topology hop and *visit_ns* per invalidation stop.
    """
    worst = 0.0
    for chain in plan.chains:
        t = 0.0
        current = plan.home
        for node in chain:
            t += topology.distance(current, node) * hop_ns + visit_ns
            current = node
        t += topology.distance(current, plan.requester) * hop_ns
        worst = max(worst, t)
    return worst


def fanout_latency(
    topology: Topology,
    home: int,
    requester: int,
    sharers: Sequence[int],
    hop_ns: float,
    visit_ns: float,
    inject_ns: float,
    gather_ns: float,
) -> float:
    """Latency of the conventional scheme (e.g. DASH/Origin): the home
    serialises one invalidation per sharer (*inject_ns* apart), each sharer
    acks to the requester, and the requester serialises ack sink handling
    (*gather_ns* apart).

    The serialisation at both ends is exactly what CMI avoids.
    """
    targets = sorted(set(sharers) - {requester})
    if not targets:
        return 0.0
    arrival_times = []
    for i, node in enumerate(targets):
        t = i * inject_ns  # home-engine occupancy serialises injections
        t += topology.distance(home, node) * hop_ns + visit_ns
        t += topology.distance(node, requester) * hop_ns
        arrival_times.append(t)
    arrival_times.sort()
    done = 0.0
    for t in arrival_times:
        done = max(done, t) + gather_ns
    return done


def fanout_messages(sharers: Sequence[int], requester: int) -> Tuple[int, int]:
    """(injected invalidations, acks) for the conventional scheme."""
    targets = set(sharers) - {requester}
    return len(targets), len(targets)


def buffering_bound(tsrf_entries: int = 16, engines: int = 2,
                    max_messages: int = MAX_CMI_MESSAGES) -> int:
    """Per-node message-header buffering bound from Section 2.5.3."""
    return engines * tsrf_entries * max_messages
