"""CRC for channel error detection (Sections 2.6.1 and 2.7).

Piranha sends 2 extra bits per 16 data bits for CRC, flow control and error
recovery, and protects most datapaths with CRC.  We model the channel CRC
with CRC-16/CCITT computed over a packet's words; the channel layer
(:mod:`repro.interconnect.channel`) uses it for its piggyback
retransmission handshake.
"""

from __future__ import annotations

from typing import Iterable, List

CRC16_POLY = 0x1021  # CCITT
CRC16_INIT = 0xFFFF


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


_TABLE = _build_table()


def crc16(data: bytes, init: int = CRC16_INIT) -> int:
    """Table-driven CRC-16/CCITT over *data*."""
    crc = init
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


def crc16_bitwise(data: bytes, init: int = CRC16_INIT) -> int:
    """Bit-serial reference implementation (used to validate the table)."""
    crc = init
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def crc16_words(words16: Iterable[int]) -> int:
    """CRC over a sequence of 16-bit channel data words (big-endian)."""
    buf = bytearray()
    for word in words16:
        if not 0 <= word < (1 << 16):
            raise ValueError(f"channel word {word:#x} exceeds 16 bits")
        buf.append(word >> 8)
        buf.append(word & 0xFF)
    return crc16(bytes(buf))
