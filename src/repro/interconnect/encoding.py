"""DC-balanced channel encoding (Section 2.6.1).

Piranha's inter-chip channels are 22 wires per direction.  The signalling
scheme encodes 19 bits into a 22-bit **DC-balanced** word: exactly 11 of the
22 wires carry '1' while the other 11 carry '0', so the net current flow
along a channel is zero and a reference voltage for differential receivers
can be generated at the termination.

16 data bits plus 2 CRC/flow-control bits (18 bits total) are mapped onto
balanced codewords chosen so that **no two codewords are complementary**.
The 19th bit — generated randomly by the hardware to DC-balance each wire
statistically in the time domain — is encoded by *inverting all 22 bits*.
The resulting code is inversion-insensitive, which is what lets Piranha
links run over fibre ribbons or transformer coupling.

We realise the codebook combinatorially rather than with a lookup table:
the set of weight-11 22-bit words whose least-significant bit is 0 contains
exactly one member of every complementary pair, and there are
C(21, 11) = 352,716 of them — comfortably more than the 2^18 = 262,144
codewords needed.  Codewords are (un)ranked in lexicographic order with
binomial-coefficient arithmetic.
"""

from __future__ import annotations

from math import comb

#: Total wires per channel direction.
WORD_BITS = 22
#: Wires that must be '1' in every codeword.
WORD_WEIGHT = 11
#: Payload bits carried per codeword (16 data + 2 CRC/flow control + 1 random).
PAYLOAD_BITS = 19
#: Bits covered by the complementary-free codebook.
CODED_BITS = 18

_CODEBOOK_SIZE = comb(WORD_BITS - 1, WORD_WEIGHT)  # LSB fixed at 0


class EncodingError(ValueError):
    """Raised when a word fails validation during encode/decode."""


def popcount(word: int) -> int:
    """Number of set bits in *word*."""
    return bin(word).count("1")


def is_balanced(word: int) -> bool:
    """True when *word* is a legal 22-bit DC-balanced channel word."""
    return 0 <= word < (1 << WORD_BITS) and popcount(word) == WORD_WEIGHT


def _unrank_constant_weight(rank: int, bits: int, weight: int) -> int:
    """Return the *rank*-th (0-based, lexicographic by bitstring value)
    *bits*-bit word with exactly *weight* set bits."""
    if not 0 <= rank < comb(bits, weight):
        raise EncodingError(f"rank {rank} out of range for C({bits},{weight})")
    word = 0
    remaining_weight = weight
    for position in range(bits - 1, -1, -1):
        if remaining_weight == 0:
            break
        # Words with this bit clear: choose all `remaining_weight` ones from
        # the lower `position` bits.
        with_bit_clear = comb(position, remaining_weight)
        if rank >= with_bit_clear:
            word |= 1 << position
            rank -= with_bit_clear
            remaining_weight -= 1
    return word


def _rank_constant_weight(word: int, bits: int, weight: int) -> int:
    """Inverse of :func:`_unrank_constant_weight`."""
    if popcount(word) != weight:
        raise EncodingError(f"word {word:#x} does not have weight {weight}")
    rank = 0
    remaining_weight = weight
    for position in range(bits - 1, -1, -1):
        if remaining_weight == 0:
            break
        if word & (1 << position):
            rank += comb(position, remaining_weight)
            remaining_weight -= 1
    return rank


def encode(data18: int, random_bit: int = 0) -> int:
    """Encode 18 payload bits (+ the random 19th bit) into a balanced word.

    ``data18`` packs 16 data bits and 2 CRC/flow-control bits.  When
    ``random_bit`` is 1 the entire codeword is inverted — by construction
    the inverted word is never itself a base codeword, so the receiver can
    recover the bit unambiguously.
    """
    if not 0 <= data18 < (1 << CODED_BITS):
        raise EncodingError(f"payload {data18:#x} exceeds {CODED_BITS} bits")
    if random_bit not in (0, 1):
        raise EncodingError(f"random bit must be 0 or 1, got {random_bit}")
    # Bits 1..21 hold a weight-11 pattern; bit 0 stays 0.  Unranking over
    # 21 positions then shifting left by one keeps the LSB clear.
    word = _unrank_constant_weight(data18, WORD_BITS - 1, WORD_WEIGHT) << 1
    if random_bit:
        word ^= (1 << WORD_BITS) - 1
    return word


def decode(word: int) -> tuple:
    """Decode a 22-bit channel word; returns ``(data18, random_bit)``.

    Raises :class:`EncodingError` for words that are not DC balanced or do
    not belong to the codebook.
    """
    if not is_balanced(word):
        raise EncodingError(f"word {word:#x} is not DC balanced")
    random_bit = word & 1
    if random_bit:
        word ^= (1 << WORD_BITS) - 1
    data18 = _rank_constant_weight(word >> 1, WORD_BITS - 1, WORD_WEIGHT)
    if data18 >= (1 << CODED_BITS):
        raise EncodingError(f"word {word:#x} is outside the codebook")
    return data18, random_bit


def encode_stream(words16, crc_bits, random_bits):
    """Encode parallel sequences of 16-bit data words, 2-bit CRC/flow-control
    fields, and random bits into channel words."""
    out = []
    for data16, crc2, rnd in zip(words16, crc_bits, random_bits):
        if not 0 <= data16 < (1 << 16):
            raise EncodingError(f"data word {data16:#x} exceeds 16 bits")
        if not 0 <= crc2 < 4:
            raise EncodingError(f"CRC/flow field {crc2:#x} exceeds 2 bits")
        out.append(encode((crc2 << 16) | data16, rnd))
    return out


def decode_stream(words):
    """Inverse of :func:`encode_stream`; returns (data16s, crc2s, randoms)."""
    data16s, crc2s, randoms = [], [], []
    for word in words:
        data18, rnd = decode(word)
        data16s.append(data18 & 0xFFFF)
        crc2s.append(data18 >> 16)
        randoms.append(rnd)
    return data16s, crc2s, randoms


def codebook_capacity() -> int:
    """Number of available non-complementary balanced codewords."""
    return _CODEBOOK_SIZE
