"""The Piranha router (RT) — Section 2.6.1.

Derived from the S3.mp S-Connect: a topology-independent, **adaptive,
virtual cut-through** router built around a common buffer pool shared
across all priorities and virtual lanes.  When every minimal output is
busy, the router *hot-potato* misroutes the packet instead of holding it,
incrementing the packet's age; age escalates priority, so a misrouted
packet eventually wins arbitration everywhere.  This is the property that
lets Piranha's buffering grow linearly rather than quadratically with node
count.

Timing model: a packet that arrives (or is injected) is forwarded after a
single fall-through cycle when an output is free; links add serialisation
(2 or 10 interconnect cycles for Short/Long packets — 64 data bits per
500 MHz cycle) plus a fixed propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..sim.engine import Clock, Component, Simulator, ns
from .packets import Packet
from .queues import InputQueue, OutputQueue
from .topology import Topology


@dataclass(frozen=True)
class RouterParams:
    """Router/link timing and buffering parameters."""

    clock_mhz: float = 500.0       # interconnect (system) clock
    fall_through_cycles: int = 1   # optimised fall-through path (§2.6.2)
    propagation_ns: float = 2.0    # wire flight time between adjacent nodes
    buffer_pool: int = 32          # shared packet buffers per router
    age_per_priority: int = 4      # age ticks per priority escalation
    misroute_threshold: int = 2    # busy outputs tolerated before hot potato

    def clock(self) -> Clock:
        return Clock(self.clock_mhz)


class Link:
    """One direction of a point-to-point channel between two routers."""

    __slots__ = ("src", "dst", "free_at", "cycle_ps", "propagation_ps", "packets")

    def __init__(self, src: int, dst: int, params: RouterParams) -> None:
        self.src = src
        self.dst = dst
        self.free_at = 0
        self.cycle_ps = params.clock().period_ps
        self.propagation_ps = ns(params.propagation_ns)
        self.packets = 0

    def serialization_ps(self, pkt: Packet) -> int:
        return pkt.wire_cycles * self.cycle_ps

    def busy(self, now: int) -> bool:
        return self.free_at > now

    def send(self, now: int, pkt: Packet) -> int:
        """Occupy the link; returns the arrival time at the far end."""
        start = max(now, self.free_at)
        self.free_at = start + self.serialization_ps(pkt)
        self.packets += 1
        return self.free_at + self.propagation_ps


class Router(Component):
    """Per-node router: transit forwarding, local injection, local delivery."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        topology: Topology,
        iq: InputQueue,
        oq: OutputQueue,
        params: Optional[RouterParams] = None,
    ) -> None:
        super().__init__(sim, f"node{node_id}.rt")
        self.node_id = node_id
        self.topology = topology
        self.iq = iq
        self.oq = oq
        self.params = params or RouterParams()
        self._clock = self.params.clock()
        self.links: Dict[int, Link] = {}
        self.peers: Dict[int, "Router"] = {}
        self.buffered = 0
        self.c_transit = self.stats.counter("transit_packets")
        self.c_injected = self.stats.counter("injected_packets")
        self.c_delivered = self.stats.counter("delivered_packets")
        self.c_misroutes = self.stats.counter("misroutes")
        #: wire bytes transmitted on this router's outgoing links (header
        #: + data sections) — the interval sampler's router-traffic series
        self.c_bytes = self.stats.counter("transmitted_bytes")
        self.a_hops = self.stats.accumulator("delivered_age")
        self.a_latency = self.stats.accumulator("delivered_latency_ps")
        oq.attach_router(self._kick)

    # -- wiring ----------------------------------------------------------

    def connect(self, peer: "Router") -> None:
        """Create the outgoing half-channel towards *peer*."""
        self.links[peer.node_id] = Link(self.node_id, peer.node_id, self.params)
        self.peers[peer.node_id] = peer

    # -- injection -------------------------------------------------------

    def _kick(self) -> None:
        """OQ signalled new work; drain it next cycle.

        The paper's policy: the router gives priority to transit traffic
        and accepts new packets only when it has free buffer space.
        """
        self.schedule(0, self._drain_oq)

    def _drain_oq(self) -> None:
        while self.buffered < self.params.buffer_pool:
            pkt = self.oq.pop()
            if pkt is None:
                return
            pkt.inject_time = self.now
            self.c_injected.inc()
            self._handle(pkt)
        # Buffer pressure: retry once a cycle until space frees up.
        self.schedule(self._clock.cycles(1), self._drain_oq)

    def inject(self, pkt: Packet) -> bool:
        """Convenience entry point used by tests: push via the OQ."""
        return self.oq.offer(pkt)

    # -- forwarding ------------------------------------------------------

    def _handle(self, pkt: Packet) -> None:
        if pkt.dst == self.node_id:
            self._deliver(pkt)
            return
        self.buffered += 1
        self.schedule(self._clock.cycles(self.params.fall_through_cycles), self._forward, pkt)

    def _deliver(self, pkt: Packet) -> None:
        if self.iq.receive(pkt):
            self.c_delivered.inc()
            self.a_hops.add(pkt.age)
            self.a_latency.add(self.now - pkt.inject_time)
        else:
            # IQ full: hold the packet in the router buffer and retry; the
            # IQ is sized to make this rare (§2.6.2).
            self.schedule(self._clock.cycles(1), self._deliver, pkt)

    def _forward(self, pkt: Packet) -> None:
        minimal = [
            n for n in self.topology.minimal_next_hops(self.node_id, pkt.dst)
            if n in self.links
        ]
        free_minimal = [n for n in minimal if not self.links[n].busy(self.now)]
        if free_minimal:
            choice = min(free_minimal, key=lambda n: self.links[n].free_at)
            self._transmit(pkt, choice)
            return
        # All minimal outputs busy: hot potato onto any free output, with
        # age increment and priority escalation.
        free_any = [n for n in self.links if not self.links[n].busy(self.now)]
        if free_any and len(minimal) <= self.params.misroute_threshold:
            choice = free_any[0]
            pkt.age += 1
            pkt.priority = min(3, pkt.priority + pkt.age // self.params.age_per_priority)
            self.c_misroutes.inc()
            self._transmit(pkt, choice)
            return
        # Everything busy: wait for the earliest minimal link.
        target = min(minimal, key=lambda n: self.links[n].free_at)
        wait = max(self._clock.cycles(1), self.links[target].free_at - self.now)
        self.schedule(wait, self._forward, pkt)

    def _transmit(self, pkt: Packet, neighbor: int) -> None:
        link = self.links[neighbor]
        arrival = link.send(self.now, pkt)
        self.buffered -= 1
        self.c_transit.inc()
        self.c_bytes.inc(pkt.size_bits // 8)
        if pkt.probe is not None:
            # one stamp per link hop, at the far-end arrival time, so
            # multi-hop flight shows up as accumulated pkt_transit time
            pkt.probe.stamp("pkt_transit", arrival)
        peer = self.peers[neighbor]
        self.schedule(arrival - self.now, peer._arrive, pkt)

    def _arrive(self, pkt: Packet) -> None:
        """A packet finished flying over an incoming channel."""
        self._handle(pkt)


def build_routers(
    sim: Simulator,
    topology: Topology,
    params: Optional[RouterParams] = None,
    iq_capacity: int = 64,
    oq_capacity: int = 16,
) -> Dict[int, Router]:
    """Instantiate and fully wire routers (+IQ/OQ) for every topology node."""
    routers: Dict[int, Router] = {}
    for node in topology.nodes:
        iq = InputQueue(sim, f"node{node}.iq", capacity=iq_capacity)
        oq = OutputQueue(sim, f"node{node}.oq", capacity=oq_capacity)
        routers[node] = Router(sim, node, topology, iq, oq, params)
    for node in topology.nodes:
        for nbr in topology.neighbors(node):
            routers[node].connect(routers[nbr])
    return routers
