"""System-interconnect packet formats (Section 2.6).

Two packet types exist on the wire: the **Short** packet is a 128-bit
header used for all data-less transactions; the **Long** packet carries the
same header plus a 64-byte (512-bit) data section.  At 64 data bits per
500 MHz system clock, packets serialise in 2 or 10 interconnect clock
cycles respectively — exactly the figures the paper quotes.

The 128-bit header is packed/unpacked bit-exactly here; the 4-bit packet
type field is what the input queue's *disposition vector* indexes to steer
arriving packets to their target module (Section 2.6.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class Lane(enum.IntEnum):
    """Virtual lanes used for deadlock avoidance (Section 2.5.3).

    The low-priority lane (L) carries requests sent to a home node (except
    writebacks/replacements, which use H); the high-priority lane (H)
    carries forwarded requests and all replies; the I/O lane is reserved
    for I/O traffic.
    """

    IO = 0
    L = 1
    H = 2


class PacketType(enum.IntEnum):
    """The 16 major packet types (4-bit wire encoding)."""

    # Requests to a home node (lane L)
    READ = 0
    READ_EXCLUSIVE = 1
    EXCLUSIVE = 2          # requester already holds a shared copy
    EXCLUSIVE_NO_DATA = 3  # Alpha wh64 write-hint: full-line write
    WRITEBACK = 4          # to home; uses lane H per the paper
    # Forwarded requests (lane H)
    FWD_READ = 5
    FWD_READ_EXCLUSIVE = 6
    INVALIDATE = 7
    CMI_INVALIDATE = 8     # cruise-missile invalidation chain
    # Replies (lane H)
    DATA_REPLY = 9
    DATA_EXCLUSIVE_REPLY = 10
    ACK_REPLY = 11         # e.g. exclusive upgrade granted, no data
    INVAL_ACK = 12
    WRITEBACK_ACK = 13
    # Miscellaneous
    INTERRUPT = 14
    CONTROL = 15           # system-controller / initialisation traffic


#: Packet types that carry a 64-byte data section (Long packets).
DATA_BEARING = frozenset(
    {
        PacketType.WRITEBACK,
        PacketType.DATA_REPLY,
        PacketType.DATA_EXCLUSIVE_REPLY,
    }
)

#: Default lane assignment per packet type (Section 2.5.3).
DEFAULT_LANE = {
    PacketType.READ: Lane.L,
    PacketType.READ_EXCLUSIVE: Lane.L,
    PacketType.EXCLUSIVE: Lane.L,
    PacketType.EXCLUSIVE_NO_DATA: Lane.L,
    PacketType.WRITEBACK: Lane.H,
    PacketType.FWD_READ: Lane.H,
    PacketType.FWD_READ_EXCLUSIVE: Lane.H,
    PacketType.INVALIDATE: Lane.H,
    PacketType.CMI_INVALIDATE: Lane.H,
    PacketType.DATA_REPLY: Lane.H,
    PacketType.DATA_EXCLUSIVE_REPLY: Lane.H,
    PacketType.ACK_REPLY: Lane.H,
    PacketType.INVAL_ACK: Lane.H,
    PacketType.WRITEBACK_ACK: Lane.H,
    PacketType.INTERRUPT: Lane.IO,
    PacketType.CONTROL: Lane.IO,
}

SHORT_BITS = 128
LONG_BITS = 128 + 512

# Header field widths (sum = 128)
_FIELDS: Tuple[Tuple[str, int], ...] = (
    ("ptype", 4),
    ("src", 10),      # up to 1024 nodes
    ("dst", 10),
    ("lane", 2),
    ("priority", 2),  # 4 interconnect priority levels (Section 2.6.2)
    ("age", 8),       # hot-potato age escalation
    ("txn_id", 16),
    ("addr", 44),     # line address bits
    ("reserved", 32),
)
assert sum(width for _, width in _FIELDS) == SHORT_BITS


@dataclass
class Packet:
    """One interconnect packet.

    ``route`` and ``info`` carry model-level bookkeeping (a CMI visit chain,
    a directory snapshot travelling with a forwarded request, inval-ack
    counts) that in hardware lives in the reserved header bits or the data
    section; they do not change the wire size accounting.
    """

    ptype: PacketType
    src: int
    dst: int
    addr: int = 0
    txn_id: int = 0
    lane: Optional[Lane] = None
    priority: int = 1
    age: int = 0
    has_data: Optional[bool] = None
    route: tuple = ()
    info: dict = field(default_factory=dict)
    inject_time: int = 0
    #: sampled-latency probe riding the owning transaction (model-level
    #: bookkeeping like ``info``; excluded from wire-size accounting).
    #: Almost always None — instrumentation guards with ``is not None``.
    probe: Optional[object] = None

    def __post_init__(self) -> None:
        if self.lane is None:
            self.lane = DEFAULT_LANE[self.ptype]
        if self.has_data is None:
            self.has_data = self.ptype in DATA_BEARING
        if not 0 <= self.priority < 4:
            raise ValueError(f"priority must be 0..3, got {self.priority}")

    @property
    def size_bits(self) -> int:
        """Wire size: Short (128) or Long (640) packet."""
        return LONG_BITS if self.has_data else SHORT_BITS

    @property
    def wire_cycles(self) -> int:
        """Serialisation time in 500 MHz interconnect clock cycles (2 / 10)."""
        return 10 if self.has_data else 2

    def pack_header(self) -> int:
        """Pack the 128-bit wire header."""
        values = {
            "ptype": int(self.ptype),
            "src": self.src,
            "dst": self.dst,
            "lane": int(self.lane),
            "priority": self.priority,
            "age": min(self.age, 255),
            "txn_id": self.txn_id & 0xFFFF,
            "addr": (self.addr >> 6) & ((1 << 44) - 1),  # line address
            "reserved": 0,
        }
        header = 0
        shift = SHORT_BITS
        for name, width in _FIELDS:
            shift -= width
            value = values[name]
            if not 0 <= value < (1 << width):
                raise ValueError(f"field {name}={value} exceeds {width} bits")
            header |= value << shift
        return header

    @classmethod
    def unpack_header(cls, header: int) -> "Packet":
        """Recover a packet (header fields only) from its 128-bit encoding."""
        if not 0 <= header < (1 << SHORT_BITS):
            raise ValueError("header must be a 128-bit integer")
        values = {}
        shift = SHORT_BITS
        for name, width in _FIELDS:
            shift -= width
            values[name] = (header >> shift) & ((1 << width) - 1)
        return cls(
            ptype=PacketType(values["ptype"]),
            src=values["src"],
            dst=values["dst"],
            addr=values["addr"] << 6,
            txn_id=values["txn_id"],
            lane=Lane(values["lane"]),
            priority=values["priority"],
            age=values["age"],
        )

    def is_request(self) -> bool:
        """True for request-class packets (as opposed to replies)."""
        return self.ptype in (
            PacketType.READ,
            PacketType.READ_EXCLUSIVE,
            PacketType.EXCLUSIVE,
            PacketType.EXCLUSIVE_NO_DATA,
            PacketType.WRITEBACK,
            PacketType.FWD_READ,
            PacketType.FWD_READ_EXCLUSIVE,
            PacketType.INVALIDATE,
            PacketType.CMI_INVALIDATE,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.ptype.name}, {self.src}->{self.dst}, "
            f"addr={self.addr:#x}, txn={self.txn_id})"
        )
