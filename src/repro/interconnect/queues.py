"""Input and output queues between a node and its router (Section 2.6.2).

The **output queue (OQ)** decouples the router from the local node with a
small set of per-priority FIFOs.  The fall-through path costs a single
cycle when the router is ready; under load the router favours transit
traffic and drains the OQ only when it has free buffers and no incoming
packets.  Lower-priority packets can never block higher-priority traffic.

The **input queue (IQ)** is larger (fast removal of terminal packets keeps
the expensive router buffers free), also maintains four priority levels,
and — unlike the OQ — lets *low*-priority traffic bypass blocked
high-priority traffic when the former's destination module can accept it.
Arriving packets are steered by a **disposition vector** indexed by the
4-bit packet type.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional

from ..sim.engine import Component, Simulator
from .packets import Packet, PacketType

PRIORITIES = 4


class PriorityFifos:
    """Four per-priority FIFOs with a shared capacity limit."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self.fifos = [deque() for _ in range(PRIORITIES)]

    def __len__(self) -> int:
        return sum(len(f) for f in self.fifos)

    @property
    def full(self) -> bool:
        return len(self) >= self.capacity

    def push(self, pkt: Packet) -> bool:
        """Append *pkt*; returns False when the queue is full."""
        if self.full:
            return False
        self.fifos[pkt.priority].append(pkt)
        return True

    def peek_highest(self) -> Optional[Packet]:
        """Head packet of the highest non-empty priority level."""
        for prio in range(PRIORITIES - 1, -1, -1):
            if self.fifos[prio]:
                return self.fifos[prio][0]
        return None

    def pop_highest(self) -> Optional[Packet]:
        for prio in range(PRIORITIES - 1, -1, -1):
            if self.fifos[prio]:
                return self.fifos[prio].popleft()
        return None

    def pop_first(self, predicate: Callable[[Packet], bool]) -> Optional[Packet]:
        """Pop the head of the highest priority level whose head packet
        satisfies *predicate* (used for the IQ bypass rule)."""
        for prio in range(PRIORITIES - 1, -1, -1):
            fifo = self.fifos[prio]
            if fifo and predicate(fifo[0]):
                return fifo.popleft()
        return None


class OutputQueue(Component):
    """OQ: buffers packets from the protocol engines / system controller
    until the router accepts them."""

    def __init__(self, sim: Simulator, name: str, capacity: int = 16) -> None:
        super().__init__(sim, name)
        self.queue = PriorityFifos(capacity)
        self._router_pull: Optional[Callable[[], None]] = None
        self.c_accepted = self.stats.counter("packets_accepted")
        self.c_rejected = self.stats.counter("packets_rejected")

    def attach_router(self, pull: Callable[[], None]) -> None:
        """Register the router's kick callback, invoked when work arrives."""
        self._router_pull = pull

    def offer(self, pkt: Packet) -> bool:
        """Packet switch pushes a packet into the OQ; False when full."""
        if not self.queue.push(pkt):
            self.c_rejected.inc()
            return False
        self.c_accepted.inc()
        if self._router_pull is not None:
            self._router_pull()
        return True

    def peek(self) -> Optional[Packet]:
        return self.queue.peek_highest()

    def pop(self) -> Optional[Packet]:
        return self.queue.pop_highest()

    def __len__(self) -> int:
        return len(self.queue)


class InputQueue(Component):
    """IQ: receives terminal packets from the router and delivers them to
    target modules through the disposition vector."""

    def __init__(self, sim: Simulator, name: str, capacity: int = 64) -> None:
        super().__init__(sim, name)
        self.queue = PriorityFifos(capacity)
        #: disposition vector: PacketType -> delivery callback
        self.disposition: Dict[PacketType, Callable[[Packet], bool]] = {}
        self.c_received = self.stats.counter("packets_received")
        self.c_delivered = self.stats.counter("packets_delivered")
        self.c_bypassed = self.stats.counter("low_priority_bypasses")
        self._drain_scheduled = False

    def set_disposition(self, ptype: PacketType, handler: Callable[[Packet], bool]) -> None:
        """Program one entry of the disposition vector.  The handler returns
        True when the module accepted the packet."""
        self.disposition[ptype] = handler

    def set_default_disposition(self, handler: Callable[[Packet], bool]) -> None:
        """Program every not-yet-set entry to *handler* (the system
        controller receives everything by default after reset)."""
        for ptype in PacketType:
            self.disposition.setdefault(ptype, handler)

    @property
    def full(self) -> bool:
        return self.queue.full

    def receive(self, pkt: Packet) -> bool:
        """Router hands over a terminal packet; False when the IQ is full."""
        if not self.queue.push(pkt):
            return False
        self.c_received.inc()
        self._schedule_drain()
        return True

    def _schedule_drain(self) -> None:
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self.schedule(0, self._drain)

    def _drain(self) -> None:
        self._drain_scheduled = False
        progressed = True
        while progressed:
            progressed = False
            # Highest-priority head first; if its destination is blocked the
            # bypass rule lets a lower-priority head proceed instead.
            pkt = self.queue.pop_first(self._deliverable)
            if pkt is not None:
                head = self.queue.peek_highest()
                if head is not None and head.priority > pkt.priority:
                    self.c_bypassed.inc()
                handler = self._handler_for(pkt)
                delivered = handler(pkt)
                if not delivered:  # pragma: no cover - handler lied in probe
                    raise RuntimeError(f"{self.name}: handler refused probed packet {pkt}")
                self.c_delivered.inc()
                progressed = True
        if len(self.queue):
            # Something is still blocked; retry after a cycle.
            self.schedule(2000, self._poll_blocked)

    def _poll_blocked(self) -> None:
        self._schedule_drain()

    def _handler_for(self, pkt: Packet) -> Callable[[Packet], bool]:
        handler = self.disposition.get(pkt.ptype)
        if handler is None:
            raise KeyError(
                f"{self.name}: no disposition entry for {pkt.ptype.name}"
            )
        return handler

    def _deliverable(self, pkt: Packet) -> bool:
        probe = getattr(self._handler_for(pkt), "can_accept", None)
        if probe is not None:
            return bool(probe(pkt))
        return True

    def __len__(self) -> int:
        return len(self.queue)
