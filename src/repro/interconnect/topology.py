"""Interconnect topologies (Section 2.6).

The Piranha router is topology independent: processing nodes expose four
point-to-point channels, I/O nodes two (redundancy), and the system scales
gluelessly to 1024 nodes over arbitrary graphs with dynamic
reconfigurability.  This module builds and validates such graphs and
computes the routing tables the routers consult.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

#: Channel counts per node kind (Sections 2.6.1 and 2, Figure 2).
MAX_CHANNELS = {"proc": 4, "io": 2}
MAX_NODES = 1024


class TopologyError(ValueError):
    """Raised for malformed interconnect graphs."""


class Topology:
    """An interconnect graph plus routing tables.

    Nodes are integer ids with a ``kind`` attribute (``"proc"`` or
    ``"io"``).  Routing tables give, for each (node, destination) pair, the
    list of next-hop neighbours on *minimal* paths — the adaptive router
    picks among them and may deliberately misroute (hot potato) when all
    are busy.
    """

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self._next_hops: Optional[Dict[int, Dict[int, Tuple[int, ...]]]] = None
        self._dist: Optional[Dict[int, Dict[int, int]]] = None

    # -- construction ----------------------------------------------------

    def add_node(self, node: int, kind: str = "proc") -> None:
        if kind not in MAX_CHANNELS:
            raise TopologyError(f"unknown node kind {kind!r}")
        if self.graph.number_of_nodes() >= MAX_NODES and node not in self.graph:
            raise TopologyError(f"Piranha systems scale to at most {MAX_NODES} nodes")
        self.graph.add_node(node, kind=kind)
        self._invalidate()

    def add_link(self, a: int, b: int) -> None:
        """Connect two nodes with a bidirectional channel pair."""
        if a == b:
            raise TopologyError("self links are not allowed")
        for node in (a, b):
            if node not in self.graph:
                raise TopologyError(f"node {node} does not exist")
        for node in (a, b):
            limit = MAX_CHANNELS[self.kind(node)]
            if self.graph.degree(node) >= limit and not self.graph.has_edge(a, b):
                raise TopologyError(
                    f"node {node} ({self.kind(node)}) already uses all "
                    f"{limit} channels"
                )
        self.graph.add_edge(a, b)
        self._invalidate()

    def remove_link(self, a: int, b: int) -> None:
        """Dynamic reconfiguration / hot-swap: drop a channel pair."""
        if not self.graph.has_edge(a, b):
            raise TopologyError(f"no link between {a} and {b}")
        self.graph.remove_edge(a, b)
        self._invalidate()

    def _invalidate(self) -> None:
        self._next_hops = None
        self._dist = None

    # -- queries ---------------------------------------------------------

    def kind(self, node: int) -> str:
        return self.graph.nodes[node]["kind"]

    @property
    def nodes(self) -> List[int]:
        return sorted(self.graph.nodes)

    def neighbors(self, node: int) -> List[int]:
        return sorted(self.graph.neighbors(node))

    def is_connected(self) -> bool:
        return self.graph.number_of_nodes() > 0 and nx.is_connected(self.graph)

    def validate(self) -> None:
        """Check degree limits and connectivity; raises TopologyError."""
        if not self.is_connected():
            raise TopologyError("interconnect graph is not connected")
        for node in self.graph.nodes:
            limit = MAX_CHANNELS[self.kind(node)]
            if self.graph.degree(node) > limit:
                raise TopologyError(
                    f"node {node} uses {self.graph.degree(node)} channels, "
                    f"limit is {limit}"
                )

    # -- routing ---------------------------------------------------------

    def _build_tables(self) -> None:
        dist = dict(nx.all_pairs_shortest_path_length(self.graph))
        next_hops: Dict[int, Dict[int, Tuple[int, ...]]] = {}
        for node in self.graph.nodes:
            table: Dict[int, Tuple[int, ...]] = {}
            for dest in self.graph.nodes:
                if dest == node:
                    continue
                hops = tuple(
                    nbr
                    for nbr in sorted(self.graph.neighbors(node))
                    if dist[nbr].get(dest, float("inf")) == dist[node][dest] - 1
                )
                table[dest] = hops
            next_hops[node] = table
        self._next_hops = next_hops
        self._dist = dist

    def minimal_next_hops(self, node: int, dest: int) -> Tuple[int, ...]:
        """Neighbours of *node* on minimal paths to *dest*."""
        if self._next_hops is None:
            self._build_tables()
        return self._next_hops[node][dest]

    def distance(self, a: int, b: int) -> int:
        """Hop count between two nodes."""
        if self._dist is None:
            self._build_tables()
        return self._dist[a][b]


# -- factories -----------------------------------------------------------


def ring(n: int, io_nodes: Iterable[int] = ()) -> Topology:
    """A ring of *n* nodes; nodes listed in *io_nodes* are I/O chips."""
    if n < 2:
        raise TopologyError("a ring needs at least two nodes")
    io_set = set(io_nodes)
    topo = Topology()
    for node in range(n):
        topo.add_node(node, "io" if node in io_set else "proc")
    for node in range(n):
        topo.add_link(node, (node + 1) % n)
    topo.validate()
    return topo


def line(n: int, io_nodes: Iterable[int] = ()) -> Topology:
    """A linear chain (used for tiny systems and unit tests)."""
    if n < 1:
        raise TopologyError("need at least one node")
    io_set = set(io_nodes)
    topo = Topology()
    for node in range(n):
        topo.add_node(node, "io" if node in io_set else "proc")
    for node in range(n - 1):
        topo.add_link(node, node + 1)
    if n > 1:
        topo.validate()
    return topo


def mesh2d(width: int, height: int) -> Topology:
    """A width x height 2-D mesh of processing nodes (max degree 4)."""
    if width < 1 or height < 1:
        raise TopologyError("mesh dimensions must be positive")
    topo = Topology()
    def node_id(x: int, y: int) -> int:
        return y * width + x
    for y in range(height):
        for x in range(width):
            topo.add_node(node_id(x, y), "proc")
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                topo.add_link(node_id(x, y), node_id(x + 1, y))
            if y + 1 < height:
                topo.add_link(node_id(x, y), node_id(x, y + 1))
    if width * height > 1:
        topo.validate()
    return topo


def fully_connected(n: int) -> Topology:
    """All-to-all; only legal up to 5 processing nodes (4 channels each)."""
    if n > MAX_CHANNELS["proc"] + 1:
        raise TopologyError(
            f"fully connected topology limited to {MAX_CHANNELS['proc'] + 1} "
            f"nodes by the four-channel budget"
        )
    topo = Topology()
    for node in range(n):
        topo.add_node(node, "proc")
    for a in range(n):
        for b in range(a + 1, n):
            topo.add_link(a, b)
    if n > 1:
        topo.validate()
    return topo


def attach_io_nodes(topo: Topology, count: int) -> List[int]:
    """Attach *count* I/O nodes, each dual-homed to the two processing nodes
    with the most free channels (redundancy per Section 2.6.1)."""
    added = []
    for _ in range(count):
        node_id = max(topo.nodes) + 1 if topo.nodes else 0
        proc_nodes = [n for n in topo.nodes if topo.kind(n) == "proc"]
        slots = sorted(
            proc_nodes,
            key=lambda n: (topo.graph.degree(n), n),
        )
        hosts = [n for n in slots if topo.graph.degree(n) < MAX_CHANNELS["proc"]][:2]
        if not hosts:
            raise TopologyError("no processing node has a free channel")
        topo.add_node(node_id, "io")
        for host in hosts:
            topo.add_link(node_id, host)
        added.append(node_id)
    topo.validate()
    return added
