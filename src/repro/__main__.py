"""Command-line entry point: ``python -m repro``.

Runs one workload on one configuration and prints the standard report::

    python -m repro run --config P8 --workload oltp
    python -m repro run --config P4 --nodes 4 --workload oltp --check
    python -m repro run --workload oltp --metrics out.json \
        --probe-rate 64 --sample-interval 50
    python -m repro report --workload oltp --json
    python -m repro run --workload oltp --scale 0.25 --trace-spans \
        --trace-out trace.json          # open trace.json in Perfetto
    python -m repro profile --workload oltp --scale 0.25
    python -m repro run --workload oltp --telemetry live.jsonl &
    python -m repro watch live.jsonl --follow
    python -m repro sweep --config P8 --workload oltp \
        --field l2.size_bytes --values 512K,1M,2M --jobs 4
    python -m repro sweep ... --warmup --resume
    python -m repro checkpoint save --config P8 --workload oltp \
        --out warm.ckpt
    python -m repro checkpoint info warm.ckpt
    python -m repro checkpoint restore warm.ckpt --metrics out.json
    python -m repro cache
    python -m repro cache --clear
    python -m repro table1
    python -m repro floorplan
    python -m repro list

Sweeps fan out across processes with ``--jobs N`` (or ``REPRO_JOBS``),
and all harness entry points reuse the persistent result cache; see the
README's "Performance" section.
"""

from __future__ import annotations

import argparse
import sys

from .area import floorplan_summary
from .core import CoherenceChecker, PRESETS, PiranhaSystem, preset, table1
from .harness.report import breakdown_bar, format_table
from .isa.kernels import KERNEL_NAMES, KernelWorkload, scaled_params
from .workloads import (
    DssParams,
    DssWorkload,
    MicroParams,
    MigratoryWrites,
    OltpParams,
    OltpWorkload,
    TpccWorkload,
)
from .workloads.web import WebParams, WebWorkload

WORKLOADS = {
    "oltp": lambda cpus, nodes, scale: OltpWorkload(
        _scaled_oltp(scale), cpus_per_node=cpus, num_nodes=nodes),
    "dss": lambda cpus, nodes, scale: DssWorkload(
        DssParams(rows=max(40, int(260 * scale))),
        cpus_per_node=cpus, num_nodes=nodes),
    "tpcc": lambda cpus, nodes, scale: TpccWorkload(
        cpus_per_node=cpus, num_nodes=nodes),
    "web": lambda cpus, nodes, scale: WebWorkload(
        WebParams(queries=max(40, int(150 * scale))),
        cpus_per_node=cpus, num_nodes=nodes),
    "migratory": lambda cpus, nodes, scale: MigratoryWrites(
        MicroParams(iterations=max(200, int(1000 * scale))),
        cpus_per_node=cpus, num_nodes=nodes),
    "isa": lambda cpus, nodes, scale: KernelWorkload(
        scaled_params("spinlock", scale),
        cpus_per_node=cpus, num_nodes=nodes),
}


def _scaled_oltp(scale: float) -> OltpParams:
    return OltpParams(
        transactions=max(20, int(80 * scale)),
        warmup_transactions=max(40, int(150 * scale)),
    )


def _build_checked_system(args: argparse.Namespace):
    """Shared ``run``/``trace`` setup: system + workload, with the
    sanitizer and/or trace attached per the flags."""
    config = preset(args.config)
    check = getattr(args, "check", False)
    trace_cap = getattr(args, "trace", 0) or 0
    checker = None
    if check or trace_cap:
        checker = (CoherenceChecker.with_trace(trace_cap) if trace_cap
                   else CoherenceChecker())
    system = PiranhaSystem(config, num_nodes=args.nodes, checker=checker)
    workload = WORKLOADS[args.workload](config.cpus, args.nodes, args.scale)
    system.attach_workload(workload)
    if check:
        system.enable_continuous_audit()
    probe_rate = getattr(args, "probe_rate", 0) or 0
    sample_us = getattr(args, "sample_interval", 0) or 0
    metrics_path = getattr(args, "metrics", None)
    wants_doc = metrics_path or getattr(args, "json", False)
    if wants_doc and not (probe_rate or sample_us):
        # --metrics (and report --json) alone imply the default
        # observability settings
        probe_rate = 64
        sample_us = 50.0
        # keep the namespace consistent so the emitted document records
        # the rates that actually ran
        args.probe_rate = probe_rate
        args.sample_interval = sample_us
    trace_spans = getattr(args, "trace_spans", 0) or 0
    if trace_spans and not probe_rate:
        # the span tracer consumes probe completions
        probe_rate = 64
        args.probe_rate = probe_rate
    if getattr(args, "telemetry", None) and not sample_us:
        # a heartbeat stream with nothing to beat is useless
        sample_us = 50.0
        args.sample_interval = sample_us
    if probe_rate:
        system.enable_probes(probe_rate)
    if trace_spans:
        system.enable_span_trace(trace_spans)
    if sample_us:
        system.enable_sampler(int(sample_us * 1e6))
    prof_rate = getattr(args, "profile", 0) or 0
    if prof_rate:
        from .observe import HostProfiler

        system.sim.profiler = HostProfiler(prof_rate)
    return config, system, checker


def _open_cli_telemetry(args: argparse.Namespace, system, config,
                        mode: str = "detailed"):
    """Open the ``--telemetry`` stream (or return None), emit the
    ``run_start`` banner, and hook the interval sampler."""
    path = getattr(args, "telemetry", None)
    if not path:
        return None
    from .observe import TelemetryStream

    stream = TelemetryStream(path)
    stream.emit("run_start", config=config.name, workload=args.workload,
                num_nodes=args.nodes, mode=mode,
                probe_rate=getattr(args, "probe_rate", 0) or 0,
                trace_spans=getattr(args, "trace_spans", 0) or 0,
                profile=getattr(args, "profile", 0) or 0)
    if system.sampler is not None:
        system.sampler.on_record = stream.on_interval
    print(f"telemetry streaming to {path} "
          f"(follow with: python -m repro watch {path})")
    return stream


def _finish_flightdeck(args: argparse.Namespace, system, config,
                       stream, result=None) -> None:
    """Post-run flight-deck outputs: write the ``repro-trace/1`` file,
    print the host-profile summary, close the telemetry stream."""
    trace_spans = getattr(args, "trace_spans", 0) or 0
    if trace_spans and system.spans is not None:
        from .observe import trace_doc, validate_trace, write_trace

        protocol_events = None
        if system.checker is not None and system.checker.trace is not None:
            protocol_events = system.checker.trace.events()
        doc = trace_doc(system.spans, config.name, system.num_nodes,
                        getattr(args, "probe_rate", 0) or 0, protocol_events)
        problems = validate_trace(doc)
        out = getattr(args, "trace_out", None) or "repro-trace.json"
        write_trace(out, doc)
        print(f"span trace written to {out}: {doc['kept']} transactions, "
              f"{len(doc['traceEvents'])} events "
              f"(open at https://ui.perfetto.dev)")
        if problems:  # defensive: the tracer's invariants should hold
            print(f"WARNING: trace failed validation: {problems[0]}",
                  file=sys.stderr)
    profiler = system.sim.profiler
    if profiler is not None and profiler.events_sampled:
        print()
        print(profiler.render(limit=10))
    if stream is not None:
        if result is not None:
            stream.emit("run_end", config=result.config,
                        workload=result.workload, items=result.units,
                        sim_wall_s=result.sim_wall_s, cached=False)
        else:
            summary = system.execution_summary()
            stream.emit("run_end", config=config.name,
                        workload=args.workload,
                        items=int(summary["instructions"]),
                        sim_wall_s=0.0, cached=False)
        stream.close()


def _emit_metrics(system, args, path: str) -> None:
    """Write the structured metrics JSON (+ time-series CSV sibling)."""
    from .harness.metrics import metrics_doc, timeseries_csv, write_metrics

    doc = metrics_doc(system, None,
                      probe_rate=getattr(args, "probe_rate", 0) or 0,
                      sample_interval_ps=int(
                          (getattr(args, "sample_interval", 0) or 0) * 1e6))
    write_metrics(doc, path)
    print(f"metrics written to {path}")
    if doc["timeseries"] is not None:
        csv_path = (path[:-5] if path.endswith(".json") else path) + ".csv"
        with open(csv_path, "w") as fh:
            fh.write(timeseries_csv(doc))
        print(f"time-series written to {csv_path}")


def _bisect_run_violation(checkpointer, args: argparse.Namespace) -> None:
    """After a sanitizer violation under ``--checkpoint-every``: restore
    the most recent pre-violation snapshot, arm the protocol trace at
    full capacity, and replay only the final window — the interesting
    history is guaranteed to fit the ring."""
    if checkpointer is None or checkpointer.latest() is None:
        print("(no snapshot buffered; rerun with --checkpoint-every to "
              "bisect, or --trace for a whole-run trace)")
        return
    from .checkpoint import restore_system

    now_ps, payload = checkpointer.latest()
    print(f"\nbisecting: restoring snapshot @ {now_ps / 1e6:.1f} us and "
          f"replaying the final window with the trace armed ...")
    replay = restore_system(payload)
    replay.arm_trace(max(getattr(args, "trace", 0) or 0, 512))
    try:
        replay.run_to_completion()
        replay.verify()
    except AssertionError as exc:
        print(f"violation recurred in replay: {exc}")
    else:
        print("violation did not recur in the replayed window "
              "(depends on earlier state; shorten --checkpoint-every)")
    print("\nprotocol trace tail (replayed window):")
    for line in replay.checker.trace.dump(last=32).splitlines():
        print("  " + line)


def _run_sampled_cli(args: argparse.Namespace, config, system) -> int:
    """``run --sampled``: SMARTS-style sampled simulation of the point."""
    import time

    from .fastforward import SampledRun
    from .harness import UNITS_ATTR
    from .harness.runner import SAMPLED_PERIOD, SAMPLED_WINDOW

    window = args.window or SAMPLED_WINDOW
    period = args.period or SAMPLED_PERIOD
    print(f"sampled simulation of {args.workload} on {args.nodes} x "
          f"{config.name}: window={window} period={period} "
          f"warming={args.warming}")
    stream = _open_cli_telemetry(args, system, config, mode="sampled")
    t0 = time.time()
    run = SampledRun(system, window=window, period=period,
                     warming=args.warming, telemetry=stream)
    run.run()
    result = run.to_result(config, args.nodes,
                           UNITS_ATTR.get(args.workload, "transactions"),
                           wall=time.time() - t0)
    sampling = result.extras["sampling"]
    print(f"\nwindows        : {sampling['windows']} x {window} items/CPU "
          f"(measured {sampling['measured_items']:,} items, "
          f"fast-forwarded {sampling['ff_items']:,})")
    print(f"time per unit  : {result.time_per_unit_ns:,.0f} ns "
          f"(extrapolated)")
    print(breakdown_bar(f"{config.name}/{args.workload}",
                        result.busy_frac, result.l2_frac, result.mem_frac))
    print(f"L1 misses: {result.miss_hit_frac:.0%} L2 hit, "
          f"{result.miss_fwd_frac:.0%} L1-to-L1 forward, "
          f"{result.miss_mem_frac:.0%} memory")
    print("\n95% confidence (across windows):")
    for name, stats in sampling["error"].items():
        if stats["n"] > 1:
            print(f"  {name:<14} {stats['mean']:.4f} +/- {stats['ci95']:.4f} "
                  f"({stats['rel_err']:.1%})")
    print(f"\nwall time      : {result.sim_wall_s:.2f} s")
    _finish_flightdeck(args, run.system, config, stream, result=result)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """``run``: simulate one workload on one configuration."""
    config, system, checker = _build_checked_system(args)
    if getattr(args, "sampled", False):
        return _run_sampled_cli(args, config, system)
    stream = _open_cli_telemetry(args, system, config)
    checkpointer = None
    every_us = getattr(args, "checkpoint_every", 0) or 0
    if every_us:
        from .checkpoint import PeriodicCheckpointer

        on_capture = None
        if stream is not None:
            def on_capture(now_ps, nbytes, _s=stream):
                _s.emit("checkpoint", time_ps=now_ps, bytes=nbytes)
        checkpointer = PeriodicCheckpointer(system, int(every_us * 1e6),
                                            on_capture=on_capture)
        checkpointer.start()
    print(f"simulating {args.workload} on {args.nodes} x {config.name} "
          f"({config.cpus * args.nodes} CPUs) ...")
    try:
        finish = system.run_to_completion()
        telemetry = system.verify() if checker is not None else None
    except AssertionError as exc:
        # CoherenceViolation from the sanitizer (mid-run audit or quiesce
        # verify): with the flight recorder armed, restore the last
        # pre-violation snapshot and replay the final window traced
        print(f"VIOLATION: {exc}")
        _bisect_run_violation(checkpointer, args)
        return 1
    if telemetry is not None:
        audits = int(telemetry.get("audit_continuous_runs", 0))
        print(f"protocol sanitizer audit: OK "
              f"({audits} continuous audits, "
              f"{int(telemetry.get('audit_tsrf_entries', 0))} TSRF entries, "
              f"{int(telemetry.get('audit_dir_holdings', 0))} directory "
              f"holdings verified)")
    summary = system.execution_summary()
    total = summary["total_ps"] or 1
    print(f"\nsimulated time : {finish / 1e6:.1f} us")
    print(f"instructions   : {summary['instructions']:,}")
    print(breakdown_bar(f"{config.name}/{args.workload}",
                        summary["busy_ps"] / total,
                        summary["l2_stall_ps"] / total,
                        summary["mem_stall_ps"] / total))
    mb = system.miss_breakdown()
    misses = sum(mb.values()) or 1
    print(f"L1 misses: {mb['l2_hit'] / misses:.0%} L2 hit, "
          f"{mb['l2_fwd'] / misses:.0%} L1-to-L1 forward, "
          f"{mb['l2_miss'] / misses:.0%} memory")
    if system.probes is not None:
        probes = system.probes.as_dict()
        parts = [f"{cls}: {blk['count']} @ {blk['mean_ns']:.0f} ns"
                 for cls, blk in probes["classes"].items() if blk["count"]]
        print(f"latency probes (1/{probes['rate']}): "
              f"{probes['completed']} completed — " + ", ".join(parts))
    if getattr(args, "metrics", None):
        _emit_metrics(system, args, args.metrics)
    _finish_flightdeck(args, system, config, stream)
    if args.report:
        from .harness.perfmon import render_report, system_report

        print()
        print(render_report(system_report(system, now_ps=system.sim.now)))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """``profile``: run one workload with the host self-profiler and
    print the ranked (component, event-class) wall-clock hot spots —
    where the *simulator* spends its time, not the simulated machine."""
    args.profile = args.sample_rate
    config, system, _checker = _build_checked_system(args)
    print(f"profiling {args.workload} on {args.nodes} x {config.name} "
          f"(sampling 1/{args.sample_rate} events) ...", file=sys.stderr)
    system.run_to_completion()
    profiler = system.sim.profiler
    if args.json:
        import json

        print(json.dumps(profiler.as_dict(), indent=2, sort_keys=True))
    else:
        print(profiler.render(limit=args.limit))
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    """``watch``: tail a live telemetry stream (written by
    ``run --telemetry PATH``), rendering records as they arrive."""
    from .observe.telemetry import (follow_records, read_records,
                                    render_record)

    if args.follow:
        saw_end = False
        for record in follow_records(args.path, timeout_s=args.timeout):
            print(render_record(record), flush=True)
            saw_end = record.get("kind") == "run_end"
        if not saw_end:
            print(f"(no run_end after {args.timeout:.0f}s of silence; "
                  f"writer gone?)", file=sys.stderr)
        return 0
    records = read_records(args.path)
    if not records:
        print(f"no telemetry records in {args.path}", file=sys.stderr)
        return 1
    for record in records[-args.last:]:
        print(render_record(record))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``report``: run one workload and print the performance-monitor
    rollup — text tables by default, the structured metrics document
    with ``--json``."""
    config, system, _checker = _build_checked_system(args)
    print(f"simulating {args.workload} on {args.nodes} x {config.name} "
          f"({config.cpus * args.nodes} CPUs) ...", file=sys.stderr)
    system.run_to_completion()
    if args.json:
        import json

        from .harness.metrics import metrics_doc

        doc = metrics_doc(
            system, None,
            probe_rate=args.probe_rate or 0,
            sample_interval_ps=int((args.sample_interval or 0) * 1e6))
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        from .harness.perfmon import render_report, system_report

        print(render_report(system_report(system, now_ps=system.sim.now)))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``trace``: run a workload with the protocol trace recording and
    dump the (filtered) tail of the ring buffer."""
    config, system, checker = _build_checked_system(args)
    print(f"tracing {args.workload} on {args.nodes} x {config.name} "
          f"(ring capacity {checker.trace.capacity}) ...", file=sys.stderr)
    system.run_to_completion()
    if args.check:
        system.verify()
        print("protocol sanitizer audit: OK", file=sys.stderr)
    trace = checker.trace
    line = int(args.line, 0) if args.line is not None else None
    print(trace.dump(line=line, node=args.node, last=args.last))
    counts = trace.summary()
    print("\nevent totals: " + ", ".join(
        f"{k}={counts[k]}" for k in sorted(counts)))
    return 0


def _parse_value(text: str):
    """Parse one swept value: int (with K/M/G suffix), float, or string."""
    from .harness.sweep import parse_sweep_value

    return parse_sweep_value(text)


def cmd_sweep(args: argparse.Namespace) -> int:
    """``sweep``: run one workload across a family of derived configs."""
    from .harness import FACTORIES, UNITS_ATTR, format_table
    from .harness.sweep import sweep_field

    values = [_parse_value(v) for v in args.values.split(",") if v.strip()]
    if not values:
        print("no sweep values given", file=sys.stderr)
        return 2
    factory = FACTORIES[args.workload]()
    print(f"sweeping {args.config}.{args.field} over {values} "
          f"({args.workload}, jobs={args.jobs if args.jobs else 'auto'})")
    try:
        records = sweep_field(
            args.config, factory, args.field, values, num_nodes=args.nodes,
            units_attr=UNITS_ATTR[args.workload], jobs=args.jobs,
            warmup=args.warmup, resume=args.resume)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [
        [r["value"], f"{r['throughput']:.3g}", f"{r['time_per_unit_ns']:.1f}",
         f"{r['busy_frac']:.2f}", f"{r['l2_frac']:.2f}",
         f"{r['mem_frac']:.2f}", f"{r['miss_mem_frac']:.2f}"]
        for r in records
    ]
    print(format_table(
        [args.field, "throughput", "ns/unit", "busy", "l2", "mem",
         "miss_mem"], rows,
        title=f"{args.config} {args.workload} sweep"))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """``fuzz``: run one seeded fuzz program (or replay a reproducer)
    against the memory-model reference checker.  Exits 0 on a clean run
    — or, for ``--replay``, when the recorded verdict reproduces — and
    1 on an unexpected violation (or a reproducer that went stale)."""
    import dataclasses

    from .fuzz import (
        MUTATIONS,
        Reproducer,
        generate,
        params_for,
        replay,
        run_fuzz_program,
        shrink_failure,
    )

    trace_cap = args.trace or (512 if args.replay else 2048)

    if args.replay:
        repro = Reproducer.load(args.replay)
        print(f"replaying {args.replay}: {repro.program.describe()}")
        print(f"recorded : {repro.signature or '(clean)'}")
        verdict = run_fuzz_program(repro.program, check=args.check,
                                   trace_capacity=trace_cap)
        got = verdict.signature or "(clean)"
        reproduced = verdict.signature == repro.signature
        print(f"replayed : {got} -> "
              f"{'REPRODUCED' if reproduced else 'DIVERGED'}")
        if not reproduced and verdict.message:
            print(verdict.message)
        return 0 if reproduced else 1

    params = params_for(args.seed, total_ops=args.ops, nodes=args.nodes,
                        config=args.config, cpus_per_node=args.cpus)
    program = generate(params)
    if args.mutate:
        name, _, period = args.mutate.partition("/")
        if name not in MUTATIONS:
            print(f"unknown mutation {name!r}; available: "
                  f"{', '.join(sorted(MUTATIONS))}", file=sys.stderr)
            return 2
        program = dataclasses.replace(
            program, mutation=name, mutation_period=int(period or 1))
    print(f"fuzzing: {program.describe()}")
    every_ps = int((args.checkpoint_every or 0) * 1e6)
    verdict = run_fuzz_program(program, check=args.check,
                               trace_capacity=trace_cap,
                               checkpoint_every_ps=every_ps)
    if verdict.ok:
        counts = verdict.counts
        print("clean: " + ", ".join(
            f"{k}={int(v)}" for k, v in sorted(counts.items())))
        return 0
    print(f"VIOLATION {verdict.signature}")
    print(verdict.message)
    if verdict.trace_window:
        print("\nprotocol trace tail:")
        for line in verdict.trace_window[-args.tail:]:
            print("  " + line)
    if verdict.bisect:
        info = verdict.bisect
        print(f"\nbisection: restored snapshot @ "
              f"{info['restored_from_ps'] / 1e6:.1f} us "
              f"({info['captures']} captured), replayed final window -> "
              f"{'RECURRED' if info['recurred'] else 'did not recur'} "
              f"({info.get('replay_signature') or 'clean'})")
        for line in (info.get("trace_window") or [])[-args.tail:]:
            print("  " + line)
    if args.shrink:
        print(f"\nshrinking (budget {args.shrink} runs) ...")
        repro = shrink_failure(program, verdict, budget=args.shrink,
                               log=lambda msg: print("  " + msg))
        print(f"minimal: {repro.program.describe()} "
              f"({repro.shrunk_from_ops} -> {repro.program.op_count} ops, "
              f"{repro.shrink_runs} runs)")
        if args.out:
            repro.save(args.out)
            print(f"reproducer written to {args.out} "
                  f"(replay with: python -m repro fuzz --replay {args.out})")
        check = replay(repro, check=args.check)
        print(f"reproducer replay: "
              f"{'REPRODUCED' if check.signature == repro.signature else 'DIVERGED'}")
    return 1


def cmd_checkpoint(args: argparse.Namespace) -> int:
    """``checkpoint``: save, restore or inspect machine snapshots."""
    import json

    from .checkpoint import (CheckpointError, WarmCapture, checkpoint_info,
                             load_checkpoint, save_checkpoint)

    if args.verb == "save":
        config, system, _checker = _build_checked_system(args)
        capture = WarmCapture(system, halt=True)
        print(f"warming {args.workload} on {args.nodes} x {config.name} "
              f"({config.cpus * args.nodes} CPUs) ...")
        system.start()
        system.sim.run()
        if not capture.captured:
            print("error: the workload finished before its warm-up "
                  "boundary; nothing worth checkpointing", file=sys.stderr)
            return 1
        manifest = save_checkpoint(
            args.out, system, payload=capture.payload,
            sim_now=capture.sim_now, workload=args.workload,
            extra={
                "config_name": args.config,
                "scale": args.scale,
                "check": bool(args.check),
                "probe_rate": getattr(args, "probe_rate", 0) or 0,
                "sample_interval_us": getattr(args, "sample_interval", 0)
                                      or 0,
            })
        print(f"checkpoint written to {args.out}: warm boundary @ "
              f"{manifest['sim_now'] / 1e6:.1f} us, "
              f"{manifest['payload_bytes']:,} bytes "
              f"(sha256 {manifest['payload_sha256'][:12]}...)")
        return 0

    if args.verb == "info":
        try:
            manifest = checkpoint_info(args.path)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0

    # restore: finish the measurement phase from the snapshot
    try:
        manifest, system = load_checkpoint(args.path, force=args.force)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"restored {manifest.get('workload')} on "
          f"{manifest.get('nodes')} node(s) @ "
          f"{manifest['sim_now'] / 1e6:.1f} us; resuming ...")
    finish = system.run_to_completion()
    if system.checker is not None and manifest.get("check"):
        system.verify()
        print("protocol sanitizer audit: OK")
    summary = system.execution_summary()
    total = summary["total_ps"] or 1
    print(f"\nsimulated time : {finish / 1e6:.1f} us "
          f"(measurement window "
          f"{(finish - manifest['sim_now']) / 1e6:.1f} us)")
    print(f"instructions   : {summary['instructions']:,}")
    print(breakdown_bar(
        f"{system.config.name}/{manifest.get('workload')}",
        summary["busy_ps"] / total, summary["l2_stall_ps"] / total,
        summary["mem_stall_ps"] / total))
    if args.metrics:
        # emit with the probe/sampler rates the snapshot was taken with,
        # so the document is byte-identical to an uninterrupted
        # ``repro run --metrics`` at the same settings
        args.probe_rate = manifest.get("probe_rate", 0) or 0
        args.sample_interval = manifest.get("sample_interval_us", 0) or 0
        _emit_metrics(system, args, args.metrics)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """``cache``: inspect or clear the persistent result cache."""
    from .harness import DISK_CACHE
    from .harness.runner import memo_cache_info

    if args.clear:
        removed = DISK_CACHE.clear()
        print(f"cleared {removed} cached results from {DISK_CACHE.path}")
        return 0
    info = DISK_CACHE.info()
    print(f"disk cache : {info['path']}")
    print(f"  enabled  : {info['enabled']} (REPRO_NO_CACHE disables)")
    print(f"  entries  : {info['entries']} ({info['bytes']} bytes)")
    print(f"  hits     : {info['hits']}  misses: {info['misses']} "
          f"(this process)")
    memo = memo_cache_info()
    print(f"memo cache : {memo['entries']} entries, "
          f"{memo['hits']} hits / {memo['misses']} misses (this process)")
    return 0


def cmd_table1(_args: argparse.Namespace) -> int:
    """``table1``: print the regenerated Table 1."""
    table = table1()
    params = list(next(iter(table.values())).keys())
    rows = [[p] + [table[c][p] for c in ("P8", "OOO", "P8F")] for p in params]
    print(format_table(["Parameter", "P8", "OOO", "P8F"], rows,
                       title="Table 1"))
    return 0


def cmd_floorplan(_args: argparse.Namespace) -> int:
    """``floorplan``: print the Figure 9 area budget."""
    summary = floorplan_summary(preset("P8"))
    rows = [[m.name, m.count, f"{m.total_mm2:.1f}"]
            for m in summary["modules"]]
    print(format_table(["module", "count", "mm^2"], rows,
                       title="Figure 9 floor-plan"))
    print(f"\ncores + caches: {summary['cores_and_caches_fraction']:.0%} "
          f"of {summary['total_mm2']:.0f} mm^2")
    return 0


def cmd_xval(args: argparse.Namespace) -> int:
    """``xval``: cross-validate the ISA kernels — functional reference
    vs the timed machine — and print/emit the ``repro-xval/1`` report."""
    import json

    from .isa.validate import run_suite, validate_report

    if args.check_report:
        with open(args.check_report) as fh:
            doc = json.load(fh)
        problems = validate_report(doc)
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.check_report}: valid {doc['schema']} report, "
                  f"ok={doc['ok']}")
        return 0 if not problems and doc.get("ok") else 1

    kernels = KERNEL_NAMES if args.kernel == "all" else (args.kernel,)
    seeds = tuple(range(args.seeds))
    print(f"cross-validating {len(kernels)} kernel(s) on {args.nodes} x "
          f"{args.config} (scale {args.scale}, {len(seeds)} functional "
          f"seeds) ...")
    doc = run_suite(kernels, config=args.config, nodes=args.nodes,
                    scale=args.scale, seeds=seeds)
    rows = []
    for name, rep in doc["kernels"].items():
        failed = [c["name"] for c in rep["checks"] if not c["ok"]]
        rows.append([
            name,
            "yes" if rep["memory_match"] else "NO",
            f"{sum(c['ok'] for c in rep['checks'])}/{len(rep['checks'])}",
            f"{rep['timed']['units']}",
            "PASS" if rep["ok"] else "FAIL: " + ",".join(failed or
                                                         ["memory"]),
        ])
    print(format_table(
        ["kernel", "mem bit-exact", "checks", "units", "verdict"], rows,
        title=f"cross-validation ({doc['schema']})"))
    summary = doc["summary"]
    print(f"\n{summary['passed']}/{summary['kernels']} kernels passed, "
          f"{summary['checks'] - summary['checks_failed']}/"
          f"{summary['checks']} checks passed")
    problems = validate_report(doc)
    if problems:  # defensive: the suite's own invariants should hold
        print(f"WARNING: report failed validation: {problems[0]}",
              file=sys.stderr)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.out}")
    return 0 if doc["ok"] and not problems else 1


def cmd_list(_args: argparse.Namespace) -> int:
    """``list``: show available configurations and workloads."""
    print("configurations:", ", ".join(sorted(PRESETS)))
    print("workloads     :", ", ".join(sorted(WORKLOADS)))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: run the simulation service (Ctrl-C suspends running
    jobs and persists the queue for the next ``serve``)."""
    from .service.server import run_server

    return run_server(root=args.root, host=args.host, port=args.port,
                      workers=args.workers, preempt=not args.no_preempt)


def _service_client(args: argparse.Namespace):
    from .service.client import ServiceClient

    return ServiceClient(host=args.host, port=args.port, root=args.root)


def _attach_and_render(client, job_id: str) -> None:
    from .observe.telemetry import render_record

    for record in client.attach(job_id):
        print(render_record(record), flush=True)


def cmd_submit(args: argparse.Namespace) -> int:
    """``submit``: send one job to a running service."""
    import json

    spec = {
        "kind": args.kind,
        "config": args.config,
        "workload": args.workload,
        "nodes": args.nodes,
        "scale": args.scale,
        "check": args.check or None,
        "field": args.field,
        "values": args.values,
        "seed": args.seed,
        "ops": args.ops,
        "seeds": args.seeds,
        "tag": args.tag,
        "preempt_every_us": args.preempt_every,
        "sample_interval_us": args.sample_interval,
        "probe_rate": args.probe_rate,
    }
    if args.kind == "sweep" and not (args.field and args.values):
        print("sweep jobs need --field and --values", file=sys.stderr)
        return 2
    client = _service_client(args)
    doc = client.submit(spec, priority=args.priority)
    print(f"{doc['job_id']}  state={doc['state']}  "
          f"priority={doc['priority']}"
          + (f"  dedup_of={doc['dedup_of']}" if doc.get("dedup_of")
             else ""))
    if args.attach:
        _attach_and_render(client, doc["job_id"])
    if args.wait or args.attach:
        final = client.wait(doc["job_id"], timeout_s=args.timeout)
        if final["state"] != "DONE":
            print(f"{final['job_id']} finished {final['state']}: "
                  f"{final.get('error', '')}", file=sys.stderr)
            return 1
        print(json.dumps(client.result(doc["job_id"]), indent=2,
                         sort_keys=True))
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    """``jobs``: list the service's jobs, or ``--stats`` counters."""
    import json

    client = _service_client(args)
    if args.stats:
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
        return 0
    jobs = client.jobs()
    if not jobs:
        print("no jobs")
        return 0
    for doc in jobs:
        spec = doc.get("spec", {})
        detail = spec.get("kind", "run")
        if detail in ("run", "sweep"):
            detail += f":{spec.get('workload')}@{spec.get('config')}"
        flags = []
        if doc.get("dedup_of"):
            flags.append(f"dedup_of={doc['dedup_of']}")
        if doc.get("preemptions"):
            flags.append(f"preempted x{doc['preemptions']}")
        print(f"{doc['job_id']}  {doc['state']:<9}  p={doc['priority']:<3}"
              f"  {detail:<24}  {' '.join(flags)}".rstrip())
    return 0


def cmd_attach(args: argparse.Namespace) -> int:
    """``attach``: subscribe to a job's live telemetry (replay, then
    follow until its run_end)."""
    _attach_and_render(_service_client(args), args.job_id)
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Piranha (ISCA 2000) reproduction simulator")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate a workload")
    run_p.add_argument("--config", default="P8", choices=sorted(PRESETS))
    run_p.add_argument("--workload", default="oltp",
                       choices=sorted(WORKLOADS))
    run_p.add_argument("--nodes", type=int, default=1)
    run_p.add_argument("--scale", type=float, default=1.0,
                       help="workload size multiplier")
    run_p.add_argument("--check", action="store_true",
                       help="run with the protocol sanitizer (continuous "
                            "audits + full quiesce audit)")
    run_p.add_argument("--trace", type=int, nargs="?", const=512, default=0,
                       metavar="N",
                       help="record the last N protocol events (default "
                            "512); violations dump the per-line history")
    run_p.add_argument("--report", action="store_true",
                       help="print the full per-module performance report")
    run_p.add_argument("--metrics", metavar="PATH", default=None,
                       help="write the structured metrics JSON here (plus "
                            "a .csv time-series sibling); implies "
                            "--probe-rate 64 --sample-interval 50 unless "
                            "given explicitly")
    run_p.add_argument("--probe-rate", type=int, default=0, metavar="N",
                       help="tag 1 of every N L1 misses with a latency "
                            "probe (0 = off)")
    run_p.add_argument("--sample-interval", type=float, default=0,
                       metavar="US",
                       help="time-series sampling period in simulated "
                            "microseconds (0 = off)")
    run_p.add_argument("--trace-spans", type=int, nargs="?", const=256,
                       default=0, metavar="N",
                       help="record causal span trees for up to N probed "
                            "transactions (default 256) and write a "
                            "Perfetto-loadable repro-trace/1 JSON; implies "
                            "--probe-rate 64 unless given explicitly")
    run_p.add_argument("--trace-out", metavar="PATH", default=None,
                       help="span-trace output path (default "
                            "repro-trace.json)")
    run_p.add_argument("--profile", type=int, nargs="?", const=16,
                       default=0, metavar="N",
                       help="host self-profiler: sample 1 of every N "
                            "dispatched events (default 16) and print the "
                            "ranked wall-clock hot spots")
    run_p.add_argument("--telemetry", metavar="PATH", default=None,
                       help="stream live heartbeat/interval/checkpoint "
                            "records (JSONL) here; follow with "
                            "'repro watch PATH'; implies --sample-interval "
                            "50 unless given explicitly")
    run_p.add_argument("--checkpoint-every", type=float, default=0,
                       metavar="US",
                       help="keep rolling machine snapshots every US "
                            "simulated microseconds; on a sanitizer "
                            "violation, restore the last one and replay "
                            "the final window with the trace armed")
    run_p.add_argument("--sampled", action="store_true",
                       help="SMARTS-style sampled simulation: functional "
                            "fast-forward with short detailed measurement "
                            "windows and per-class confidence intervals")
    run_p.add_argument("--window", type=int, default=0, metavar="ITEMS",
                       help="items per CPU per detailed window "
                            "(--sampled; default 800)")
    run_p.add_argument("--period", type=int, default=0, metavar="ITEMS",
                       help="items per CPU fast-forwarded between windows "
                            "(--sampled; default 6000)")
    run_p.add_argument("--warming", default="functional",
                       choices=("functional", "detailed"),
                       help="fast-forward regime for --sampled: functional "
                            "(event-free warming) or detailed (no "
                            "approximation; validation mode)")
    run_p.set_defaults(fn=cmd_run)

    report_p = sub.add_parser(
        "report", help="run a workload and print the perfmon rollup")
    report_p.add_argument("--config", default="P8", choices=sorted(PRESETS))
    report_p.add_argument("--workload", default="oltp",
                          choices=sorted(WORKLOADS))
    report_p.add_argument("--nodes", type=int, default=1)
    report_p.add_argument("--scale", type=float, default=1.0,
                          help="workload size multiplier")
    report_p.add_argument("--json", action="store_true",
                          help="emit the structured metrics document "
                               "instead of text tables")
    report_p.add_argument("--probe-rate", type=int, default=0, metavar="N",
                          help="tag 1 of every N L1 misses with a latency "
                               "probe (0 = off)")
    report_p.add_argument("--sample-interval", type=float, default=0,
                          metavar="US",
                          help="time-series sampling period in simulated "
                               "microseconds (0 = off)")
    report_p.set_defaults(fn=cmd_report)

    profile_p = sub.add_parser(
        "profile", help="run a workload under the host self-profiler and "
                        "print the ranked wall-clock hot spots")
    profile_p.add_argument("--config", default="P8", choices=sorted(PRESETS))
    profile_p.add_argument("--workload", default="oltp",
                           choices=sorted(WORKLOADS))
    profile_p.add_argument("--nodes", type=int, default=1)
    profile_p.add_argument("--scale", type=float, default=0.25,
                           help="workload size multiplier")
    profile_p.add_argument("--sample-rate", type=int, default=16, metavar="N",
                           help="time 1 of every N dispatched events "
                                "(default 16)")
    profile_p.add_argument("--limit", type=int, default=20,
                           help="rows to print (default 20)")
    profile_p.add_argument("--json", action="store_true",
                           help="emit the structured profile document "
                                "instead of the table")
    profile_p.set_defaults(fn=cmd_profile)

    watch_p = sub.add_parser(
        "watch", help="render a live-telemetry JSONL stream "
                      "(from 'repro run --telemetry PATH')")
    watch_p.add_argument("path", help="telemetry JSONL file to read")
    watch_p.add_argument("--follow", action="store_true",
                         help="tail the stream until run_end (or timeout)")
    watch_p.add_argument("--timeout", type=float, default=30.0,
                         help="give up after this many idle seconds "
                              "in --follow mode (default 30)")
    watch_p.add_argument("--last", type=int, default=20,
                         help="without --follow: print the trailing N "
                              "records (default 20)")
    watch_p.set_defaults(fn=cmd_watch)

    trace_p = sub.add_parser(
        "trace", help="run a workload with the protocol trace and dump it")
    trace_p.add_argument("--config", default="P8", choices=sorted(PRESETS))
    trace_p.add_argument("--workload", default="migratory",
                         choices=sorted(WORKLOADS))
    trace_p.add_argument("--nodes", type=int, default=1)
    trace_p.add_argument("--scale", type=float, default=0.25,
                         help="workload size multiplier")
    trace_p.add_argument("--trace", type=int, nargs="?", const=4096,
                         default=4096, metavar="N",
                         help="ring capacity (default 4096)")
    trace_p.add_argument("--check", action="store_true",
                         help="also run the protocol sanitizer")
    trace_p.add_argument("--line", default=None,
                         help="only events for this line address (hex ok)")
    trace_p.add_argument("--node", type=int, default=None,
                         help="only events from this node")
    trace_p.add_argument("--last", type=int, default=32,
                         help="how many trailing events to print")
    trace_p.set_defaults(fn=cmd_trace)

    sweep_p = sub.add_parser(
        "sweep", help="sweep one config field over a set of values")
    sweep_p.add_argument("--config", default="P8", choices=sorted(PRESETS))
    sweep_p.add_argument("--workload", default="oltp",
                         choices=sorted(WORKLOADS))
    sweep_p.add_argument("--field", required=True,
                         help="dotted config field, e.g. l2.size_bytes")
    sweep_p.add_argument("--values", required=True,
                         help="comma-separated values (K/M/G suffixes ok)")
    sweep_p.add_argument("--nodes", type=int, default=1)
    sweep_p.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or 1; "
                             "0 = all cores)")
    sweep_p.add_argument("--warmup", action="store_true",
                         help="warm each point once, snapshot at the "
                              "measurement boundary, and measure from the "
                              "shared warm checkpoint")
    sweep_p.add_argument("--resume", action="store_true",
                         help="continue an interrupted sweep: completed "
                              "points answer from the result cache, "
                              "interrupted ones restore their warm "
                              "snapshot (implies --warmup)")
    sweep_p.set_defaults(fn=cmd_sweep)

    fuzz_p = sub.add_parser(
        "fuzz", help="run a seeded fuzz program against the memory-model "
                     "reference checker")
    fuzz_p.add_argument("--seed", type=int, default=0,
                        help="stimulus seed (fully determines the program)")
    fuzz_p.add_argument("--ops", type=int, default=2000,
                        help="total operation budget across all CPUs")
    fuzz_p.add_argument("--nodes", type=int, default=1)
    fuzz_p.add_argument("--config", default="P8", choices=sorted(PRESETS))
    fuzz_p.add_argument("--cpus", type=int, default=4,
                        help="CPUs driven per node")
    fuzz_p.add_argument("--mutate", metavar="NAME[/PERIOD]", default=None,
                        help="inject a deliberate protocol mutation "
                             "(lost_inval, stale_share, skip_fence)")
    fuzz_p.add_argument("--check", action="store_true",
                        help="also arm the structural protocol sanitizer")
    fuzz_p.add_argument("--trace", type=int, nargs="?", const=2048,
                        default=0, metavar="N",
                        help="protocol trace ring capacity (default 2048)")
    fuzz_p.add_argument("--tail", type=int, default=24,
                        help="trace lines printed on violation")
    fuzz_p.add_argument("--shrink", type=int, nargs="?", const=400,
                        default=0, metavar="BUDGET",
                        help="on violation, delta-debug to a minimal "
                             "reproducer (budget in simulator runs)")
    fuzz_p.add_argument("--out", metavar="PATH", default=None,
                        help="write the shrunk reproducer JSON here")
    fuzz_p.add_argument("--replay", metavar="PATH", default=None,
                        help="replay a saved reproducer; exit 0 iff the "
                             "recorded verdict reproduces")
    fuzz_p.add_argument("--checkpoint-every", type=float, default=0,
                        metavar="US",
                        help="flight-recorder snapshots every US simulated "
                             "microseconds; violations restore the last "
                             "pre-violation snapshot and replay only the "
                             "final window at full trace fidelity")
    fuzz_p.set_defaults(fn=cmd_fuzz)

    ckpt_p = sub.add_parser(
        "checkpoint", help="save, restore or inspect machine snapshots")
    ckpt_sub = ckpt_p.add_subparsers(dest="verb", required=True)

    save_p = ckpt_sub.add_parser(
        "save", help="warm a workload to its measurement boundary and "
                     "snapshot the whole machine")
    save_p.add_argument("--config", default="P8", choices=sorted(PRESETS))
    save_p.add_argument("--workload", default="oltp",
                        choices=sorted(WORKLOADS))
    save_p.add_argument("--nodes", type=int, default=1)
    save_p.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier")
    save_p.add_argument("--check", action="store_true",
                        help="arm the protocol sanitizer in the snapshot")
    save_p.add_argument("--probe-rate", type=int, default=0, metavar="N",
                        help="latency-probe rate baked into the snapshot")
    save_p.add_argument("--sample-interval", type=float, default=0,
                        metavar="US",
                        help="time-series sampling period baked into the "
                             "snapshot")
    save_p.add_argument("--out", required=True, metavar="PATH",
                        help="checkpoint file to write (.ckpt)")
    save_p.set_defaults(fn=cmd_checkpoint)

    restore_p = ckpt_sub.add_parser(
        "restore", help="restore a snapshot and run the measurement "
                        "phase to completion")
    restore_p.add_argument("path", help="checkpoint file (.ckpt)")
    restore_p.add_argument("--metrics", metavar="PATH", default=None,
                           help="write the structured metrics JSON here "
                                "(byte-identical to an uninterrupted "
                                "run at the snapshot's settings)")
    restore_p.add_argument("--force", action="store_true",
                           help="restore despite a library-fingerprint "
                                "mismatch (debugging only)")
    restore_p.set_defaults(fn=cmd_checkpoint)

    info_p = ckpt_sub.add_parser(
        "info", help="print a checkpoint's manifest (no restore)")
    info_p.add_argument("path", help="checkpoint file (.ckpt)")
    info_p.set_defaults(fn=cmd_checkpoint)

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache")
    cache_p.add_argument("--clear", action="store_true",
                         help="delete every cached result")
    cache_p.set_defaults(fn=cmd_cache)

    xval_p = sub.add_parser(
        "xval", help="cross-validate ISA kernels: functional reference "
                     "vs the timed machine (repro-xval/1 report)")
    xval_p.add_argument("--config", default="P8", choices=sorted(PRESETS))
    xval_p.add_argument("--nodes", type=int, default=1)
    xval_p.add_argument("--kernel", default="all",
                        choices=("all",) + tuple(KERNEL_NAMES))
    xval_p.add_argument("--scale", type=float, default=1.0,
                        help="kernel iteration-count multiplier")
    xval_p.add_argument("--seeds", type=int, default=3, metavar="N",
                        help="functional interleaving seeds per kernel "
                             "(images must agree across all of them)")
    xval_p.add_argument("--out", metavar="PATH", default=None,
                        help="write the repro-xval/1 JSON report here")
    xval_p.add_argument("--check-report", metavar="PATH", default=None,
                        help="validate an existing report file instead of "
                             "running (exit 0 iff valid and ok)")
    xval_p.set_defaults(fn=cmd_xval)

    serve_p = sub.add_parser(
        "serve", help="run the simulation service (async job server with "
                      "dedupe, priority preemption, live streaming)")
    serve_p.add_argument("--root", default=None,
                         help="store root (default: the result-cache dir)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0,
                         help="0 = ephemeral; clients discover the port "
                              "via <root>/service/server.json")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="concurrent worker subprocesses")
    serve_p.add_argument("--no-preempt", action="store_true",
                         help="disable priority preemption")
    serve_p.set_defaults(fn=cmd_serve)

    def _client_args(p):
        p.add_argument("--root", default=None,
                       help="store root used for server discovery")
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=0,
                       help="0 = discover via <root>/service/server.json")

    submit_p = sub.add_parser(
        "submit", help="submit a job to a running service")
    _client_args(submit_p)
    submit_p.add_argument("--kind", default="run",
                          choices=("run", "sweep", "fuzz", "xval"))
    submit_p.add_argument("--config", default="P8", choices=sorted(PRESETS))
    submit_p.add_argument("--workload", default="oltp",
                          choices=sorted(WORKLOADS))
    submit_p.add_argument("--nodes", type=int, default=1)
    submit_p.add_argument("--scale", type=float, default=1.0)
    submit_p.add_argument("--priority", type=int, default=0,
                          help="higher runs first and may preempt")
    submit_p.add_argument("--check", action="store_true")
    submit_p.add_argument("--field", default=None,
                          help="swept config field (kind=sweep)")
    submit_p.add_argument("--values", default=None,
                          help="comma-separated swept values (kind=sweep)")
    submit_p.add_argument("--seed", type=int, default=None,
                          help="fuzz seed (kind=fuzz)")
    submit_p.add_argument("--ops", type=int, default=None,
                          help="fuzz op count (kind=fuzz)")
    submit_p.add_argument("--seeds", type=int, default=None,
                          help="xval seeds (kind=xval)")
    submit_p.add_argument("--tag", default=None,
                          help="opaque tag folded into the dedupe key "
                               "(distinguishes deliberate re-runs)")
    submit_p.add_argument("--preempt-every", type=float, default=None,
                          metavar="US",
                          help="preemption-guard period in sim-us")
    submit_p.add_argument("--sample-interval", type=float, default=None,
                          metavar="US", help="telemetry sampling interval")
    submit_p.add_argument("--probe-rate", type=int, default=None)
    submit_p.add_argument("--wait", action="store_true",
                          help="block until terminal; print the artifact")
    submit_p.add_argument("--attach", action="store_true",
                          help="stream live telemetry, then the artifact")
    submit_p.add_argument("--timeout", type=float, default=600.0)
    submit_p.set_defaults(fn=cmd_submit)

    jobs_p = sub.add_parser("jobs", help="list the service's jobs")
    _client_args(jobs_p)
    jobs_p.add_argument("--stats", action="store_true",
                        help="print queue/dedupe/preemption counters")
    jobs_p.set_defaults(fn=cmd_jobs)

    attach_p = sub.add_parser(
        "attach", help="stream a job's telemetry (replay + live follow)")
    _client_args(attach_p)
    attach_p.add_argument("job_id")
    attach_p.set_defaults(fn=cmd_attach)

    sub.add_parser("table1", help="print Table 1").set_defaults(fn=cmd_table1)
    sub.add_parser("floorplan",
                   help="print the Figure 9 area budget").set_defaults(
        fn=cmd_floorplan)
    sub.add_parser("list", help="list configs/workloads").set_defaults(
        fn=cmd_list)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # output piped into a pager/head that closed early — not an error
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
