"""Delta-debugging shrinker for failing fuzz programs.

Given a failing :class:`~repro.fuzz.program.FuzzProgram` and the stable
*signature* of its violation, the shrinker searches for a smaller
program that still fails **with the same signature** — re-running the
simulator deterministically for every candidate (the simulator has no
hidden state, so reproduction is exact).  Passes, applied to fixpoint
under a run budget:

1. **drop CPUs** — empty out one CPU's op list at a time;
2. **merge CPUs** — append one CPU's ops onto another and empty it
   (two racing actors often reduce to one actor with a reordered mix);
3. **compact the shape** — once trailing CPUs/nodes are empty, shrink
   ``cpus_per_node`` and ``nodes`` so the reproducer names the smallest
   system that fails;
4. **ddmin op lists** — classic Zeller delta debugging per CPU,
   removing chunks at exponentially finer granularity;
5. **shrink the pool** — drop unreferenced addresses and renumber the
   remaining slots densely;
6. **normalise gaps** — set every inter-op gap to 1 (timing bias that
   stopped mattering disappears from the reproducer).

Every candidate is memoised by canonical JSON, so revisited programs
cost nothing against the budget.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .program import FuzzProgram, Op


def violation_signature(exc: BaseException) -> str:
    """Stable identity of a failure, for same-bug matching while
    shrinking.  Violations carrying a machine-readable ``kind`` (the
    reference checker's) use it directly; anything else falls back to
    the exception class plus its first message line with addresses and
    counts normalised away."""
    kind = getattr(exc, "kind", None)
    if kind:
        return f"{type(exc).__name__}:{kind}"
    text = str(exc).splitlines()[0] if str(exc) else ""
    text = re.sub(r"0x[0-9a-fA-F]+", "#", text)
    text = re.sub(r"\d+", "#", text)
    return f"{type(exc).__name__}:{text}"


@dataclass
class ShrinkOutcome:
    program: FuzzProgram
    runs: int           # simulations spent
    exhausted: bool     # True if the run budget cut the search short


class _Search:
    """Budgeted, memoised does-it-still-fail oracle."""

    def __init__(self, signature: str, run_fn: Callable, budget: int,
                 log: Optional[Callable[[str], None]]) -> None:
        self.signature = signature
        self.run_fn = run_fn
        self.budget = budget
        self.runs = 0
        self.exhausted = False
        self._memo: Dict[str, bool] = {}
        self._log = log

    def reproduces(self, candidate: FuzzProgram) -> bool:
        key = candidate.canonical_json()
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        if self.runs >= self.budget:
            self.exhausted = True
            return False
        self.runs += 1
        try:
            candidate.validate()
            verdict = self.run_fn(candidate)
            ok = (not verdict.ok) and verdict.signature == self.signature
        except ValueError:
            ok = False
        self._memo[key] = ok
        if ok and self._log is not None:
            self._log(f"shrink: {candidate.op_count} ops still fail "
                      f"({self.runs} runs)")
        return ok


def _ddmin(ops: Sequence[Op], still_fails: Callable[[List[Op]], bool]) -> List[Op]:
    """Zeller's ddmin over one op list: remove chunks, halving the chunk
    size whenever a full sweep removes nothing."""
    ops = list(ops)
    chunk = max(1, len(ops) // 2)
    while ops:
        removed = False
        i = 0
        while i < len(ops):
            candidate = ops[:i] + ops[i + chunk:]
            if still_fails(candidate):
                ops = candidate
                removed = True
            else:
                i += chunk
        if not removed:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return ops


def _with_cpu(ops, gcpu: int, new_ops) -> List[tuple]:
    out = list(ops)
    out[gcpu] = tuple(new_ops)
    return out


def _compact_shape(program: FuzzProgram) -> Optional[FuzzProgram]:
    """Shrink nodes/cpus_per_node to cover only non-empty op lists."""
    per_node = [
        program.ops[n * program.cpus_per_node:(n + 1) * program.cpus_per_node]
        for n in range(program.nodes)
    ]
    # Trailing fully-empty nodes go first.
    while len(per_node) > 1 and all(not ops for ops in per_node[-1]):
        per_node.pop()
    # Then the common trailing empty CPU slots of every node.
    cpus = program.cpus_per_node
    while cpus > 1 and all(not node_ops[cpus - 1] for node_ops in per_node):
        cpus -= 1
    nodes = len(per_node)
    if nodes == program.nodes and cpus == program.cpus_per_node:
        return None
    new_ops = [node_ops[c] for node_ops in per_node for c in range(cpus)]
    return program.with_shape(nodes, cpus, new_ops)


def _compact_pool(program: FuzzProgram) -> Optional[FuzzProgram]:
    """Drop unreferenced pool slots and renumber the rest densely."""
    used = program.used_slots()
    if len(used) == len(program.pool):
        return None
    if not used:
        return None
    remap = {old: new for new, old in enumerate(used)}
    pool = [program.pool[s] for s in used]
    ops = [
        tuple((k, 0 if k == "mb" else remap[s], g) for k, s, g in cpu_ops)
        for cpu_ops in program.ops
    ]
    return program.with_pool(pool, ops)


def _flat_gaps(program: FuzzProgram) -> FuzzProgram:
    ops = [tuple((k, s, 1) for k, s, _g in cpu_ops)
           for cpu_ops in program.ops]
    return program.with_ops(ops)


def shrink(program: FuzzProgram, signature: str, run_fn: Callable,
           budget: int = 400,
           log: Optional[Callable[[str], None]] = None) -> ShrinkOutcome:
    """Minimise *program* while it keeps failing with *signature*.

    ``run_fn(program) -> FuzzVerdict`` must be deterministic.  Returns
    the smallest program found within *budget* simulations.
    """
    search = _Search(signature, run_fn, budget, log)
    best = program
    improved = True
    while improved and not search.exhausted:
        improved = False

        # 1. drop whole CPUs
        for gcpu in range(best.total_cpus):
            if not best.ops[gcpu]:
                continue
            candidate = best.with_ops(_with_cpu(best.ops, gcpu, ()))
            if search.reproduces(candidate):
                best = candidate
                improved = True

        # 2. merge CPU pairs (j's ops appended to i)
        active = [g for g in range(best.total_cpus) if best.ops[g]]
        for i in active:
            for j in active:
                if i >= j or not best.ops[i] or not best.ops[j]:
                    continue
                merged = _with_cpu(best.ops, i, best.ops[i] + best.ops[j])
                candidate = best.with_ops(_with_cpu(merged, j, ()))
                if search.reproduces(candidate):
                    best = candidate
                    improved = True

        # 3. shape compaction
        candidate = _compact_shape(best)
        if candidate is not None and search.reproduces(candidate):
            best = candidate
            improved = True

        # 4. ddmin each CPU's op list
        for gcpu in range(best.total_cpus):
            if not best.ops[gcpu]:
                continue
            current = best

            def cpu_fails(new_ops: List[Op], _g=gcpu) -> bool:
                return search.reproduces(
                    current.with_ops(_with_cpu(current.ops, _g, new_ops)))

            minimal = _ddmin(best.ops[gcpu], cpu_fails)
            if len(minimal) < len(best.ops[gcpu]):
                best = best.with_ops(_with_cpu(best.ops, gcpu, minimal))
                improved = True

        # 5. pool compaction
        candidate = _compact_pool(best)
        if candidate is not None and search.reproduces(candidate):
            best = candidate
            improved = True

        # 6. gap normalisation
        candidate = _flat_gaps(best)
        if (candidate.canonical_json() != best.canonical_json()
                and search.reproduces(candidate)):
            best = candidate
            improved = True

    return ShrinkOutcome(best, search.runs, search.exhausted)
