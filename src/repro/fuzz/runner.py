"""Execute fuzz programs against the live simulator and cross-check.

:class:`FuzzWorkload` adapts a :class:`~repro.fuzz.program.FuzzProgram`
to the standard workload interface, so a fuzz run flows through the
harness's single shared measurement path
(:func:`repro.harness.runner.simulate`) like any experiment.  Two
optional workload hooks carry the fuzz-specific wiring:

* ``bind_system(system)`` — attach per-CPU completion observers
  (``CpuCore.obs_hook``), install the program's protocol mutation (if
  any), and stand up the :class:`~repro.fuzz.reference.ReferenceChecker`;
* ``post_run(system, result)`` — audit the quiesced system's residue
  and publish the reference telemetry as ``RunResult.extras["fuzz"]``.

Observation happens *at completion time, inside the completing event*:
the CPU fires ``obs_hook`` synchronously from the hit path and from the
miss-completion callback, so the L1 peek sees exactly the version the
access observed — no later invalidation can slip in between.  (Peeking
when the generator resumes would race the asynchronous batch-break
resume window.)

:func:`run_fuzz_program` wraps one program execution into a
:class:`FuzzVerdict`: either a clean pass with telemetry, or a captured
violation (reference, sanitizer, or stall) with a stable signature and
the tail of the protocol trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.checker import CoherenceViolation
from ..core.config import preset
from ..core.cpu import WARMUP_DONE
from ..core.messages import AccessKind
from ..harness.runner import RunResult, simulate
from ..mem.addr import LINE_SHIFT
from ..workloads.base import Workload, WorkloadThread
from .mutations import apply_mutation
from .program import OP_KINDS, FuzzProgram, Reproducer
from .reference import MemoryModelViolation, ReferenceChecker
from .shrink import shrink, violation_signature


@dataclass
class _FuzzUnits:
    """Exposes the per-CPU op count as the harness's measured units."""

    ops: int


class FuzzWorkload(Workload):
    """One FuzzProgram as a harness workload (one thread per used CPU)."""

    name = "fuzz"
    ilp = 1.0

    def __init__(self, program: FuzzProgram,
                 checkpoint_every_ps: int = 0) -> None:
        program.validate()
        self.program = program
        self.params = _FuzzUnits(
            ops=max(1, program.op_count // program.total_cpus))
        self.reference = ReferenceChecker(program.total_cpus)
        self.cursors: List[int] = [0] * program.total_cpus
        self.system = None
        self.mutation_ticker = None
        #: simulated-time period for the in-memory snapshot flight
        #: recorder (0 = off); see :func:`run_fuzz_program`'s bisection
        self.checkpoint_every_ps = checkpoint_every_ps
        self.checkpointer = None

    # -- workload interface ------------------------------------------------

    def thread_for(self, node: int, cpu: int) -> Optional[WorkloadThread]:
        p = self.program
        if node >= p.nodes or cpu >= p.cpus_per_node:
            return None
        gcpu = node * p.cpus_per_node + cpu
        ops = p.ops[gcpu]
        pool = p.pool

        def gen() -> Iterator:
            yield (0, None, WARMUP_DONE, True)
            for kind, slot, gap in ops:
                if kind == "mb":
                    yield (gap, AccessKind.MEMBAR, 0, True)
                else:
                    yield (gap, OP_KINDS[kind], pool[slot], True)

        return WorkloadThread(gen(), ilp=self.ilp, name=f"fuzz-n{node}c{cpu}")

    # -- harness hooks -----------------------------------------------------

    def bind_system(self, system) -> None:
        """Install completion observers and the program's mutation."""
        p = self.program
        self.system = system
        if self.checkpoint_every_ps:
            from ..checkpoint import PeriodicCheckpointer

            self.checkpointer = PeriodicCheckpointer(
                system, self.checkpoint_every_ps)
            self.checkpointer.start()
        if p.mutation:
            self.mutation_ticker = apply_mutation(system, p.mutation,
                                                  p.mutation_period)
        for node in range(p.nodes):
            chip = system.nodes[node]
            for cpu in range(p.cpus_per_node):
                gcpu = node * p.cpus_per_node + cpu
                chip.cpus[cpu].obs_hook = self._make_hook(gcpu, chip, cpu)

    def _make_hook(self, gcpu: int, chip, cpu: int):
        ops = self.program.ops[gcpu]
        pool = self.program.pool
        reference = self.reference
        cursors = self.cursors
        l1d = chip.l1_of(cpu, False)

        def hook(kind: AccessKind, addr: int) -> None:
            idx = cursors[gcpu]
            if idx >= len(ops):
                raise RuntimeError(
                    f"fuzz desync: cpu{gcpu} completed more accesses than "
                    f"its program holds ({len(ops)})")
            op_kind, slot, _gap = ops[idx]
            cursors[gcpu] = idx + 1
            if op_kind == "mb":
                if kind != AccessKind.MEMBAR:
                    raise RuntimeError(
                        f"fuzz desync: cpu{gcpu} op#{idx} expected membar, "
                        f"observed {kind.name}")
                reference.on_membar(gcpu)
                return
            expect = pool[slot]
            if kind == AccessKind.MEMBAR or addr != expect:
                raise RuntimeError(
                    f"fuzz desync: cpu{gcpu} op#{idx} expected "
                    f"{op_kind}@{expect:#x}, observed "
                    f"{kind.name}@{addr:#x}")
            line = l1d.peek(addr)
            if line is None:
                raise MemoryModelViolation(
                    "vanished-fill",
                    f"reference[vanished-fill]: cpu{gcpu} op#{idx} "
                    f"line={addr:#x} completed but no L1 copy exists")
            if op_kind == "ld":
                reference.on_read(gcpu, idx, addr, line.version)
            else:
                reference.on_write(gcpu, idx, addr, line.version, op_kind)

        return hook

    def post_run(self, system, result: RunResult) -> None:
        """Quiesced-residue audit + telemetry export."""
        p = self.program
        for gcpu, cursor in enumerate(self.cursors):
            if cursor != len(p.ops[gcpu]):
                raise RuntimeError(
                    f"fuzz desync: cpu{gcpu} completed {cursor} of "
                    f"{len(p.ops[gcpu])} ops")
        pool_lines = set(p.pool)
        surviving: List[Tuple[str, int, int]] = []
        for chip in system.nodes:
            for label, caches in (("il1", chip.l1i), ("dl1", chip.l1d)):
                for l1 in caches:
                    for la, l1line in l1.iter_lines():
                        if la in pool_lines:
                            surviving.append((
                                f"node{chip.node_id}.{label}{l1.cpu_id}",
                                la, l1line.version))
            for bank in chip.banks:
                for lset in bank.sets:
                    for tag, l2line in lset.items():
                        la = tag << LINE_SHIFT
                        if la in pool_lines:
                            surviving.append((
                                f"node{chip.node_id}.l2b{bank.bank_idx}",
                                la, l2line.version))
                for la, version in bank.wb_buffer.items():
                    if la in pool_lines:
                        surviving.append((
                            f"node{chip.node_id}.wb{bank.bank_idx}",
                            la, version))
        mem = {la: v for la, v in system.mem_versions.items()
               if la in pool_lines}
        self.reference.final_check(surviving, mem)
        extras: Dict[str, float] = dict(self.reference.counts())
        extras["ops_executed"] = float(sum(self.cursors))
        if self.mutation_ticker is not None:
            extras["mutation_fired"] = float(self.mutation_ticker.fired)
        result.extras["fuzz"] = extras


@dataclass(frozen=True)
class FuzzFactory:
    """Cache-keyable workload factory (``workload_token`` uses the
    canonical program JSON, so identical programs share cache entries)."""

    program_json: str

    @property
    def cache_token(self) -> str:
        return self.program_json

    def __call__(self, config, num_nodes: int) -> FuzzWorkload:
        import json

        return FuzzWorkload(FuzzProgram.from_dict(json.loads(
            self.program_json)))


@dataclass
class FuzzVerdict:
    """Outcome of one program execution."""

    ok: bool
    signature: str = ""
    kind: str = ""
    message: str = ""
    counts: Dict[str, float] = field(default_factory=dict)
    trace_window: List[str] = field(default_factory=list)
    result: Optional[RunResult] = None
    #: violation-bisection outcome when periodic checkpointing was armed:
    #: restored_from_ps, captures, recurred, replay_signature and the
    #: full-fidelity replay trace window (empty dict otherwise)
    bisect: Dict[str, object] = field(default_factory=dict)


def _trace_tail(workload: FuzzWorkload, last: int = 48) -> List[str]:
    system = workload.system
    checker = getattr(system, "checker", None) if system is not None else None
    trace = getattr(checker, "trace", None) if checker is not None else None
    if trace is None:
        return []
    return [ev.format() for ev in trace.events(last=last)]


def _bisect_replay(workload: FuzzWorkload, trace_capacity: int,
                   tail: int = 48) -> Dict[str, object]:
    """Restore the last pre-violation snapshot and replay the final window.

    Long fuzz runs with small trace rings lose the interesting history by
    the time a violation fires.  With periodic checkpointing armed, the
    violation instead becomes: restore the most recent snapshot (strictly
    before the violation — the capturing tick ran to completion), arm a
    fresh full-capacity protocol trace, and re-run just the final window.
    Determinism guarantees the violation recurs, now with its complete
    event history in the ring.
    """
    from types import SimpleNamespace

    from ..checkpoint import restore_system

    ckpt = workload.checkpointer
    snap = ckpt.latest() if ckpt is not None else None
    if snap is None:
        return {}
    restored_ps, payload = snap
    info: Dict[str, object] = {
        "restored_from_ps": restored_ps,
        "captures": ckpt.captures,
    }
    system = restore_system(payload)
    if system.checker is not None:
        system.arm_trace(max(trace_capacity, 512))
    try:
        system.run_to_completion()
        system.verify()
        post_run = getattr(system.workload, "post_run", None)
        if post_run is not None:
            post_run(system, SimpleNamespace(extras={}))
    except (MemoryModelViolation, CoherenceViolation, RuntimeError) as exc:
        info["recurred"] = True
        info["replay_signature"] = violation_signature(exc)
        trace = (system.checker.trace
                 if system.checker is not None else None)
        if trace is not None:
            info["trace_window"] = [
                ev.format() for ev in trace.events(last=tail)]
        return info
    # A non-recurring violation would mean the simulation is not a pure
    # function of its state — report it rather than hide it.
    info["recurred"] = False
    return info


def run_fuzz_program(program: FuzzProgram, check: bool = True,
                     trace_capacity: int = 2048,
                     checkpoint_every_ps: int = 0) -> FuzzVerdict:
    """Run one program deterministically; never raises on a violation.

    ``check=True`` (the default) arms both oracles: the structural
    sanitizer (continuous audits + quiesce verify) and the reference
    checker (always on — it rides the workload hooks).  A violation
    from either — or a stalled simulation — becomes a failed verdict
    carrying :func:`~repro.fuzz.shrink.violation_signature` and the
    protocol-trace tail.

    ``checkpoint_every_ps`` arms the snapshot flight recorder: on a
    violation the last pre-violation snapshot is restored and the final
    window replayed at full trace fidelity (see :func:`_bisect_replay`);
    the outcome lands in ``FuzzVerdict.bisect``.
    """
    program.validate()
    config = preset(program.config)
    if program.cpus_per_node > config.cpus:
        raise ValueError(
            f"program wants {program.cpus_per_node} CPUs/node but "
            f"{program.config} has {config.cpus}")
    if program.op_count == 0:
        return FuzzVerdict(ok=True)
    workload = FuzzWorkload(program, checkpoint_every_ps=checkpoint_every_ps)
    try:
        result = simulate(
            config, lambda _cfg, _n: workload, num_nodes=program.nodes,
            units_attr="ops", check_coherence=check,
            trace_capacity=trace_capacity if check else 0,
        )
    except (MemoryModelViolation, CoherenceViolation, RuntimeError) as exc:
        return FuzzVerdict(
            ok=False,
            signature=violation_signature(exc),
            kind=getattr(exc, "kind", type(exc).__name__),
            message=str(exc),
            counts=dict(workload.reference.counts()),
            trace_window=_trace_tail(workload),
            bisect=_bisect_replay(workload, trace_capacity),
        )
    return FuzzVerdict(ok=True,
                       counts=dict(result.extras.get("fuzz", {})),
                       result=result)


def shrink_failure(program: FuzzProgram, verdict: FuzzVerdict,
                   budget: int = 400, log=None) -> Reproducer:
    """Delta-debug a failing program to a minimal reproducer."""

    def run(candidate: FuzzProgram) -> FuzzVerdict:
        return run_fuzz_program(candidate, check=True, trace_capacity=512)

    outcome = shrink(program, verdict.signature, run, budget=budget, log=log)
    final = run(outcome.program)
    return Reproducer(
        program=outcome.program,
        signature=final.signature,
        kind=final.kind,
        message=final.message,
        trace_window=final.trace_window,
        shrunk_from_ops=program.op_count,
        shrink_runs=outcome.runs,
    )


def replay(repro: Reproducer, check: bool = True) -> FuzzVerdict:
    """Re-run a reproducer exactly as recorded (mutation included)."""
    return run_fuzz_program(repro.program, check=check, trace_capacity=512)
