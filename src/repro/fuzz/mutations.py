"""Deliberate protocol mutations for differential testing.

Each mutation installs a deterministic fault into a built
:class:`~repro.core.system.PiranhaSystem` by wrapping *instance*
methods (never classes — systems in the same process stay isolated).
A shared :class:`Ticker` makes the fault fire on every Nth opportunity
system-wide, so a mutated run is exactly as reproducible as a clean
one.

These serve two purposes: they prove the fuzz oracles can actually see
protocol bugs (CI runs a mutated smoke alongside the clean one), and
they give the shrinker realistic failures to minimise.  The roster is
chosen so the two oracles have distinct blind spots covered:

``lost_inval``
    a remote invalidation is acknowledged without invalidating —
    visible both to the structural sanitizer (hidden copies at quiesce)
    and to the reference checker (stale-value reads);
``stale_share``
    a SHARED fill serves the previous version of the line — the
    structures stay perfectly consistent, only *values* are wrong, so
    the reference checker alone catches it;
``skip_fence``
    a memory barrier reports completion while invalidation acks are
    still outstanding — the paper's eager-exclusive-reply window leaks
    past the MB, breaking exactly the message-passing axiom the
    reference checker's membar tracking encodes.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.messages import MESI


class Ticker:
    """Shared deterministic trigger: fires every *period*-th opportunity."""

    def __init__(self, period: int) -> None:
        self.period = max(1, int(period))
        self.calls = 0
        self.fired = 0

    def fire(self) -> bool:
        self.calls += 1
        if self.calls % self.period:
            return False
        self.fired += 1
        return True


#: name -> installer(system, ticker)
MUTATIONS: Dict[str, Callable] = {}


def _mutation(name: str):
    def register(fn):
        MUTATIONS[name] = fn
        return fn
    return register


def apply_mutation(system, name: str, period: int = 1) -> Ticker:
    """Install mutation *name* into *system*; returns its Ticker so the
    caller can report how often the fault actually fired."""
    try:
        installer = MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r} (have: {sorted(MUTATIONS)})")
    ticker = Ticker(period)
    installer(system, ticker)
    return ticker


@_mutation("lost_inval")
def _lost_inval(system, ticker: Ticker) -> None:
    """Every Nth remote invalidation acks without touching the caches."""
    for node in system.nodes:
        for bank in node.banks:
            orig = bank.service_invalidate

            def wrapped(line, on_done, epoch=None, _orig=orig, _bank=bank):
                if ticker.fire():
                    _bank.schedule(_bank.t_tag + _bank.t_ics, on_done)
                    return
                _orig(line, on_done, epoch)

            bank.service_invalidate = wrapped


@_mutation("stale_share")
def _stale_share(system, ticker: Ticker) -> None:
    """Every Nth SHARED fill delivers the line's previous version."""
    for node in system.nodes:
        for bank in node.banks:
            orig = bank._fill

            def wrapped(req, line, state, owner, version, dirty, source,
                        _orig=orig):
                if state == MESI.SHARED and version > 0 and ticker.fire():
                    version -= 1
                _orig(req, line, state, owner, version, dirty, source)

            bank._fill = wrapped


@_mutation("skip_fence")
def _skip_fence(system, ticker: Ticker) -> None:
    """Every Nth memory barrier completes without draining the CPU's
    outstanding invalidation acks."""
    for node in system.nodes:
        orig = node.fence

        def wrapped(cpu_id, resume, _orig=orig):
            if ticker.fire():
                return True
            return _orig(cpu_id, resume)

        node.fence = wrapped
