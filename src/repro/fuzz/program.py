"""Compact, serialisable fuzz stimulus programs.

A :class:`FuzzProgram` is the unit the whole fuzz subsystem trades in:
the stimulus generator emits one, the runner executes one, the shrinker
transforms one, and a reproducer file *is* one (plus the recorded
verdict).  It is deliberately tiny and value-typed — a list of per-CPU
op lists over a small shared address pool — so delta-debugging can
slice it freely and a failure case fits in a few hundred bytes of JSON.

Ops are ``(kind, slot, gap)`` triples:

* ``kind`` — ``"ld"`` (LOAD), ``"st"`` (STORE), ``"wh"`` (wh64) or
  ``"mb"`` (memory barrier; ``slot`` is ignored);
* ``slot`` — index into the program's address pool.  Distinct slots may
  alias the same cache line (that is how false-sharing pairs are
  expressed: two logical variables, one line);
* ``gap`` — instructions of local work charged before the access.  The
  generator shapes these (bursts, node skew) to bias the scheduler.

The pool holds absolute line addresses chosen so consecutive 8 KB
chunks land at different home nodes (see
:class:`~repro.mem.addr.AddressMap`), giving cross-node traffic without
any knowledge of the system under test.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.messages import AccessKind

#: op kind -> the AccessKind the CPU issues
OP_KINDS: Dict[str, AccessKind] = {
    "ld": AccessKind.LOAD,
    "st": AccessKind.STORE,
    "wh": AccessKind.WH64,
    "mb": AccessKind.MEMBAR,
}

#: current reproducer schema identifier
REPRO_SCHEMA = "repro-fuzz/1"

Op = Tuple[str, int, int]  # (kind, slot, gap)


@dataclass(frozen=True)
class FuzzProgram:
    """One deterministic stimulus: per-CPU op lists over an address pool."""

    seed: int
    config: str                    # chip preset name (P1/P2/...)
    nodes: int
    cpus_per_node: int
    pool: Tuple[int, ...]          # slot -> absolute line address
    ops: Tuple[Tuple[Op, ...], ...]  # one tuple of ops per global CPU
    #: deliberate protocol mutation to apply (see repro.fuzz.mutations);
    #: None fuzzes the real protocol
    mutation: Optional[str] = None
    #: every Nth opportunity the mutation fires (determinism knob)
    mutation_period: int = 1

    # -- derived -----------------------------------------------------------

    @property
    def total_cpus(self) -> int:
        return self.nodes * self.cpus_per_node

    @property
    def op_count(self) -> int:
        return sum(len(cpu_ops) for cpu_ops in self.ops)

    def used_slots(self) -> List[int]:
        """Pool slots referenced by at least one non-membar op."""
        used = sorted({slot for cpu_ops in self.ops
                       for kind, slot, _gap in cpu_ops if kind != "mb"})
        return used

    def validate(self) -> None:
        if self.nodes < 1 or self.cpus_per_node < 1:
            raise ValueError("need at least one node and one CPU")
        if len(self.ops) != self.total_cpus:
            raise ValueError(
                f"{len(self.ops)} op lists for {self.total_cpus} CPUs")
        if not self.pool:
            raise ValueError("empty address pool")
        for addr in self.pool:
            if addr % 64:
                raise ValueError(f"pool address {addr:#x} not line-aligned")
        for cpu_ops in self.ops:
            for kind, slot, gap in cpu_ops:
                if kind not in OP_KINDS:
                    raise ValueError(f"unknown op kind {kind!r}")
                if kind != "mb" and not 0 <= slot < len(self.pool):
                    raise ValueError(f"slot {slot} outside pool")
                if gap < 1:
                    raise ValueError(f"gap {gap} must be >= 1")

    # -- transforms (used by the shrinker) ---------------------------------

    def with_ops(self, ops: Sequence[Sequence[Op]]) -> "FuzzProgram":
        return replace(self, ops=tuple(tuple(o) for o in ops))

    def with_pool(self, pool: Sequence[int],
                  ops: Sequence[Sequence[Op]]) -> "FuzzProgram":
        return replace(self, pool=tuple(pool),
                       ops=tuple(tuple(o) for o in ops))

    def with_shape(self, nodes: int, cpus_per_node: int,
                   ops: Sequence[Sequence[Op]]) -> "FuzzProgram":
        return replace(self, nodes=nodes, cpus_per_node=cpus_per_node,
                       ops=tuple(tuple(o) for o in ops))

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "config": self.config,
            "nodes": self.nodes,
            "cpus_per_node": self.cpus_per_node,
            "pool": list(self.pool),
            "ops": [[[k, s, g] for k, s, g in cpu_ops]
                    for cpu_ops in self.ops],
            "mutation": self.mutation,
            "mutation_period": self.mutation_period,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FuzzProgram":
        program = cls(
            seed=int(doc["seed"]),
            config=str(doc["config"]),
            nodes=int(doc["nodes"]),
            cpus_per_node=int(doc["cpus_per_node"]),
            pool=tuple(int(a) for a in doc["pool"]),
            ops=tuple(tuple((str(k), int(s), int(g)) for k, s, g in cpu_ops)
                      for cpu_ops in doc["ops"]),
            mutation=doc.get("mutation"),
            mutation_period=int(doc.get("mutation_period", 1)),
        )
        program.validate()
        return program

    def canonical_json(self) -> str:
        """Stable one-line JSON (the disk-cache / dedup token)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def describe(self) -> str:
        kinds: Dict[str, int] = {}
        for cpu_ops in self.ops:
            for kind, _slot, _gap in cpu_ops:
                kinds[kind] = kinds.get(kind, 0) + 1
        mix = " ".join(f"{k}={kinds.get(k, 0)}" for k in ("ld", "st", "wh", "mb"))
        mut = f" mutation={self.mutation}/{self.mutation_period}" \
            if self.mutation else ""
        return (f"fuzz[seed={self.seed} {self.config}x{self.nodes} "
                f"cpus={self.total_cpus} pool={len(self.pool)} "
                f"ops={self.op_count} ({mix}){mut}]")


# ---------------------------------------------------------------------------
# Reproducer files
# ---------------------------------------------------------------------------


@dataclass
class Reproducer:
    """A self-contained failure case: program + expected verdict + trace.

    ``repro fuzz --replay file.json`` and the generated pytest in
    ``tests/test_fuzz_repros.py`` both load exactly this document.
    """

    program: FuzzProgram
    signature: str                  # stable violation signature to expect
    kind: str                       # violation kind tag (e.g. "coherence-regress")
    message: str = ""               # full first-failure message (informational)
    trace_window: List[str] = field(default_factory=list)
    shrunk_from_ops: int = 0        # op count before shrinking
    shrink_runs: int = 0            # simulations the shrinker spent

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": REPRO_SCHEMA,
            "program": self.program.to_dict(),
            "signature": self.signature,
            "kind": self.kind,
            "message": self.message,
            "trace_window": list(self.trace_window),
            "shrunk_from_ops": self.shrunk_from_ops,
            "shrink_runs": self.shrink_runs,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "Reproducer":
        if doc.get("schema") != REPRO_SCHEMA:
            raise ValueError(
                f"not a {REPRO_SCHEMA} document: {doc.get('schema')!r}")
        return cls(
            program=FuzzProgram.from_dict(doc["program"]),
            signature=str(doc["signature"]),
            kind=str(doc["kind"]),
            message=str(doc.get("message", "")),
            trace_window=[str(s) for s in doc.get("trace_window", [])],
            shrunk_from_ops=int(doc.get("shrunk_from_ops", 0)),
            shrink_runs=int(doc.get("shrink_runs", 0)),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "Reproducer":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))
