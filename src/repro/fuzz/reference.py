"""Axiomatic memory-model reference checker.

The simulator already carries a *value proxy* for every cache line: the
per-line version token, incremented by each store (and each ``wh64``
zero-fill) and propagated by fills, write-backs and forwards.  Version
tokens therefore name the writes to a line, and the sequence
``1..max`` is the line's **coherence order**.  That lets read values be
checked axiomatically — with no knowledge of the protocol's structure —
by watching what version each CPU observes at every access:

* **coherence order is a total order of writes** — no two writes may
  produce the same version of a line (a duplicate means two writers
  built on the same base copy: a lost update), and no write may skip
  past unwritten versions;
* **per-CPU order respects coherence order** (CoRR/CoWR/CoWW) — the
  versions one CPU observes of one line never go backwards.  Reading a
  globally-stale version is *legal* under the paper's eager exclusive
  replies (Alpha memory model) — but re-reading an older version after
  a newer one is not;
* **membar pairs are ordered** (the MP litmus axiom) — when a writer
  separates two writes with an MB, a reader that observes the second
  write and then executes its own MB must not subsequently read
  anything older than what the writer had done before *its* MB.

The checker is deliberately independent of
:class:`~repro.core.checker.CoherenceChecker`: that sanitizer audits
protocol *structure* (duplicate tags, inclusion, directories); this one
audits observed *values*.  A protocol mutation that keeps the structures
self-consistent but leaks stale data — e.g. a fence that does not wait
for its invalidation acks — is invisible to the sanitizer and caught
here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class MemoryModelViolation(AssertionError):
    """The simulation produced a value history no memory model allows.

    ``kind`` is a stable machine-readable tag (the shrinker matches on
    it to ensure it is chasing the same bug while minimising).
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind


@dataclass
class WriteRec:
    """One write in a line's coherence order."""

    gcpu: int                 # global CPU id of the writer
    op_idx: int               # writer's program-order index
    kind: str                 # "st" or "wh"
    #: versions (per line) ordered before this write by the writer's
    #: last membar — what an acquiring reader is entitled to expect
    frontier: Dict[int, int] = field(default_factory=dict)


class ReferenceChecker:
    """Tracks per-line coherence order and per-CPU observations."""

    def __init__(self, num_cpus: int) -> None:
        self.num_cpus = num_cpus
        #: line -> {version -> WriteRec}; the line's coherence order
        self.writes: Dict[int, Dict[int, WriteRec]] = {}
        self.max_written: Dict[int, int] = {}
        self.write_counts: Dict[int, int] = {}
        #: per-CPU last observed version per line (program order)
        self.seen: List[Dict[int, int]] = [dict() for _ in range(num_cpus)]
        #: per-CPU lower bounds acquired through membars (MP axiom)
        self.acquired: List[Dict[int, int]] = [dict() for _ in range(num_cpus)]
        #: per-CPU snapshot of (seen ∪ acquired) at the last membar; this
        #: is the frontier recorded with the CPU's subsequent writes
        self.fenced: List[Dict[int, int]] = [dict() for _ in range(num_cpus)]
        #: frontiers of versions read since the CPU's last membar; the
        #: next membar folds them into ``acquired``
        self.pending: List[List[Dict[int, int]]] = [[] for _ in range(num_cpus)]
        # telemetry
        self.reads = 0
        self.writes_observed = 0
        self.membars = 0
        self.zero_fill_reads = 0
        self.stale_reads = 0      # legal stale observations (informational)

    # -- violation plumbing ------------------------------------------------

    def _fail(self, kind: str, message: str) -> None:
        raise MemoryModelViolation(kind, f"reference[{kind}]: {message}")

    @staticmethod
    def _ctx(gcpu: int, op_idx: int, line: int, version: int) -> str:
        return f"cpu{gcpu} op#{op_idx} line={line:#x} version={version}"

    # -- observations ------------------------------------------------------

    def on_write(self, gcpu: int, op_idx: int, line: int, version: int,
                 kind: str = "st") -> None:
        """CPU *gcpu* completed a store/wh64 producing *version*."""
        self.writes_observed += 1
        ctx = self._ctx(gcpu, op_idx, line, version)
        if version < 1:
            self._fail("unversioned-write", f"{ctx}: write produced no "
                       f"new version token")
        line_writes = self.writes.setdefault(line, {})
        prior = line_writes.get(version)
        if prior is not None:
            self._fail(
                "lost-update",
                f"{ctx}: version already written by cpu{prior.gcpu} "
                f"op#{prior.op_idx} — two writers built on the same base "
                f"copy (a lost update)")
        top = self.max_written.get(line, 0)
        if version > top + 1:
            self._fail(
                "version-skip",
                f"{ctx}: skips unwritten versions (coherence order so far "
                f"ends at {top})")
        s = self.seen[gcpu].get(line, 0)
        if version <= s:
            self._fail(
                "coherence-regress",
                f"{ctx}: writes behind version {s} this CPU already "
                f"observed (CoWW/CoWR order broken)")
        a = self.acquired[gcpu].get(line, 0)
        if version <= a:
            self._fail(
                "mp-stale",
                f"{ctx}: writes behind version {a} acquired through a "
                f"membar-ordered read")
        line_writes[version] = WriteRec(gcpu, op_idx, kind,
                                        self.fenced[gcpu])
        self.max_written[line] = max(top, version)
        self.write_counts[line] = self.write_counts.get(line, 0) + 1
        self.seen[gcpu][line] = version

    def on_read(self, gcpu: int, op_idx: int, line: int, version: int) -> None:
        """CPU *gcpu* completed a load observing *version*."""
        self.reads += 1
        ctx = self._ctx(gcpu, op_idx, line, version)
        rec: Optional[WriteRec] = None
        if version > 0:
            rec = self.writes.get(line, {}).get(version)
            if rec is None:
                self._fail(
                    "fabricated-version",
                    f"{ctx}: no store ever produced this version (written "
                    f"so far: 1..{self.max_written.get(line, 0)})")
        s = self.seen[gcpu].get(line, 0)
        if version < s:
            self._fail(
                "coherence-regress",
                f"{ctx}: older than version {s} this CPU already observed "
                f"(CoRR order broken)")
        a = self.acquired[gcpu].get(line, 0)
        if version < a:
            self._fail(
                "mp-stale",
                f"{ctx}: older than version {a} acquired through a "
                f"membar-ordered read (message-passing broken)")
        if version > s:
            self.seen[gcpu][line] = version
        if rec is not None:
            if rec.kind == "wh":
                self.zero_fill_reads += 1
            if rec.frontier:
                self.pending[gcpu].append(rec.frontier)
        if version < self.max_written.get(line, 0):
            self.stale_reads += 1  # architecturally legal (eager replies)

    def on_membar(self, gcpu: int) -> None:
        """CPU *gcpu* completed a memory barrier."""
        self.membars += 1
        acquired = self.acquired[gcpu]
        for frontier in self.pending[gcpu]:
            for line, version in frontier.items():
                if version > acquired.get(line, 0):
                    acquired[line] = version
        self.pending[gcpu].clear()
        # Snapshot the frontier this CPU's future writes will publish.
        snap = dict(acquired)
        for line, version in self.seen[gcpu].items():
            if version > snap.get(line, 0):
                snap[line] = version
        self.fenced[gcpu] = snap

    # -- end-of-run audit --------------------------------------------------

    def final_check(self, surviving: Iterable[Tuple[str, int, int]],
                    mem_versions: Dict[int, int]) -> None:
        """Audit the quiesced system's residue against the write history.

        *surviving* yields ``(where, line, version)`` for every cached
        copy of a tracked line; *mem_versions* is the committed memory
        image.  Every surviving version must have been produced by some
        observed write, and coherence order must be gap-free.
        """
        for line, count in self.write_counts.items():
            top = self.max_written.get(line, 0)
            if count != top:
                self._fail(
                    "write-count-mismatch",
                    f"line={line:#x}: {count} writes observed but coherence "
                    f"order ends at version {top}")
        for where, line, version in surviving:
            if version > 0 and version not in self.writes.get(line, {}):
                self._fail(
                    "residual-fabricated",
                    f"{where}: line={line:#x} survived with version "
                    f"{version}, which no store produced "
                    f"(written: 1..{self.max_written.get(line, 0)})")
        for line, version in mem_versions.items():
            if line not in self.writes and version == 0:
                continue
            if version > self.max_written.get(line, 0):
                self._fail(
                    "residual-fabricated",
                    f"memory: line={line:#x} committed version {version} "
                    f"beyond coherence order "
                    f"(max {self.max_written.get(line, 0)})")

    # -- telemetry ---------------------------------------------------------

    def counts(self) -> Dict[str, float]:
        return {
            "ref_reads": float(self.reads),
            "ref_writes": float(self.writes_observed),
            "ref_membars": float(self.membars),
            "ref_zero_fill_reads": float(self.zero_fill_reads),
            "ref_stale_reads": float(self.stale_reads),
            "ref_lines_written": float(len(self.writes)),
        }
