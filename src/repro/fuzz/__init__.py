"""Differential fuzzing & litmus-test subsystem.

Seeded random stimulus over contended address pools
(:mod:`~repro.fuzz.stimulus`), cross-checked against an axiomatic
memory-model reference (:mod:`~repro.fuzz.reference`) independently of
the structural sanitizer, with failing programs delta-debugged to
minimal self-contained reproducers (:mod:`~repro.fuzz.shrink`).  See
DESIGN.md §4f.
"""

from .mutations import MUTATIONS, apply_mutation
from .program import FuzzProgram, Reproducer
from .reference import MemoryModelViolation, ReferenceChecker
from .runner import (
    FuzzVerdict,
    FuzzWorkload,
    replay,
    run_fuzz_program,
    shrink_failure,
)
from .shrink import ShrinkOutcome, shrink, violation_signature
from .stimulus import StimulusParams, generate, params_for

__all__ = [
    "FuzzProgram", "Reproducer", "MemoryModelViolation", "ReferenceChecker",
    "FuzzVerdict", "FuzzWorkload", "run_fuzz_program", "replay",
    "shrink_failure", "ShrinkOutcome", "shrink", "violation_signature",
    "StimulusParams", "generate", "params_for",
    "MUTATIONS", "apply_mutation",
]
