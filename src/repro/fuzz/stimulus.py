"""Seeded random stimulus generation.

Builds :class:`~repro.fuzz.program.FuzzProgram` instances that
concentrate traffic into the protocol corners PR 2's sanitizer hunts:
tiny contended address pools, heavy write sharing, and biased timing.

The address pool mixes three sharing idioms:

* **false-sharing pairs** — two pool slots aliased to one cache line,
  so independent-looking variables collide in the coherence protocol;
* **migratory lines** — single hot lines that every CPU
  read-modify-writes, ping-ponging ownership;
* **producer–consumer rings** — a short run of data lines plus a flag
  line, driven by structured ``st;st;mb;st-flag`` / ``ld-flag;mb;ld``
  sequences (the message-passing litmus shape the membar axioms check).

Pool lines are spread across home nodes by allocating them out of
consecutive 8 KB chunks (the :class:`~repro.mem.addr.AddressMap`
round-robin granularity), so a 4-node system sees local, 2-hop and
3-hop service paths from even a 16-line pool.

Timing bias comes from the per-op ``gap`` field: most gaps are short
(burst arrivals), a thin tail is long (drain-and-collide), and each
CPU's first gap is skewed by node index so nodes enter the fray
staggered rather than lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..sim.rng import substream
from .program import FuzzProgram, Op

LINE = 64
HOME_GRANULARITY = 8192
#: pool lines start here; clear of the microbenchmark regions at 0x0
POOL_BASE = 0x4000_0000


@dataclass(frozen=True)
class StimulusParams:
    """Knobs for one generated program (all defaulted for `repro fuzz`)."""

    seed: int = 0
    config: str = "P8"
    nodes: int = 1
    cpus_per_node: int = 4
    ops_per_cpu: int = 64
    pool_lines: int = 8          # distinct cache lines in the pool
    false_share_pairs: int = 2   # extra aliased slots over existing lines
    ring_lines: int = 3          # data lines per producer-consumer ring
    #: op-mix weights (ld, st, wh, mb) for unstructured filler ops
    weights: Tuple[float, float, float, float] = (0.40, 0.35, 0.10, 0.15)
    burst_gap: int = 4           # bursty ops draw gaps in [1, burst_gap]
    stall_gap: int = 300         # occasional long think time
    stall_prob: float = 0.04
    node_skew_gap: int = 200     # extra initial gap per node index
    idiom_prob: float = 0.35     # chance an emission is a structured idiom


def _pool_addresses(lines: int) -> List[int]:
    """*lines* distinct line addresses, one per 8 KB chunk so consecutive
    pool lines are homed at consecutive nodes."""
    return [POOL_BASE + i * HOME_GRANULARITY for i in range(lines)]


def build_pool(params: StimulusParams) -> Tuple[int, ...]:
    """Pool slots: distinct lines first, then aliased false-sharing slots."""
    rng = substream(params.seed, "fuzz", "pool")
    lines = _pool_addresses(max(1, params.pool_lines))
    slots = list(lines)
    for _ in range(params.false_share_pairs):
        slots.append(lines[rng.randrange(len(lines))])
    return tuple(slots)


class _CpuStream:
    """Generates one CPU's op list: weighted filler plus sharing idioms."""

    def __init__(self, params: StimulusParams, gcpu: int, node: int,
                 pool_slots: int) -> None:
        self.p = params
        self.rng = substream(params.seed, "fuzz", "cpu", gcpu)
        self.node = node
        self.pool_slots = pool_slots
        # Ring role alternates by global CPU id so every ring has both ends.
        self.producer = gcpu % 2 == 0

    def _gap(self) -> int:
        if self.rng.random() < self.p.stall_prob:
            return self.rng.randrange(self.p.stall_gap // 2,
                                      self.p.stall_gap + 1)
        return self.rng.randrange(1, self.p.burst_gap + 1)

    def _slot(self) -> int:
        return self.rng.randrange(self.pool_slots)

    def _filler(self) -> List[Op]:
        u = self.rng.random()
        w = self.p.weights
        if u < w[0]:
            kind = "ld"
        elif u < w[0] + w[1]:
            kind = "st"
        elif u < w[0] + w[1] + w[2]:
            kind = "wh"
        else:
            kind = "mb"
        return [(kind, 0 if kind == "mb" else self._slot(), self._gap())]

    def _migratory(self) -> List[Op]:
        slot = self._slot()
        return [("ld", slot, self._gap()), ("st", slot, self._gap())]

    def _ring(self) -> List[Op]:
        """Message-passing shape over the low pool slots: the producer
        writes data lines then a membar then the flag; the consumer reads
        the flag, membars, then reads the data."""
        data = min(self.p.ring_lines, self.pool_slots - 1)
        if data < 1:
            return self._filler()
        flag = data  # slot just past the ring's data lines
        if self.producer:
            ops: List[Op] = [("st", i, self._gap()) for i in range(data)]
            ops.append(("mb", 0, 1))
            ops.append(("st", flag, self._gap()))
        else:
            ops = [("ld", flag, self._gap()), ("mb", 0, 1)]
            ops.extend(("ld", i, self._gap()) for i in range(data))
        return ops

    def emit(self) -> List[Op]:
        ops: List[Op] = []
        # Node skew: stagger when each node's CPUs join the contention.
        first_gap = 1 + self.node * self.p.node_skew_gap \
            + self.rng.randrange(self.p.burst_gap)
        while len(ops) < self.p.ops_per_cpu:
            u = self.rng.random()
            if u < self.p.idiom_prob / 2:
                ops.extend(self._ring())
            elif u < self.p.idiom_prob:
                ops.extend(self._migratory())
            else:
                ops.extend(self._filler())
        ops = ops[:self.p.ops_per_cpu]
        if ops:
            kind, slot, _gap = ops[0]
            ops[0] = (kind, slot, first_gap)
        return ops


def generate(params: StimulusParams) -> FuzzProgram:
    """Build the deterministic program for *params* (same params → same
    program, bit for bit)."""
    pool = build_pool(params)
    ops = []
    for node in range(params.nodes):
        for cpu in range(params.cpus_per_node):
            gcpu = node * params.cpus_per_node + cpu
            stream = _CpuStream(params, gcpu, node, len(pool))
            ops.append(tuple(stream.emit()))
    program = FuzzProgram(
        seed=params.seed,
        config=params.config,
        nodes=params.nodes,
        cpus_per_node=params.cpus_per_node,
        pool=pool,
        ops=tuple(ops),
    )
    program.validate()
    return program


def params_for(seed: int, total_ops: int, nodes: int, config: str = "P8",
               cpus_per_node: int = 4) -> StimulusParams:
    """Convenience mapping from the CLI's --seed/--ops/--nodes triple."""
    total_cpus = max(1, nodes * cpus_per_node)
    return StimulusParams(
        seed=seed,
        config=config,
        nodes=nodes,
        cpus_per_node=cpus_per_node,
        ops_per_cpu=max(1, total_ops // total_cpus),
    )
