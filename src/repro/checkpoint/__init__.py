"""Checkpoint/restore subsystem: warm-state snapshots of the machine.

Layers (bottom up):

* :mod:`~repro.checkpoint.pickling` — closure-capable pickler; turns the
  live simulation graph into bytes and back, preserving shared-object
  identity.
* :mod:`~repro.checkpoint.machine` — what a snapshot *is* (system +
  event queue + workload + txn counter) and *when* it may be taken
  (between events: the warm-boundary hook, the periodic ticker).
* :mod:`~repro.checkpoint.format` — the versioned, digest-stamped
  ``.ckpt`` file: magic + JSON manifest + zlib payload, deterministic
  byte-for-byte.
* :mod:`~repro.checkpoint.store` — the warm-checkpoint store the
  harness's ``warmup=True`` path and resumable sweeps key into.

This module is the facade the CLI verbs (``repro checkpoint
save|restore|info``) and tests use.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from .format import (CheckpointError, SCHEMA, build_manifest,
                     read_checkpoint, read_manifest, validate_manifest,
                     write_checkpoint)
from .machine import (PeriodicCheckpointer, WarmCapture, WindowHandoff,
                      restore_system, snapshot_bytes)
from .pickling import CheckpointPickler, dumps, loads
from .store import WARM_STORE, WarmStore, warm_key

__all__ = [
    "CheckpointError", "SCHEMA",
    "CheckpointPickler", "dumps", "loads",
    "snapshot_bytes", "restore_system", "WarmCapture",
    "PeriodicCheckpointer", "WindowHandoff",
    "WarmStore", "WARM_STORE", "warm_key",
    "save_checkpoint", "load_checkpoint", "checkpoint_info",
    "build_manifest", "read_checkpoint", "read_manifest",
    "validate_manifest", "write_checkpoint",
]


def save_checkpoint(path: str, system, *, payload: Optional[bytes] = None,
                    workload: Optional[str] = None,
                    sim_now: Optional[int] = None,
                    extra: Optional[Dict[str, Any]] = None
                    ) -> Dict[str, Any]:
    """Write *system* (or a pre-captured *payload* of it) to *path*.

    Without an explicit payload the system is snapshotted now — the
    caller is responsible for being between events (e.g. after
    ``run_to_completion`` returned, or from a scheduled callback).
    Returns the manifest that was written.
    """
    from ..harness.cache import config_digest, library_fingerprint

    if payload is None:
        payload = snapshot_bytes(system)
        if sim_now is None:
            sim_now = system.sim.now
    manifest = build_manifest(
        payload,
        fingerprint=library_fingerprint(),
        config_digest=config_digest(system.config),
        workload=workload,
        nodes=system.num_nodes,
        sim_now=int(sim_now if sim_now is not None else system.sim.now),
        extra=extra,
    )
    write_checkpoint(path, manifest, payload)
    return manifest


def load_checkpoint(path: str, *, expect_config=None, force: bool = False
                    ) -> Tuple[Dict[str, Any], Any]:
    """Read, validate and restore a checkpoint file.

    Schema and Python version are always enforced; library fingerprint
    and (when *expect_config* is given) config digest are enforced unless
    *force*.  Returns ``(manifest, system)``.
    """
    from ..harness.cache import config_digest, library_fingerprint

    manifest, payload = read_checkpoint(path)
    validate_manifest(
        manifest,
        fingerprint=library_fingerprint(),
        config_digest=(config_digest(expect_config)
                       if expect_config is not None else None),
        strict=not force,
    )
    return manifest, restore_system(payload)


def checkpoint_info(path: str) -> Dict[str, Any]:
    """The manifest of a checkpoint file (no payload decompression)."""
    return read_manifest(path)
