"""Checkpoint file format: magic + JSON manifest + compressed payload.

Layout of a ``.ckpt`` file::

    bytes 0..8    MAGIC  b"RPCKPT01"
    bytes 8..12   manifest length N (big-endian uint32)
    bytes 12..12+N   manifest: canonical JSON (sorted keys, no whitespace)
    bytes 12+N..  payload: zlib-compressed checkpoint pickle

The manifest carries everything needed to decide whether a snapshot is
*valid to restore* before touching the payload:

* ``schema`` — checkpoint schema version; bumped whenever the snapshot
  contract changes incompatibly.
* ``python`` — ``major.minor`` of the writing interpreter.  The payload
  embeds :mod:`marshal`-serialised code objects for closures, which are
  bytecode-format specific, so the reader refuses a version mismatch.
* ``fingerprint`` — :func:`repro.harness.cache.library_fingerprint` of
  the writing library.  A snapshot of a simulation is only meaningful
  against the exact code that produced it; a stale snapshot must miss,
  never half-restore.
* ``config_digest`` / ``workload`` / ``nodes`` — identity of the
  simulated machine and its workload
  (:func:`repro.harness.cache.config_digest`,
  :func:`repro.harness.cache.workload_token`).
* ``sim_now`` — simulated time at capture (informational; shown by
  ``repro checkpoint info``).
* ``payload_sha256`` / ``payload_bytes`` — integrity digest and
  decompressed size of the payload.

No wall-clock timestamp is recorded: two checkpoints of the same state
are byte-identical, so checkpoint files themselves are cacheable and
diffable.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import sys
import tempfile
import zlib
from typing import Any, Dict, Optional, Tuple

from . import pickling

__all__ = [
    "MAGIC", "SCHEMA", "CheckpointError",
    "write_checkpoint", "read_checkpoint", "read_manifest",
    "python_version_tag",
]

MAGIC = b"RPCKPT01"
#: Schema version of the snapshot contract (manifest layout + what the
#: payload contains).  Bump on incompatible change.
SCHEMA = 1

_LEN = struct.Struct(">I")


class CheckpointError(RuntimeError):
    """A checkpoint file is unreadable or invalid for this restore."""


def python_version_tag() -> str:
    return f"{sys.version_info.major}.{sys.version_info.minor}"


def build_manifest(payload: bytes, *, fingerprint: str,
                   config_digest: str, workload: Optional[str],
                   nodes: int, sim_now: int,
                   extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    manifest: Dict[str, Any] = {
        "schema": SCHEMA,
        "python": python_version_tag(),
        "fingerprint": fingerprint,
        "config_digest": config_digest,
        "workload": workload,
        "nodes": nodes,
        "sim_now": sim_now,
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
    }
    if extra:
        manifest.update(extra)
    return manifest


def encode(manifest: Dict[str, Any], payload: bytes) -> bytes:
    """Serialise (manifest, payload) to the on-disk byte string."""
    doc = json.dumps(manifest, sort_keys=True,
                     separators=(",", ":")).encode("utf-8")
    return MAGIC + _LEN.pack(len(doc)) + doc + zlib.compress(payload, 6)


def decode(blob: bytes) -> Tuple[Dict[str, Any], bytes]:
    """Split an on-disk byte string back into (manifest, payload)."""
    if len(blob) < len(MAGIC) + _LEN.size or not blob.startswith(MAGIC):
        raise CheckpointError("not a checkpoint file (bad magic)")
    off = len(MAGIC)
    (doc_len,) = _LEN.unpack_from(blob, off)
    off += _LEN.size
    if len(blob) < off + doc_len:
        raise CheckpointError("truncated checkpoint manifest")
    try:
        manifest = json.loads(blob[off:off + doc_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"corrupt checkpoint manifest: {exc}") from None
    try:
        payload = zlib.decompress(blob[off + doc_len:])
    except zlib.error as exc:
        raise CheckpointError(f"corrupt checkpoint payload: {exc}") from None
    digest = hashlib.sha256(payload).hexdigest()
    if digest != manifest.get("payload_sha256"):
        raise CheckpointError(
            f"checkpoint payload digest mismatch: manifest says "
            f"{manifest.get('payload_sha256')}, payload hashes to {digest}")
    return manifest, payload


def validate_manifest(manifest: Dict[str, Any], *,
                      fingerprint: Optional[str] = None,
                      config_digest: Optional[str] = None,
                      strict: bool = True) -> None:
    """Refuse snapshots this interpreter/library cannot faithfully restore.

    Schema and Python version are always enforced (the payload embeds
    marshalled bytecode).  Library fingerprint and config digest are
    enforced when *strict* — the CLI offers ``--force`` to drop them for
    debugging, but the warm-store path never does.
    """
    if manifest.get("schema") != SCHEMA:
        raise CheckpointError(
            f"checkpoint schema {manifest.get('schema')} != supported "
            f"{SCHEMA}")
    if manifest.get("python") != python_version_tag():
        raise CheckpointError(
            f"checkpoint written by Python {manifest.get('python')}, "
            f"running {python_version_tag()} (closures are serialised as "
            f"version-specific bytecode)")
    if strict and fingerprint is not None \
            and manifest.get("fingerprint") != fingerprint:
        raise CheckpointError(
            "checkpoint was written by a different library version "
            f"(fingerprint {manifest.get('fingerprint')!r} != "
            f"{fingerprint!r}); re-create it or pass --force")
    if strict and config_digest is not None \
            and manifest.get("config_digest") != config_digest:
        raise CheckpointError(
            f"checkpoint is for config digest "
            f"{manifest.get('config_digest')!r}, expected "
            f"{config_digest!r}")


def write_checkpoint(path: str, manifest: Dict[str, Any],
                     payload: bytes, exclusive: bool = False) -> bool:
    """Atomically write a checkpoint file (tmp + rename); True if written.

    ``exclusive=True`` routes through the shared file-lock + write-if-
    absent primitive (:func:`repro.harness.cache.locked_exclusive_write`)
    the digest-keyed stores use: concurrent workers producing the same
    key leave exactly one entry, first writer wins.  The default
    overwrites — explicit user paths (``repro checkpoint save --out``)
    and per-job suspend snapshots legitimately replace older content.
    """
    blob = encode(manifest, payload)
    if exclusive:
        from ..harness.cache import locked_exclusive_write

        return locked_exclusive_write(path, blob)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return True


def read_checkpoint(path: str) -> Tuple[Dict[str, Any], bytes]:
    """Read and integrity-check a checkpoint file; no validation beyond
    structure/digest (callers validate against their own context)."""
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
    return decode(blob)


def read_manifest(path: str) -> Dict[str, Any]:
    """Read only the manifest (cheap: stops before decompressing)."""
    try:
        with open(path, "rb") as fh:
            head = fh.read(len(MAGIC) + _LEN.size)
            if len(head) < len(MAGIC) + _LEN.size or \
                    not head.startswith(MAGIC):
                raise CheckpointError("not a checkpoint file (bad magic)")
            (doc_len,) = _LEN.unpack_from(head, len(MAGIC))
            doc = fh.read(doc_len)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
    if len(doc) < doc_len:
        raise CheckpointError("truncated checkpoint manifest")
    try:
        return json.loads(doc.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"corrupt checkpoint manifest: {exc}") from None
