"""Whole-machine snapshot and restore.

A snapshot is one deep pickle of the live simulation graph rooted at the
:class:`~repro.core.system.PiranhaSystem`: the event queue (with every
pending continuation — CPU callbacks, MSHR fills, protocol-thread
wake-ups, the sampler/audit tickers), every cache, directory, TSRF and
router, the attached workload, and the process-global memory-transaction
counter.  The pickle memo preserves shared-object identity across the
graph, so a restored closure over an L2 bank re-links to the *restored*
bank; :mod:`repro.checkpoint.pickling` handles the local functions and
lambdas CPython cannot pickle natively.

Capture timing matters: a snapshot taken mid-event would freeze a
half-executed handler.  Every capture path here runs *between* events —
:class:`WarmCapture` rides the system's ``on_warm_boundary`` hook (which
the system schedules as its own 0-delay event), and
:class:`PeriodicCheckpointer` ticks through ``schedule_every``.

Restores never call :meth:`~repro.core.system.PiranhaSystem.start` —
the restored event queue already holds the CPU continuations and
periodic tickers; ``start()`` is idempotent so
``run_to_completion()`` on a restored system degenerates to
:meth:`~repro.core.system.PiranhaSystem.resume`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Optional, Tuple

from ..core import messages
from . import pickling

__all__ = [
    "snapshot_bytes", "restore_system",
    "WarmCapture", "PeriodicCheckpointer",
]


def snapshot_bytes(system) -> bytes:
    """Serialise a whole simulated machine to a payload byte string.

    Must be called between events (see the module docstring).  Alongside
    the system graph the payload carries the module-global transaction-id
    counter (:data:`repro.core.messages._txn_ids`), so restored runs draw
    the same txn ids as the uninterrupted run — ``itertools.count``
    pickles to its next value without being consumed.
    """
    state = {
        "system": system,
        "txn_counter": messages._txn_ids,
    }
    return pickling.dumps(state)


def restore_system(payload: bytes):
    """Rebuild the simulated machine from a payload byte string.

    Reassigns the module-global transaction-id counter as a side effect
    (one simulation runs per process, so the global is unambiguous).
    Returns the restored :class:`~repro.core.system.PiranhaSystem`; its
    workload is reachable as ``system.workload``.
    """
    state = pickling.loads(payload)
    messages._txn_ids = state["txn_counter"]
    return state["system"]


class WarmCapture:
    """Capture one snapshot at the system's warm-up boundary.

    Installs itself as the one-shot ``on_warm_boundary`` callback; the
    system schedules it as a 0-delay event right after
    ``reset_module_stats()``, so the snapshot lands between events with
    all measurement counters freshly zeroed — the canonical point to
    fan measurement runs out from.

    With ``halt=True`` the remaining event queue is discarded after the
    capture (the ``repro checkpoint save`` verb wants the snapshot, not
    the measurement phase).  The capture object itself is unreachable
    from the system at capture time (the hook was cleared before the
    event fired), so the snapshot never contains its own bytes.

    *sink*, when given, is called as ``sink(payload, sim_now)`` right at
    the boundary — the warm store uses it to persist the snapshot
    *before* the measurement phase runs, so a run killed mid-measurement
    still leaves its warm state behind for ``--resume``.
    """

    def __init__(self, system, halt: bool = False, sink=None) -> None:
        self.system = system
        self.halt = halt
        self.sink = sink
        self.payload: Optional[bytes] = None
        self.sim_now: Optional[int] = None
        system.on_warm_boundary = self._capture

    def _capture(self) -> None:
        self.payload = snapshot_bytes(self.system)
        self.sim_now = self.system.sim.now
        if self.sink is not None:
            self.sink(self.payload, self.sim_now)
        if self.halt:
            self.system.sim.halt()

    @property
    def captured(self) -> bool:
        return self.payload is not None


class PeriodicCheckpointer:
    """Keep the last *keep* snapshots on a fixed simulated-time period.

    The fuzz/sanitizer flows use this as a flight recorder: when a run
    dies with a violation, the most recent pre-violation snapshot is
    restored, the protocol trace is armed at full capacity, and only the
    final window is replayed — seconds instead of the whole run, with
    the interesting history guaranteed to fit the trace ring.

    The ticker rides ``schedule_every``, which means the pending tick is
    itself part of every snapshot (it is an event in the pickled queue).
    Two consequences are handled here:

    * the blob buffer is swapped out during capture so snapshots never
      snowball their predecessors into themselves;
    * a *restored* checkpointer wakes with an empty buffer (its buffer
      was ``None`` inside its own snapshot) and simply starts refilling.
    """

    def __init__(self, system, every_ps: int, keep: int = 2) -> None:
        if every_ps <= 0:
            raise ValueError("checkpoint period must be positive")
        if keep < 1:
            raise ValueError("must keep at least one snapshot")
        self.system = system
        self.every_ps = int(every_ps)
        self.keep = keep
        self.snapshots: Optional[deque] = deque(maxlen=keep)
        self.captures = 0

    def start(self) -> None:
        """Arm the periodic ticker (call once, before the run)."""
        self.system.sim.schedule_every(self.every_ps, self.tick)

    def tick(self) -> bool:
        """Capture one snapshot; stays scheduled while CPUs run."""
        saved, self.snapshots = self.snapshots, None
        try:
            payload = snapshot_bytes(self.system)
            now = self.system.sim.now
        finally:
            self.snapshots = (saved if saved is not None
                              else deque(maxlen=self.keep))
        self.snapshots.append((now, payload))
        self.captures += 1
        return self.system._running_cpus > 0

    def latest(self) -> Optional[Tuple[int, bytes]]:
        """Most recent ``(sim_now_ps, payload)``, or None."""
        if not self.snapshots:
            return None
        return self.snapshots[-1]

    def telemetry(self) -> Dict[str, Any]:
        return {
            "checkpoint_every_ps": self.every_ps,
            "checkpoint_captures": self.captures,
            "checkpoint_buffered": len(self.snapshots or ()),
        }
