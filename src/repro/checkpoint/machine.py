"""Whole-machine snapshot and restore.

A snapshot is one deep pickle of the live simulation graph rooted at the
:class:`~repro.core.system.PiranhaSystem`: the event queue (with every
pending continuation — CPU callbacks, MSHR fills, protocol-thread
wake-ups, the sampler/audit tickers), every cache, directory, TSRF and
router, the attached workload, and the process-global memory-transaction
counter.  The pickle memo preserves shared-object identity across the
graph, so a restored closure over an L2 bank re-links to the *restored*
bank; :mod:`repro.checkpoint.pickling` handles the local functions and
lambdas CPython cannot pickle natively.

Capture timing matters: a snapshot taken mid-event would freeze a
half-executed handler.  Every capture path here runs *between* events —
:class:`WarmCapture` rides the system's ``on_warm_boundary`` hook (which
the system schedules as its own 0-delay event), and
:class:`PeriodicCheckpointer` ticks through ``schedule_every``.

Restores never call :meth:`~repro.core.system.PiranhaSystem.start` —
the restored event queue already holds the CPU continuations and
periodic tickers; ``start()`` is idempotent so
``run_to_completion()`` on a restored system degenerates to
:meth:`~repro.core.system.PiranhaSystem.resume`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Optional, Tuple

from ..core import messages
from . import pickling

__all__ = [
    "snapshot_bytes", "restore_system",
    "WarmCapture", "PeriodicCheckpointer", "WindowHandoff",
]


def snapshot_bytes(system) -> bytes:
    """Serialise a whole simulated machine to a payload byte string.

    Must be called between events (see the module docstring).  Alongside
    the system graph the payload carries the module-global transaction-id
    counter (:data:`repro.core.messages._txn_ids`), so restored runs draw
    the same txn ids as the uninterrupted run — ``itertools.count``
    pickles to its next value without being consumed.
    """
    state = {
        "system": system,
        "txn_counter": messages._txn_ids,
    }
    return pickling.dumps(state)


def restore_system(payload: bytes):
    """Rebuild the simulated machine from a payload byte string.

    Reassigns the module-global transaction-id counter as a side effect
    (one simulation runs per process, so the global is unambiguous).
    Returns the restored :class:`~repro.core.system.PiranhaSystem`; its
    workload is reachable as ``system.workload``.
    """
    state = pickling.loads(payload)
    messages._txn_ids = state["txn_counter"]
    return state["system"]


class WarmCapture:
    """Capture one snapshot at the system's warm-up boundary.

    Installs itself as the one-shot ``on_warm_boundary`` callback; the
    system schedules it as a 0-delay event right after
    ``reset_module_stats()``, so the snapshot lands between events with
    all measurement counters freshly zeroed — the canonical point to
    fan measurement runs out from.

    With ``halt=True`` the remaining event queue is discarded after the
    capture (the ``repro checkpoint save`` verb wants the snapshot, not
    the measurement phase).  The capture object itself is unreachable
    from the system at capture time (the hook was cleared before the
    event fired), so the snapshot never contains its own bytes.

    *sink*, when given, is called as ``sink(payload, sim_now)`` right at
    the boundary — the warm store uses it to persist the snapshot
    *before* the measurement phase runs, so a run killed mid-measurement
    still leaves its warm state behind for ``--resume``.
    """

    def __init__(self, system, halt: bool = False, sink=None) -> None:
        self.system = system
        self.halt = halt
        self.sink = sink
        self.payload: Optional[bytes] = None
        self.sim_now: Optional[int] = None
        system.on_warm_boundary = self._capture

    def _capture(self) -> None:
        self.payload = snapshot_bytes(self.system)
        self.sim_now = self.system.sim.now
        if self.sink is not None:
            self.sink(self.payload, self.sim_now)
        if self.halt:
            self.system.sim.halt()

    @property
    def captured(self) -> bool:
        return self.payload is not None


class WindowHandoff:
    """Snapshot/restore hand-off at sampled-simulation phase boundaries.

    The fast-forward orchestrator calls :meth:`handoff` between phases —
    the event queue drained and every CPU parked, so the capture-timing
    contract holds trivially.  The machine is serialised through the
    standard snapshot path and immediately rebuilt from its own payload:
    every detailed measurement window then runs on a machine that
    provably round-tripped the checkpoint subsystem, which is what the
    bit-identity gate checks.

    ``reuse_generators=True`` short-circuits the one expensive part of
    an in-process restore: a restored workload thread normally rebuilds
    its generator by replaying ``emitted`` items from the seed, which is
    O(stream position) per window.  Since the pre-snapshot threads are
    still live in this process and their generators sit at exactly the
    emitted counts the snapshot recorded, the live generators can be
    moved onto the restored threads — the streams are identical either
    way (replay is deterministic), replay is just the slow fully
    self-contained path.
    """

    def __init__(self, reuse_generators: bool = True) -> None:
        self.reuse_generators = reuse_generators
        self.captures = 0
        self.bytes_total = 0
        self.last_payload: Optional[bytes] = None

    def capture(self, system) -> bytes:
        """Snapshot *system* at a phase boundary (no restore).

        The payload is kept as ``last_payload`` — a run killed inside
        the following window leaves a resumable boundary snapshot
        behind, and callers who trust the (gate-tested) restore
        equivalence can keep running the live machine.
        """
        payload = snapshot_bytes(system)
        self.captures += 1
        self.bytes_total += len(payload)
        self.last_payload = payload
        return payload

    def handoff(self, system):
        """Snapshot *system* and return the machine restored from it."""
        payload = self.capture(system)
        restored = restore_system(payload)
        if self.reuse_generators:
            old = {(node.node_id, cpu.cpu_id): cpu.thread
                   for node in system.nodes for cpu in node.cpus
                   if cpu.thread is not None}
            for node in restored.nodes:
                for cpu in node.cpus:
                    thread = cpu.thread
                    prev = old.get((node.node_id, cpu.cpu_id))
                    if (thread is not None and prev is not None
                            and getattr(thread, "_gen", None) is None
                            and getattr(prev, "_gen", None) is not None
                            and not getattr(thread, "_exhausted", False)
                            and prev.emitted == thread.emitted):
                        thread._gen = prev._gen
                        prev._gen = None
        return restored


class PeriodicCheckpointer:
    """Keep the last *keep* snapshots on a fixed simulated-time period.

    The fuzz/sanitizer flows use this as a flight recorder: when a run
    dies with a violation, the most recent pre-violation snapshot is
    restored, the protocol trace is armed at full capacity, and only the
    final window is replayed — seconds instead of the whole run, with
    the interesting history guaranteed to fit the trace ring.

    The ticker rides ``schedule_every``, which means the pending tick is
    itself part of every snapshot (it is an event in the pickled queue).
    Two consequences are handled here:

    * the blob buffer is swapped out during capture so snapshots never
      snowball their predecessors into themselves;
    * a *restored* checkpointer wakes with an empty buffer (its buffer
      was ``None`` inside its own snapshot) and simply starts refilling.
    """

    def __init__(self, system, every_ps: int, keep: int = 2,
                 on_capture=None) -> None:
        if every_ps <= 0:
            raise ValueError("checkpoint period must be positive")
        if keep < 1:
            raise ValueError("must keep at least one snapshot")
        self.system = system
        self.every_ps = int(every_ps)
        self.keep = keep
        self.snapshots: Optional[deque] = deque(maxlen=keep)
        self.captures = 0
        #: optional ``cb(sim_now_ps, payload_bytes_len)`` after each
        #: capture — live telemetry hangs here.  Host-side observer: it
        #: is *on* the checkpointer, which is never inside its own
        #: snapshots, so payloads stay free of open stream handles.
        self.on_capture = on_capture

    def start(self) -> None:
        """Arm the periodic ticker (call once, before the run)."""
        self.system.sim.schedule_every(self.every_ps, self.tick)

    def tick(self) -> bool:
        """Capture one snapshot; stays scheduled while CPUs run."""
        saved, self.snapshots = self.snapshots, None
        try:
            payload = snapshot_bytes(self.system)
            now = self.system.sim.now
        finally:
            self.snapshots = (saved if saved is not None
                              else deque(maxlen=self.keep))
        self.snapshots.append((now, payload))
        self.captures += 1
        cb = getattr(self, "on_capture", None)
        if cb is not None:
            cb(now, len(payload))
        return self.system._running_cpus > 0

    def __getstate__(self) -> Dict[str, Any]:
        # The pending tick (a bound method in the pickled event queue)
        # drags the checkpointer itself into every snapshot; strip the
        # host-side capture hook so open telemetry handles never try to
        # ride a snapshot.  (The buffer is already None during capture.)
        state = dict(self.__dict__)
        state["on_capture"] = None
        return state

    def latest(self) -> Optional[Tuple[int, bytes]]:
        """Most recent ``(sim_now_ps, payload)``, or None."""
        if not self.snapshots:
            return None
        return self.snapshots[-1]

    def telemetry(self) -> Dict[str, Any]:
        return {
            "checkpoint_every_ps": self.every_ps,
            "checkpoint_captures": self.captures,
            "checkpoint_buffered": len(self.snapshots or ()),
        }
