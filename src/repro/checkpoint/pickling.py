"""Closure-capable pickler for whole-machine snapshots.

A snapshot serialises the *live object graph* of a simulation: the event
queue, every cache and protocol engine, and — unavoidably — the callbacks
threaded through them.  Most of those callbacks are bound methods, which
the standard pickler handles (it stores the instance plus the method
name, and the pickle memo keeps instance identity).  The rest are local
functions and lambdas: ``on_fill`` closures parked in an L2 bank's MSHR,
the protocol engines' sender tables, a trace's ``clock`` lambda.  CPython
refuses to pickle those because they are not importable by qualified
name.

:class:`CheckpointPickler` fills that gap with a ``reducer_override`` for
function objects that cannot be recovered by import:

* the code object is serialised with :mod:`marshal` (version-exact but
  fully faithful — including nested code constants);
* globals are **not** serialised; the rebuilt function binds to
  ``sys.modules[module].__dict__``, so a restored closure sees the live
  module, exactly as the original did;
* the closure is rebuilt with *fresh* cells whose contents are pickled in
  the reduce **state** (applied after the function is memoised), so
  self-referential closures (a cell pointing back at the function, as in
  recursive local helpers) restore correctly;
* cell contents go through the same pickler, so a closure over the
  simulator or an L2 bank re-links to the restored instance via the
  memo — object identity across the whole snapshot is preserved.

Fresh cells mean cell *identity* is not preserved between two closures
that captured the same variable.  That is only observable if a closure
rebinds the captured variable (``nonlocal``); the simulator's closures
only ever *read* their captured objects, whose identity the memo already
guarantees.  The trade is deliberate: it keeps the reducer small and
auditable.

Because :mod:`marshal` is tied to the interpreter's bytecode format, a
snapshot is only valid on the Python (major.minor) version that wrote
it.  The checkpoint manifest records the version and the reader enforces
it (:mod:`repro.checkpoint.format`).
"""

from __future__ import annotations

import io
import marshal
import pickle
import sys
import types
from typing import Any, Optional, Tuple

__all__ = ["CheckpointPickler", "dumps", "loads", "PicklingError"]

PicklingError = pickle.PicklingError

#: Protocol 4 is the newest protocol readable by every CPython this repo
#: supports; the payload format should not silently change across minor
#: interpreter upgrades.
PROTOCOL = 4


def _is_importable(fn: types.FunctionType) -> bool:
    """True when the standard save_global path can recover *fn*."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if module is None or qualname is None or "<locals>" in qualname:
        return False
    mod = sys.modules.get(module)
    if mod is None:
        return False
    obj: Any = mod
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return False
    return obj is fn


def _make_function(code_bytes: bytes, module: str, nfree: int
                   ) -> types.FunctionType:
    """Rebuild a function skeleton: real code, live module globals, and
    *nfree* fresh empty cells.  Defaults, cell contents and ``__dict__``
    arrive afterwards via :func:`_function_setstate` — the two-phase
    build is what lets pickle memoise the function before its (possibly
    self-referential) closure state is deserialised."""
    code = marshal.loads(code_bytes)
    mod = sys.modules.get(module)
    if mod is not None:
        globalns = mod.__dict__
    else:  # pragma: no cover - module vanished between save and load
        globalns = {"__name__": module, "__builtins__": __builtins__}
    closure = tuple(types.CellType() for _ in range(nfree))
    return types.FunctionType(code, globalns, None, None, closure)


def _function_setstate(fn: types.FunctionType, state: tuple
                       ) -> types.FunctionType:
    """Second phase of function reconstruction (see :func:`_make_function`)."""
    defaults, kwdefaults, cell_contents, fn_dict, qualname = state
    fn.__defaults__ = defaults
    fn.__kwdefaults__ = kwdefaults
    fn.__qualname__ = qualname
    if fn_dict:
        fn.__dict__.update(fn_dict)
    if fn.__closure__ is not None:
        for cell, contents in zip(fn.__closure__, cell_contents):
            if contents is not _EMPTY_CELL:
                cell.cell_contents = contents
    return fn


class _EmptyCell:
    """Sentinel for a captured-but-never-assigned cell."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<empty cell>"

    def __reduce__(self) -> str:
        # deserialise to the module singleton — _function_setstate
        # compares by identity, so a copy would fill the cell with the
        # sentinel instead of leaving it empty
        return "_EMPTY_CELL"


_EMPTY_CELL = _EmptyCell()


def _cell_payload(cell: types.CellType) -> Any:
    try:
        return cell.cell_contents
    except ValueError:  # empty cell (possible mid-definition)
        return _EMPTY_CELL


class CheckpointPickler(pickle.Pickler):
    """Pickler that additionally handles non-importable functions."""

    def reducer_override(self, obj: Any):
        if isinstance(obj, types.FunctionType) and not _is_importable(obj):
            code_bytes = marshal.dumps(obj.__code__)
            closure = obj.__closure__ or ()
            state = (
                obj.__defaults__,
                obj.__kwdefaults__,
                tuple(_cell_payload(c) for c in closure),
                dict(obj.__dict__),
                obj.__qualname__,
            )
            return (
                _make_function,
                (code_bytes, obj.__module__ or "__main__", len(closure)),
                state,
                None,
                None,
                _function_setstate,
            )
        return NotImplemented


def dumps(obj: Any, protocol: Optional[int] = None) -> bytes:
    """Serialise *obj* with closure support; raises on anything that
    genuinely cannot round-trip (live generators, open files, ...)."""
    buf = io.BytesIO()
    CheckpointPickler(buf, protocol if protocol is not None else PROTOCOL
                      ).dump(obj)
    return buf.getvalue()


def loads(payload: bytes) -> Any:
    """Inverse of :func:`dumps` (plain unpickling — reconstruction logic
    lives in the reduce tuples the pickler wrote)."""
    return pickle.loads(payload)
