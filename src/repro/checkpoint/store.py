"""Warm-checkpoint store: cached post-warm-up snapshots on disk.

The amortisation behind ``simulate(..., warmup=True)``: warming a large
OLTP footprint dominates wall-clock for short measurement runs, yet the
warm state is a pure function of (library, config, workload, node count,
observability settings).  So the first run of a (config, workload) point
snapshots the machine at the warm-up boundary and files it here; every
later run — other sweep points sharing the warm-up, a resumed sweep, a
re-run after a crash — restores the snapshot and skips straight to
measurement.

The store lives under ``cache_dir()/checkpoints/`` next to the result
cache, with the same environment knobs (``REPRO_CACHE_DIR``,
``REPRO_NO_CACHE``) and the same atomic-write discipline.  Files use the
``.ckpt`` extension, which ``DiskCache.clear()`` (``repro cache
--clear``) deliberately leaves alone — clearing *results* must not
discard warm state, which is far more expensive to rebuild; ``repro
checkpoint clear`` removes these.

Keys fold in everything a snapshot depends on: checkpoint schema,
library fingerprint, config digest, workload token, node count, the
observability settings (check/trace/probe/sampler — they shape the
object graph itself: a sampler's pending tick lives in the event queue)
and ``REPRO_SCALE``.  An opaque workload (no stable token) is simply
not stored, mirroring the result cache.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional, Tuple

from ..harness.cache import (cache_dir, cache_enabled, config_digest,
                             library_fingerprint, workload_token)
from . import format as ckpt_format

__all__ = ["WarmStore", "WARM_STORE", "warm_key"]


def warm_key(config, factory, num_nodes: int, units_attr: str,
             check_coherence: bool, trace_capacity: int, probe_rate: int,
             sample_interval_ps: int,
             variant: str = "detailed") -> Optional[str]:
    """Warm-store key for one (config, workload) point, or None if the
    workload has no stable identity.

    ``variant`` namespaces snapshots whose warm state is *not* the
    detailed warm-up image: sampled runs park their CPUs at the boundary
    (and functional warming is an approximation), so their snapshots
    must never answer a ``warmup=True`` detailed run, and vice versa.
    The default leaves historical detailed keys unchanged.
    """
    token = workload_token(factory)
    if token is None:
        return None
    fields = {
            "schema": ckpt_format.SCHEMA,
            "python": ckpt_format.python_version_tag(),
            "lib": library_fingerprint(),
            "config": config_digest(config),
            "workload": token,
            "nodes": num_nodes,
            "units_attr": units_attr,
            "check": bool(check_coherence),
            "trace": int(trace_capacity),
            "probe": int(probe_rate),
            "sample": int(sample_interval_ps),
            "scale": os.environ.get("REPRO_SCALE", "1.0"),
    }
    if variant != "detailed":
        fields["variant"] = variant
    payload = json.dumps(fields, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class WarmStore:
    """A directory of warm-state ``.ckpt`` files keyed like the result
    cache (parallel workers write concurrently: atomic tmp+rename, and
    distinct points never share a key)."""

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = path
        self.hits = 0
        self.misses = 0

    @property
    def path(self) -> str:
        return self._path or os.path.join(cache_dir(), "checkpoints")

    def _file(self, key: str) -> str:
        return os.path.join(self.path, key[:2], key + ".ckpt")

    def get(self, key: Optional[str]
            ) -> Optional[Tuple[Dict[str, Any], bytes]]:
        """Return ``(manifest, payload)`` for *key*, or None on a miss.

        The manifest is strictly validated (schema, Python version,
        library fingerprint): a snapshot from changed code or a different
        interpreter misses rather than half-restoring.
        """
        if key is None or not cache_enabled():
            return None
        path = self._file(key)
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            manifest, payload = ckpt_format.read_checkpoint(path)
            ckpt_format.validate_manifest(
                manifest, fingerprint=library_fingerprint())
        except ckpt_format.CheckpointError:
            self.misses += 1
            return None
        self.hits += 1
        return manifest, payload

    def put(self, key: Optional[str], manifest: Dict[str, Any],
            payload: bytes) -> bool:
        """Store a snapshot; True if this call created the entry.

        Writes are locked and first-writer-wins
        (:func:`repro.harness.cache.locked_exclusive_write`): snapshots
        are deterministic functions of their key, so when concurrent
        service workers race on the same warm boundary the loser's
        payload is byte-identical and skipping it is the dedupe.
        """
        if key is None or not cache_enabled():
            return False
        try:
            return ckpt_format.write_checkpoint(
                self._file(key), manifest, payload, exclusive=True)
        except OSError:
            return False

    def info(self) -> Dict[str, Any]:
        entries = 0
        size = 0
        if os.path.isdir(self.path):
            for root, _dirs, files in os.walk(self.path):
                for fname in files:
                    if fname.endswith(".ckpt"):
                        entries += 1
                        try:
                            size += os.path.getsize(os.path.join(root, fname))
                        except OSError:
                            pass
        return {"path": self.path, "entries": entries, "bytes": size,
                "hits": self.hits, "misses": self.misses,
                "enabled": cache_enabled()}

    def clear(self) -> int:
        """Delete every stored snapshot; returns the number removed."""
        removed = 0
        if os.path.isdir(self.path):
            for root, _dirs, files in os.walk(self.path):
                for fname in files:
                    if fname.endswith(".ckpt"):
                        try:
                            os.unlink(os.path.join(root, fname))
                            removed += 1
                        except OSError:
                            pass
        return removed


#: process-wide warm-checkpoint store used by the runner / parallel harness
WARM_STORE = WarmStore()
