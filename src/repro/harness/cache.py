"""Persistent on-disk result cache for deterministic simulations.

Every simulation in this library is a pure function of its inputs: the
configuration, the workload parameters, the node count and the library
code itself (DESIGN.md, "Determinism").  That makes whole ``RunResult``
records safely cacheable across processes — a re-run of a benchmark or
example that already simulated a point can return the stored record
bit-for-bit instead of re-simulating.

Keys combine:

* a digest of the fully-resolved :class:`~repro.core.config.ChipConfig`
  (every latency, cache geometry and core parameter),
* a workload token (factory class + parameters, see
  :func:`workload_token`),
* node count, units attribute, ``REPRO_SCALE``,
* a fingerprint of the installed ``repro`` source tree plus
  ``repro.__version__`` — any code change invalidates the whole cache,
  so stale results can never leak across library versions.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default
  ``$XDG_CACHE_HOME/piranha-repro`` or ``~/.cache/piranha-repro``).
* ``REPRO_NO_CACHE=1`` — disable both this cache and the in-process memo.

Entries are one JSON file per result, written atomically (tmp + rename),
so concurrent writers (e.g. the parallel harness's workers' parent) can
never expose a torn record.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

try:  # POSIX advisory locks; on platforms without fcntl the atomic
    import fcntl  # rename alone still protects readers from torn entries
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

_FINGERPRINT: Optional[str] = None


class FileLock:
    """Advisory exclusive lock on ``path + ".lock"`` (context manager).

    Serialises *writers* of a shared cache/store entry across processes:
    the artifact store, the disk result cache and the checkpoint store
    all take the entry's lock around their write-if-absent sequence, so
    two workers producing the same digest cannot interleave — the first
    writer wins and the second observes the finished entry.  Readers
    never lock: atomic tmp+rename guarantees they see old-or-new, never
    a torn file.

    On platforms without :mod:`fcntl` the lock degrades to a no-op;
    rename atomicity still holds, only first-writer-wins does not.
    """

    def __init__(self, path: str) -> None:
        self.path = path + ".lock"
        self._fh = None

    def __enter__(self) -> "FileLock":
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        if fcntl is not None:
            self._fh = open(self.path, "a+b")
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc) -> None:
        if self._fh is not None:
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
            self._fh.close()
            self._fh = None


def locked_exclusive_write(path: str, data: bytes) -> bool:
    """Write *data* to *path* iff no entry exists yet; True if written.

    The content-addressed write primitive shared by the result cache,
    the warm-checkpoint store and the service artifact store: take the
    entry lock, re-check existence (another worker may have won the
    race while we waited), then tmp+rename inside the lock.  Returns
    False when the entry already existed — the caller's payload is
    byte-identical by key construction, so losing the race *is* the
    dedupe hit.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with FileLock(path):
        if os.path.exists(path):
            return False
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    return True


def cache_enabled() -> bool:
    """Result caching is on unless ``REPRO_NO_CACHE`` is truthy."""
    return os.environ.get("REPRO_NO_CACHE", "") not in ("1", "true", "yes")


def cache_dir() -> str:
    """Resolve the on-disk cache directory (not created until first put)."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "piranha-repro")


def _fingerprint_tree(pkg_dir: str, version: str) -> str:
    """Digest every ``.py`` file under *pkg_dir*, subpackages included.

    The walk is fully recursive and deterministic (sorted dirs and
    files), so *every* subpackage — ``repro.fuzz``, ``repro.checkpoint``,
    anything added later — participates in the fingerprint without
    needing to be listed anywhere.
    """
    h = hashlib.sha256()
    h.update(version.encode())
    for root, dirs, files in sorted(os.walk(pkg_dir)):
        dirs.sort()
        for fname in sorted(files):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(root, fname)
            h.update(os.path.relpath(path, pkg_dir).encode())
            with open(path, "rb") as f:
                h.update(f.read())
    return h.hexdigest()


def library_fingerprint(root: Optional[str] = None) -> str:
    """Digest of the installed ``repro`` sources (plus ``__version__``).

    Computed once per process; any edit to any module under ``repro``
    (including subpackages such as ``repro.fuzz`` and
    ``repro.checkpoint``) yields a different fingerprint, so cached
    results and warm checkpoints can never survive a code change that
    might alter simulation behaviour.

    *root* overrides the tree to digest (bypassing the per-process memo);
    it exists so tests can prove subpackage coverage against a synthetic
    tree.
    """
    global _FINGERPRINT
    if root is not None:
        return _fingerprint_tree(root, "")
    if _FINGERPRINT is None:
        import repro

        pkg_dir = os.path.dirname(os.path.abspath(repro.__file__))
        _FINGERPRINT = _fingerprint_tree(pkg_dir, repro.__version__)
    return _FINGERPRINT


def config_digest(config) -> str:
    """Stable digest of a fully-resolved ChipConfig (all nested fields)."""
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True,
                         default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


def workload_token(factory) -> Optional[str]:
    """Stable identity for a workload factory, or None if opaque.

    Factories can provide an explicit ``cache_token`` attribute/method;
    frozen-dataclass factories (the ones in
    :mod:`repro.harness.experiments`) token themselves via their
    deterministic dataclass repr.  Opaque callables (closures, lambdas)
    return None: they stay memo-cacheable in-process but are excluded
    from the disk cache, because their parameters cannot be fingerprinted.
    """
    token = getattr(factory, "cache_token", None)
    if token is not None:
        return str(token() if callable(token) else token)
    if dataclasses.is_dataclass(factory) and not isinstance(factory, type):
        cls = type(factory)
        return f"{cls.__module__}.{cls.__qualname__}:{factory!r}"
    return None


def result_key(config, factory, num_nodes: int, units_attr: str,
               check_coherence: bool, cache_key_extra: tuple) -> Optional[str]:
    """Disk-cache key for one simulation point, or None if unkeyable."""
    token = workload_token(factory)
    if token is None:
        return None
    payload = json.dumps(
        {
            "lib": library_fingerprint(),
            "config": config_digest(config),
            "workload": token,
            "nodes": num_nodes,
            "units_attr": units_attr,
            "check": bool(check_coherence),
            "extra": [str(x) for x in cache_key_extra],
            "scale": os.environ.get("REPRO_SCALE", "1.0"),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


#: Subdirectories of the cache root owned by sibling stores (warm
#: checkpoints, the service artifact store, the server's job state).
#: DiskCache walks must not count — and ``clear()`` must never delete —
#: their entries.
RESERVED_SUBDIRS = frozenset({"checkpoints", "artifacts", "service"})


class DiskCache:
    """A directory of JSON-serialised :class:`RunResult` records.

    The cache root is shared with the warm-checkpoint store and the
    service artifact store (one digest-addressed tree, see
    :class:`repro.service.store.ArtifactStore`); this class only ever
    touches its own top-level ``<d2>/<key>.json`` entries."""

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = path
        self.hits = 0
        self.misses = 0

    @property
    def path(self) -> str:
        return self._path or cache_dir()

    def _file(self, key: str) -> str:
        return os.path.join(self.path, key[:2], key + ".json")

    def get(self, key: Optional[str]):
        """Return the cached RunResult for *key*, or None."""
        from .runner import RunResult

        if key is None or not cache_enabled():
            return None
        try:
            with open(self._file(key), "r", encoding="utf-8") as f:
                payload = json.load(f)
            result = RunResult(**payload["result"])
        except (OSError, ValueError, TypeError, KeyError):
            # missing, torn, or schema-incompatible entry: treat as a miss
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: Optional[str], result) -> bool:
        """Store *result* under *key* (locked, atomic, first-writer-wins).

        Returns True when this call created the entry, False when it was
        disabled, unkeyable, or another worker already stored the same
        digest (results are deterministic functions of the key, so the
        existing entry is byte-equivalent — skipping the write is the
        dedupe, not a loss).
        """
        if key is None or not cache_enabled():
            return False
        payload = {"result": dataclasses.asdict(result)}
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        try:
            return locked_exclusive_write(self._file(key), data)
        except OSError:
            return False

    def info(self) -> Dict[str, Any]:
        """Entry count / size / hit counters (for ``python -m repro cache``)."""
        entries = 0
        size = 0
        if os.path.isdir(self.path):
            for root, dirs, files in os.walk(self.path):
                if root == self.path:
                    dirs[:] = [d for d in dirs if d not in RESERVED_SUBDIRS]
                for fname in files:
                    if fname.endswith(".json"):
                        entries += 1
                        try:
                            size += os.path.getsize(os.path.join(root, fname))
                        except OSError:
                            pass
        return {"path": self.path, "entries": entries, "bytes": size,
                "hits": self.hits, "misses": self.misses,
                "enabled": cache_enabled()}

    def clear(self) -> int:
        """Delete every cached result; returns the number removed.

        Sibling stores under the same root (warm checkpoints, service
        artifacts, job state) are deliberately left alone — clearing
        *results* must not discard state that is far more expensive to
        rebuild or that a live server depends on."""
        removed = 0
        if os.path.isdir(self.path):
            for root, dirs, files in os.walk(self.path):
                if root == self.path:
                    dirs[:] = [d for d in dirs if d not in RESERVED_SUBDIRS]
                for fname in files:
                    if fname.endswith(".json"):
                        try:
                            os.unlink(os.path.join(root, fname))
                            removed += 1
                        except OSError:
                            pass
        return removed


#: process-wide disk cache used by the runner / parallel harness
DISK_CACHE = DiskCache()
