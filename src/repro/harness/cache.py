"""Persistent on-disk result cache for deterministic simulations.

Every simulation in this library is a pure function of its inputs: the
configuration, the workload parameters, the node count and the library
code itself (DESIGN.md, "Determinism").  That makes whole ``RunResult``
records safely cacheable across processes — a re-run of a benchmark or
example that already simulated a point can return the stored record
bit-for-bit instead of re-simulating.

Keys combine:

* a digest of the fully-resolved :class:`~repro.core.config.ChipConfig`
  (every latency, cache geometry and core parameter),
* a workload token (factory class + parameters, see
  :func:`workload_token`),
* node count, units attribute, ``REPRO_SCALE``,
* a fingerprint of the installed ``repro`` source tree plus
  ``repro.__version__`` — any code change invalidates the whole cache,
  so stale results can never leak across library versions.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default
  ``$XDG_CACHE_HOME/piranha-repro`` or ``~/.cache/piranha-repro``).
* ``REPRO_NO_CACHE=1`` — disable both this cache and the in-process memo.

Entries are one JSON file per result, written atomically (tmp + rename),
so concurrent writers (e.g. the parallel harness's workers' parent) can
never expose a torn record.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

_FINGERPRINT: Optional[str] = None


def cache_enabled() -> bool:
    """Result caching is on unless ``REPRO_NO_CACHE`` is truthy."""
    return os.environ.get("REPRO_NO_CACHE", "") not in ("1", "true", "yes")


def cache_dir() -> str:
    """Resolve the on-disk cache directory (not created until first put)."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "piranha-repro")


def _fingerprint_tree(pkg_dir: str, version: str) -> str:
    """Digest every ``.py`` file under *pkg_dir*, subpackages included.

    The walk is fully recursive and deterministic (sorted dirs and
    files), so *every* subpackage — ``repro.fuzz``, ``repro.checkpoint``,
    anything added later — participates in the fingerprint without
    needing to be listed anywhere.
    """
    h = hashlib.sha256()
    h.update(version.encode())
    for root, dirs, files in sorted(os.walk(pkg_dir)):
        dirs.sort()
        for fname in sorted(files):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(root, fname)
            h.update(os.path.relpath(path, pkg_dir).encode())
            with open(path, "rb") as f:
                h.update(f.read())
    return h.hexdigest()


def library_fingerprint(root: Optional[str] = None) -> str:
    """Digest of the installed ``repro`` sources (plus ``__version__``).

    Computed once per process; any edit to any module under ``repro``
    (including subpackages such as ``repro.fuzz`` and
    ``repro.checkpoint``) yields a different fingerprint, so cached
    results and warm checkpoints can never survive a code change that
    might alter simulation behaviour.

    *root* overrides the tree to digest (bypassing the per-process memo);
    it exists so tests can prove subpackage coverage against a synthetic
    tree.
    """
    global _FINGERPRINT
    if root is not None:
        return _fingerprint_tree(root, "")
    if _FINGERPRINT is None:
        import repro

        pkg_dir = os.path.dirname(os.path.abspath(repro.__file__))
        _FINGERPRINT = _fingerprint_tree(pkg_dir, repro.__version__)
    return _FINGERPRINT


def config_digest(config) -> str:
    """Stable digest of a fully-resolved ChipConfig (all nested fields)."""
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True,
                         default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


def workload_token(factory) -> Optional[str]:
    """Stable identity for a workload factory, or None if opaque.

    Factories can provide an explicit ``cache_token`` attribute/method;
    frozen-dataclass factories (the ones in
    :mod:`repro.harness.experiments`) token themselves via their
    deterministic dataclass repr.  Opaque callables (closures, lambdas)
    return None: they stay memo-cacheable in-process but are excluded
    from the disk cache, because their parameters cannot be fingerprinted.
    """
    token = getattr(factory, "cache_token", None)
    if token is not None:
        return str(token() if callable(token) else token)
    if dataclasses.is_dataclass(factory) and not isinstance(factory, type):
        cls = type(factory)
        return f"{cls.__module__}.{cls.__qualname__}:{factory!r}"
    return None


def result_key(config, factory, num_nodes: int, units_attr: str,
               check_coherence: bool, cache_key_extra: tuple) -> Optional[str]:
    """Disk-cache key for one simulation point, or None if unkeyable."""
    token = workload_token(factory)
    if token is None:
        return None
    payload = json.dumps(
        {
            "lib": library_fingerprint(),
            "config": config_digest(config),
            "workload": token,
            "nodes": num_nodes,
            "units_attr": units_attr,
            "check": bool(check_coherence),
            "extra": [str(x) for x in cache_key_extra],
            "scale": os.environ.get("REPRO_SCALE", "1.0"),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class DiskCache:
    """A directory of JSON-serialised :class:`RunResult` records."""

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = path
        self.hits = 0
        self.misses = 0

    @property
    def path(self) -> str:
        return self._path or cache_dir()

    def _file(self, key: str) -> str:
        return os.path.join(self.path, key[:2], key + ".json")

    def get(self, key: Optional[str]):
        """Return the cached RunResult for *key*, or None."""
        from .runner import RunResult

        if key is None or not cache_enabled():
            return None
        try:
            with open(self._file(key), "r", encoding="utf-8") as f:
                payload = json.load(f)
            result = RunResult(**payload["result"])
        except (OSError, ValueError, TypeError, KeyError):
            # missing, torn, or schema-incompatible entry: treat as a miss
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: Optional[str], result) -> None:
        """Store *result* under *key* (atomic; no-op when disabled)."""
        if key is None or not cache_enabled():
            return
        path = self._file(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {"result": dataclasses.asdict(result)}
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(payload, f, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def info(self) -> Dict[str, Any]:
        """Entry count / size / hit counters (for ``python -m repro cache``)."""
        entries = 0
        size = 0
        if os.path.isdir(self.path):
            for root, _dirs, files in os.walk(self.path):
                for fname in files:
                    if fname.endswith(".json"):
                        entries += 1
                        try:
                            size += os.path.getsize(os.path.join(root, fname))
                        except OSError:
                            pass
        return {"path": self.path, "entries": entries, "bytes": size,
                "hits": self.hits, "misses": self.misses,
                "enabled": cache_enabled()}

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if os.path.isdir(self.path):
            for root, _dirs, files in os.walk(self.path):
                for fname in files:
                    if fname.endswith(".json"):
                        try:
                            os.unlink(os.path.join(root, fname))
                            removed += 1
                        except OSError:
                            pass
        return removed


#: process-wide disk cache used by the runner / parallel harness
DISK_CACHE = DiskCache()
