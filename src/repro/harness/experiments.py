"""Per-figure / per-table experiment definitions (DESIGN.md's index).

Each ``figureN()`` / ``tableN()`` function regenerates the corresponding
paper result and returns a structured record including the paper's
reference values, so callers (benchmarks, EXPERIMENTS.md) can print
paper-vs-measured rows.

Workload factories are frozen dataclasses rather than closures so that
(a) they pickle across the process-pool boundary
(:mod:`repro.harness.parallel`) and (b) their reprs serve as stable disk
cache tokens (:func:`repro.harness.cache.workload_token`).  Figures that
simulate several independent points dispatch them through
:func:`run_points`, which honours ``REPRO_JOBS``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import preset, table1
from ..isa.kernels import IsaKernelFactory
from ..workloads.dss import DssParams, DssWorkload
from ..workloads.micro import MicroParams, MigratoryWrites
from ..workloads.oltp import OltpParams, OltpWorkload
from ..workloads.tpcc import TpccWorkload, tpcc_params
from ..workloads.web import WebParams, WebWorkload
from .parallel import Job, run_jobs
from .runner import RunResult, run_workload, scale_factor


def _oltp_params() -> OltpParams:
    scale = scale_factor()
    base = OltpParams()
    if scale != 1.0:
        base = replace(
            base,
            transactions=max(20, int(base.transactions * scale)),
            warmup_transactions=max(40, int(base.warmup_transactions * scale)),
        )
    return base


@dataclass(frozen=True)
class OltpFactory:
    """TPC-B-like OLTP workload builder (picklable, cache-tokenable)."""

    params: Optional[OltpParams] = None

    def __call__(self, config, num_nodes):
        return OltpWorkload(self.params or _oltp_params(),
                            cpus_per_node=config.cpus, num_nodes=num_nodes)


@dataclass(frozen=True)
class DssFactory:
    """DSS (TPC-D-like scan) workload builder."""

    params: Optional[DssParams] = None

    def __call__(self, config, num_nodes):
        p = self.params
        if p is None:
            scale = scale_factor()
            p = DssParams()
            if scale != 1.0:
                p = replace(p, rows=max(60, int(p.rows * scale)))
        return DssWorkload(p, cpus_per_node=config.cpus, num_nodes=num_nodes)


@dataclass(frozen=True)
class TpccFactory:
    """TPC-C-like workload builder (derives params from the TPC-B base)."""

    params: Optional[OltpParams] = None

    def __call__(self, config, num_nodes):
        base = tpcc_params(self.params or _oltp_params())
        return TpccWorkload(base, cpus_per_node=config.cpus,
                            num_nodes=num_nodes)


@dataclass(frozen=True)
class WebFactory:
    """AltaVista-like web-search workload builder."""

    params: Optional[WebParams] = None

    def __call__(self, config, num_nodes):
        p = self.params
        if p is None:
            scale = scale_factor()
            p = WebParams()
            if scale != 1.0:
                p = replace(p, queries=max(40, int(p.queries * scale)))
        return WebWorkload(p, cpus_per_node=config.cpus, num_nodes=num_nodes)


@dataclass(frozen=True)
class MigratoryFactory:
    """Migratory-writes microbenchmark builder."""

    params: Optional[MicroParams] = None

    def __call__(self, config, num_nodes):
        p = self.params
        if p is None:
            scale = scale_factor()
            p = MicroParams()
            if scale != 1.0:
                p = replace(p, iterations=max(200, int(p.iterations * scale)))
        return MigratoryWrites(p, cpus_per_node=config.cpus,
                               num_nodes=num_nodes)


#: name -> factory class, for the CLI sweep command and ad-hoc studies
FACTORIES = {
    "oltp": OltpFactory,
    "dss": DssFactory,
    "tpcc": TpccFactory,
    "web": WebFactory,
    "migratory": MigratoryFactory,
    "isa": IsaKernelFactory,
}

#: units attribute measured per workload
UNITS_ATTR = {
    "oltp": "transactions",
    "dss": "rows",
    "tpcc": "transactions",
    "web": "queries",
    "migratory": "iterations",
    "isa": "iterations",
}


# legacy closure-style helpers, kept for API compatibility
def _oltp_factory(params: Optional[OltpParams] = None) -> OltpFactory:
    return OltpFactory(params)


def _dss_factory(params: Optional[DssParams] = None) -> DssFactory:
    return DssFactory(params)


def _tpcc_factory() -> TpccFactory:
    return TpccFactory()


def run_oltp(config_name: str, num_nodes: int = 1, **kw) -> RunResult:
    return run_workload(config_name, OltpFactory(), num_nodes,
                        units_attr="transactions",
                        cache_key_extra=("oltp", scale_factor()), **kw)


def run_dss(config_name: str, num_nodes: int = 1, **kw) -> RunResult:
    return run_workload(config_name, DssFactory(), num_nodes,
                        units_attr="rows",
                        cache_key_extra=("dss", scale_factor()), **kw)


def run_tpcc(config_name: str, num_nodes: int = 1, **kw) -> RunResult:
    return run_workload(config_name, TpccFactory(), num_nodes,
                        units_attr="transactions",
                        cache_key_extra=("tpcc", scale_factor()), **kw)


def run_points(points: Sequence[Tuple[str, str, int]],
               jobs: Optional[int] = None) -> List[RunResult]:
    """Run ``(workload, config_name, num_nodes)`` points, honouring
    ``REPRO_JOBS``: the independent simulations behind one figure fan out
    across worker processes, serially when unset."""
    scale = scale_factor()
    job_specs = [
        Job(config=preset(config_name), factory=FACTORIES[workload](),
            num_nodes=num_nodes, units_attr=UNITS_ATTR[workload],
            cache_key_extra=(workload, scale))
        for workload, config_name, num_nodes in points
    ]
    return run_jobs(job_specs, jobs=jobs)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def table1_parameters() -> Dict[str, Dict[str, object]]:
    """Regenerate Table 1 from the configuration presets."""
    return table1()


# ---------------------------------------------------------------------------
# Figure 5: single-chip execution-time comparison
# ---------------------------------------------------------------------------

#: normalised execution times the paper's Figure 5 reports (OOO = 100)
FIGURE5_PAPER = {
    "oltp": {"P1": 233, "OOO": 100, "INO": 145, "P8": 34},
    "dss": {"P1": 355, "OOO": 100, "INO": 190, "P8": 44},
}


def figure5(workload: str = "oltp") -> Dict[str, object]:
    """Normalised execution time (OOO=100) with busy / L2 / mem breakdown
    for P1, OOO, INO and P8."""
    names = ("P1", "OOO", "INO", "P8")
    results = dict(zip(names, run_points([(workload, n, 1) for n in names])))
    # per-chip throughput comparison: normalise per-chip time per unit of
    # work (P8's 8 CPUs all contribute)
    per_chip_time = {
        name: r.time_per_unit_ns / r.cpus for name, r in results.items()
    }
    base = per_chip_time["OOO"]
    normalized = {name: 100.0 * t / base for name, t in per_chip_time.items()}
    return {
        "workload": workload,
        "results": results,
        "normalized": normalized,
        "paper": FIGURE5_PAPER[workload],
        "speedup_p8_over_ooo": normalized["OOO"] / normalized["P8"],
        "speedup_ooo_over_p1": normalized["P1"] / normalized["OOO"],
        "speedup_ino_over_p1": normalized["P1"] / normalized["INO"],
    }


# ---------------------------------------------------------------------------
# Figure 6a: Piranha speedup vs on-chip CPUs (OLTP)
# ---------------------------------------------------------------------------

FIGURE6A_PAPER = {1: 1.0, 2: 1.9, 4: 3.7, 8: 6.9}


def figure6a() -> Dict[str, object]:
    counts = (1, 2, 4, 8)
    results = dict(zip(
        counts, run_points([("oltp", f"P{n}", 1) for n in counts])))
    base = results[1].throughput
    speedups = {n: r.throughput / base for n, r in results.items()}
    return {"results": results, "speedups": speedups,
            "paper": FIGURE6A_PAPER}


# ---------------------------------------------------------------------------
# Figure 6b: L1-miss service breakdown vs CPU count (OLTP)
# ---------------------------------------------------------------------------

FIGURE6B_PAPER = {
    1: {"hit": 0.90, "fwd": 0.00, "mem": 0.10},
    2: {"hit": 0.75, "fwd": 0.13, "mem": 0.12},
    4: {"hit": 0.55, "fwd": 0.30, "mem": 0.15},
    8: {"hit": 0.38, "fwd": 0.45, "mem": 0.17},
}


def figure6b() -> Dict[str, object]:
    counts = (1, 2, 4, 8)
    results = run_points([("oltp", f"P{n}", 1) for n in counts])
    rows = {
        n: {"hit": r.miss_hit_frac, "fwd": r.miss_fwd_frac,
            "mem": r.miss_mem_frac}
        for n, r in zip(counts, results)
    }
    return {"measured": rows, "paper": FIGURE6B_PAPER}


# ---------------------------------------------------------------------------
# Figure 7: multi-chip OLTP scaling (P4 chips vs OOO chips)
# ---------------------------------------------------------------------------

FIGURE7_PAPER = {"piranha_4chip": 3.0, "ooo_4chip": 2.6,
                 "single_chip_ratio": 1.5}


def figure7() -> Dict[str, object]:
    counts = (1, 2, 4)
    points = ([("oltp", "P4", n) for n in counts]
              + [("oltp", "OOO", n) for n in counts])
    results = run_points(points)
    piranha = dict(zip(counts, results[:3]))
    ooo = dict(zip(counts, results[3:]))
    return {
        "piranha": piranha,
        "ooo": ooo,
        "piranha_speedups": {
            n: r.throughput / piranha[1].throughput for n, r in piranha.items()
        },
        "ooo_speedups": {
            n: r.throughput / ooo[1].throughput for n, r in ooo.items()
        },
        "single_chip_ratio": piranha[1].throughput / ooo[1].throughput,
        "paper": FIGURE7_PAPER,
    }


# ---------------------------------------------------------------------------
# Figure 8: full-custom Piranha (P8F)
# ---------------------------------------------------------------------------

FIGURE8_PAPER = {"oltp": 5.0, "dss": 5.3}


def figure8() -> Dict[str, object]:
    out = {}
    for workload in ("oltp", "dss"):
        p8f, ooo, p8 = run_points(
            [(workload, name, 1) for name in ("P8F", "OOO", "P8")])
        out[workload] = {
            "p8f_over_ooo": p8f.throughput / ooo.throughput,
            "p8_over_ooo": p8.throughput / ooo.throughput,
            "paper_p8f_over_ooo": FIGURE8_PAPER[workload],
        }
    return out


# ---------------------------------------------------------------------------
# Section 4 text: TPC-C robustness and pessimistic sensitivity
# ---------------------------------------------------------------------------

def tpcc_sensitivity() -> Dict[str, float]:
    """P8 outperforms OOO by over a factor of 3 on TPC-C."""
    p8, ooo = run_points([("tpcc", "P8", 1), ("tpcc", "OOO", 1)])
    return {
        "p8_over_ooo": p8.throughput / ooo.throughput,
        "paper_lower_bound": 3.0,
    }


def pessimistic_sensitivity() -> Dict[str, float]:
    """400 MHz CPUs / 32 KB 1-way L1s / 22-32 ns L2: the paper reports a
    29% execution-time increase, with P8 still 2.25x over OOO."""
    p8, pess, ooo = run_points(
        [("oltp", "P8", 1), ("oltp", "P8-pessimistic", 1), ("oltp", "OOO", 1)])
    return {
        "exec_time_increase": pess.time_per_unit_ns / p8.time_per_unit_ns - 1,
        "pess_over_ooo": pess.throughput / ooo.throughput,
        "paper_exec_time_increase": 0.29,
        "paper_pess_over_ooo": 2.25,
    }
