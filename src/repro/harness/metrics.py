"""Structured metrics export: one registry, one stable schema.

Everything the simulator can observe — the per-class transaction-probe
latency histograms and hop decompositions, the interval time-series, and
the performance-monitor counter rollup — is serialised into a single JSON
document with a versioned schema identifier.  The document is built from
deterministic simulation state only (no wall-clock, no host identity), so
the serial path, the ProcessPool path and both result caches all produce
byte-identical metrics for the same point.

The document rides :attr:`RunResult.extras` under the ``"metrics"`` key:
it is attached inside :func:`~repro.harness.runner.simulate`, survives the
pickle round-trip from pool workers, and is stored/recalled by the memo
and disk caches like any other extra.

Schema (``repro-metrics/1``)::

    {
      "schema": "repro-metrics/1",
      "run": {config, cpus, nodes, workload, units, throughput, ...},
      "probes": ProbeCollector.as_dict() | null,
      "timeseries": IntervalSampler.as_dict() | null,
      "counters": [perfmon node reports]
    }

``repro run --metrics out.json`` writes this document;
``scripts/validate_metrics.py`` checks an emitted file against
:func:`validate_metrics` plus a probe-vs-counter latency cross-check.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

#: Versioned schema identifier; bump when the document shape changes.
SCHEMA = "repro-metrics/1"


def metrics_doc(system, result=None, probe_rate: int = 0,
                sample_interval_ps: int = 0) -> Dict[str, object]:
    """Assemble the full metrics document from a finished system.

    *result* (a :class:`~repro.harness.runner.RunResult`) supplies the
    run-summary block when available; CLI paths that bypass the runner
    pass ``None`` and get a summary computed from the system directly.
    """
    from .perfmon import system_report

    now = system.sim.now
    if result is not None:
        run = {
            "config": result.config,
            "cpus": result.cpus,
            "nodes": result.nodes,
            "workload": result.workload,
            "units": result.units,
            "time_per_unit_ns": result.time_per_unit_ns,
            "throughput": result.throughput,
            "busy_frac": result.busy_frac,
            "l2_frac": result.l2_frac,
            "mem_frac": result.mem_frac,
            "miss_hit_frac": result.miss_hit_frac,
            "miss_fwd_frac": result.miss_fwd_frac,
            "miss_mem_frac": result.miss_mem_frac,
        }
    else:
        summary = system.execution_summary()
        total = summary["total_ps"] or 1
        mb = system.miss_breakdown()
        misses = sum(mb.values()) or 1
        run = {
            "config": system.config.name,
            "cpus": system.config.cpus,
            "nodes": system.num_proc_nodes,
            "workload": None,
            "units": None,
            "time_per_unit_ns": None,
            "throughput": None,
            "busy_frac": summary["busy_ps"] / total,
            "l2_frac": summary["l2_stall_ps"] / total,
            "mem_frac": summary["mem_stall_ps"] / total,
            "miss_hit_frac": mb["l2_hit"] / misses,
            "miss_fwd_frac": mb["l2_fwd"] / misses,
            "miss_mem_frac": mb["l2_miss"] / misses,
        }
    run["finish_ps"] = now
    run["probe_rate"] = probe_rate
    run["sample_interval_ps"] = sample_interval_ps
    return {
        "schema": SCHEMA,
        "run": run,
        "probes": system.probes.as_dict() if system.probes is not None
        else None,
        "timeseries": system.sampler.as_dict() if system.sampler is not None
        else None,
        "counters": system_report(system, now_ps=now),
        # independent cross-check data for the probe means (see
        # counter_latency_ns): CPU-side per-source stall accounting
        "stall_latency": counter_latency_ns(system),
    }


def counter_latency_ns(system) -> Dict[str, Dict[str, float]]:
    """Mean L1-miss service latency per :class:`ReplySource`, computed
    from CPU stall accounting (``stall_ps`` / ``stall_counts``) — fully
    independent of the probe path, so probe means can be validated
    against it.  Exact for in-order cores (every miss blocks for its full
    latency); OOO cores hide part of the latency, so only use this check
    on in-order configs."""
    totals: Dict[str, List[float]] = {}
    for cpu in system.all_cpus():
        for source, count in cpu.stall_counts.items():
            if not count:
                continue
            entry = totals.setdefault(source.name.lower(), [0.0, 0.0])
            entry[0] += cpu.stall_ps[source]
            entry[1] += count
    return {
        name: {"count": c, "mean_ns": ps / c / 1000.0 if c else 0.0}
        for name, (ps, c) in totals.items()
    }


def validate_metrics(doc: Dict[str, object]) -> List[str]:
    """Structural validation against the documented schema; returns a
    list of problems (empty when the document conforms)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for key in ("run", "probes", "timeseries", "counters"):
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    run = doc.get("run")
    if isinstance(run, dict):
        for key in ("config", "nodes", "busy_frac", "l2_frac", "mem_frac",
                    "finish_ps", "probe_rate", "sample_interval_ps"):
            if key not in run:
                problems.append(f"run block missing {key!r}")
    elif run is not None:
        problems.append("run block is not an object")
    probes = doc.get("probes")
    if isinstance(probes, dict):
        for key in ("rate", "attached", "completed", "classes", "by_source"):
            if key not in probes:
                problems.append(f"probes block missing {key!r}")
        for cls, block in (probes.get("classes") or {}).items():
            for key in ("count", "mean_ns", "p50_ns", "histogram", "hops"):
                if key not in block:
                    problems.append(f"probe class {cls!r} missing {key!r}")
            hist = block.get("histogram", {})
            edges = hist.get("edges_ns", [])
            bins = hist.get("bins", [])
            if len(bins) != len(edges) + 1:
                problems.append(
                    f"probe class {cls!r}: {len(bins)} bins for "
                    f"{len(edges)} edges (want edges+1)")
            if sum(bins) != block.get("count"):
                problems.append(
                    f"probe class {cls!r}: histogram mass {sum(bins)} != "
                    f"count {block.get('count')}")
    ts = doc.get("timeseries")
    if isinstance(ts, dict):
        for key in ("interval_ps", "count", "intervals"):
            if key not in ts:
                problems.append(f"timeseries block missing {key!r}")
        for i, rec in enumerate(ts.get("intervals") or []):
            for key in ("index", "t0_ps", "t1_ps", "reset", "partial",
                        "deltas"):
                if key not in rec:
                    problems.append(f"interval {i} missing {key!r}")
            if rec.get("t1_ps", 0) <= rec.get("t0_ps", 0):
                problems.append(f"interval {i} has non-positive width")
    if not isinstance(doc.get("counters"), list):
        problems.append("counters block is not a list of node reports")
    return problems


def write_metrics(doc: Dict[str, object], path: str) -> None:
    """Serialise the document to *path* (stable key order)."""
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def timeseries_csv(doc: Dict[str, object]) -> str:
    """Flatten the time-series block into CSV (one row per interval).

    Columns: the interval bounds/flags, then every delta, derived and
    gauge key (union over intervals, sorted) prefixed by its group.
    """
    ts = doc.get("timeseries") or {}
    intervals = ts.get("intervals") or []
    delta_keys: set = set()
    derived_keys: set = set()
    gauge_keys: set = set()
    for rec in intervals:
        delta_keys.update(rec.get("deltas", {}))
        derived_keys.update(rec.get("derived", {}))
        gauge_keys.update(rec.get("gauges", {}))
    header = (["index", "t0_ps", "t1_ps", "reset", "partial"]
              + [f"d_{k}" for k in sorted(delta_keys)]
              + [f"r_{k}" for k in sorted(derived_keys)]
              + [f"g_{k}" for k in sorted(gauge_keys)])
    lines = [",".join(header)]
    for rec in intervals:
        row = [str(rec.get("index", "")), str(rec.get("t0_ps", "")),
               str(rec.get("t1_ps", "")), str(int(bool(rec.get("reset")))),
               str(int(bool(rec.get("partial"))))]
        deltas = rec.get("deltas", {})
        derived = rec.get("derived", {})
        gauges = rec.get("gauges", {})
        row += [_num(deltas.get(k)) for k in sorted(delta_keys)]
        row += [_num(derived.get(k)) for k in sorted(derived_keys)]
        row += [_num(gauges.get(k)) for k in sorted(gauge_keys)]
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def _num(value: Optional[float]) -> str:
    if value is None:
        return ""
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))
