"""Performance-monitoring report (the SC's performance-monitoring duty).

Section 2 lists performance monitoring among the system controller's
functions.  This module rolls every module's counters into one structured
report per node — CPUs, L1s, ICS, L2 banks, memory channels, protocol
engines, router — and renders it as text.  Used by the CLI's ``--report``
flag and handy in notebooks::

    from repro.harness.perfmon import system_report, render_report
    print(render_report(system_report(system)))
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .report import format_table


def node_report(node, now_ps: Optional[int] = None) -> Dict[str, object]:
    """Collect one node's performance counters.

    Pass *now_ps* (usually ``system.sim.now``) to also include
    time-weighted means — quantities like TSRF occupancy need the end of
    the measurement window to close their last integration segment."""
    cpus = []
    for cpu in node.cpus:
        total = cpu.total_ps or 1
        cpus.append({
            "name": cpu.name,
            "instructions": cpu.instructions,
            "refs": cpu.refs,
            "misses": cpu.misses,
            "l1_miss_rate": cpu.misses / cpu.refs if cpu.refs else 0.0,
            "busy_frac": cpu.busy_ps / total,
            "membars": cpu.c_membar.value,
        })
    l1 = {
        "iL1_hit_rate": _avg(c.hit_rate for c in node.l1i),
        "dL1_hit_rate": _avg(c.hit_rate for c in node.l1d),
    }
    banks = {
        "requests": sum(b.c_requests.value for b in node.banks),
        "hits": sum(b.c_hits.value for b in node.banks),
        "fwds": sum(b.c_fwds.value for b in node.banks),
        "mem": sum(b.c_local_mem.value + b.c_remote_mem.value
                   + b.c_remote_dirty.value for b in node.banks),
        "upgrades": sum(b.c_upgrades.value for b in node.banks),
        "owner_writebacks": sum(b.c_l1_wb_owner.value for b in node.banks),
        "filtered_evictions": sum(b.c_l1_evict_clean.value
                                  for b in node.banks),
        "l2_evictions": sum(b.c_l2_evictions.value for b in node.banks),
        "conflicts": sum(b.c_conflicts.value for b in node.banks),
        "resident_lines": sum(b.resident_lines() for b in node.banks),
    }
    memory = {
        "reads": sum(mc.channel.c_reads.value for mc in node.mcs),
        "writes": sum(mc.channel.c_writes.value for mc in node.mcs),
        "page_hit_rate": _avg(mc.channel.page_hit_rate for mc in node.mcs),
        "queued": sum(mc.channel.c_queued.value for mc in node.mcs),
    }
    ics = {
        "transfers": node.ics.c_transfers.value,
        "bytes": node.ics.c_bytes.value,
        "utilization": node.ics.utilization(),
        "conflicts": node.ics.c_conflicts.value,
    }
    engines = {}
    for engine in (node.home_engine, node.remote_engine):
        block = {
            "threads": engine.c_threads.value,
            "instructions": engine.c_instructions.value,
            "tsrf_high_water": engine.tsrf.high_water,
            "tsrf_stalls": engine.c_tsrf_stalls.value,
            # Explicit 0.0 when no timestamp closes the window: report
            # consumers diff node blocks key-by-key, so an idle engine
            # (never-updated tracker) must not drop the key.
            "tsrf_mean_occupancy": (engine.tw_tsrf.mean(now_ps)
                                    if now_ps is not None else 0.0),
        }
        engines[engine.name.split(".")[-1]] = block
    return {
        "node": node.name,
        "cpus": cpus,
        "l1": l1,
        "l2": banks,
        "memory": memory,
        "ics": ics,
        "engines": engines,
        "packets_sent": node.c_packets_sent.value,
    }


def system_report(system, now_ps: Optional[int] = None) -> List[Dict[str, object]]:
    """Per-node reports for a whole system."""
    return [node_report(node, now_ps=now_ps) for node in system.nodes]


def _avg(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def render_report(reports: List[Dict[str, object]]) -> str:
    """Render node reports as text tables."""
    sections = []
    for report in reports:
        rows = []
        l2 = report["l2"]
        mem = report["memory"]
        ics = report["ics"]
        rows.append(["CPU instructions",
                     sum(c["instructions"] for c in report["cpus"])])
        rows.append(["CPU L1-miss rate",
                     f"{_avg(c['l1_miss_rate'] for c in report['cpus']):.3f}"])
        rows.append(["iL1 / dL1 hit rate",
                     f"{report['l1']['iL1_hit_rate']:.3f} / "
                     f"{report['l1']['dL1_hit_rate']:.3f}"])
        rows.append(["L2 requests (hit/fwd/mem)",
                     f"{l2['requests']} ({l2['hits']}/{l2['fwds']}/"
                     f"{l2['mem']})"])
        rows.append(["L2 owner WBs / filtered", f"{l2['owner_writebacks']} / "
                     f"{l2['filtered_evictions']}"])
        rows.append(["L2 pending conflicts", l2["conflicts"]])
        rows.append(["memory reads/writes", f"{mem['reads']}/{mem['writes']}"])
        rows.append(["page-hit rate", f"{mem['page_hit_rate']:.2f}"])
        rows.append(["ICS transfers / util",
                     f"{ics['transfers']} / {ics['utilization']:.3f}"])
        for name, eng in report["engines"].items():
            rows.append([f"{name} threads/instrs",
                         f"{eng['threads']}/{eng['instructions']}"])
        rows.append(["packets sent", report["packets_sent"]])
        sections.append(format_table(["counter", "value"], rows,
                                     title=report["node"]))
    return "\n\n".join(sections)
