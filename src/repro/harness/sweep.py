"""Parameter-sweep utilities for sensitivity studies.

Runs one workload across a family of derived configurations (varying one
or more :class:`~repro.core.config.ChipConfig` fields) and collects
RunResult-style records — the machinery behind the cores-vs-cache and
keep-open sweeps, reusable for ad-hoc studies::

    from repro.harness.sweep import sweep_field
    results = sweep_field("P8", oltp_factory, "l2.size_bytes",
                          [512 << 10, 1 << 20, 2 << 20])
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence

from ..core.config import ChipConfig, preset
from ..core.system import PiranhaSystem


def replace_field(config: ChipConfig, dotted: str, value) -> ChipConfig:
    """Return a config with ``dotted`` (e.g. ``"l2.size_bytes"`` or
    ``"core.clock_mhz"``) replaced by *value*."""
    parts = dotted.split(".")
    if len(parts) == 1:
        return dataclasses.replace(config, **{parts[0]: value})
    if len(parts) == 2:
        sub = getattr(config, parts[0])
        new_sub = dataclasses.replace(sub, **{parts[1]: value})
        return dataclasses.replace(config, **{parts[0]: new_sub})
    raise ValueError(f"at most one level of nesting supported: {dotted!r}")


def run_config(config: ChipConfig, workload_factory: Callable,
               num_nodes: int = 1, units_attr: str = "transactions") -> Dict:
    """Simulate one configuration; returns a metrics dict."""
    system = PiranhaSystem(config, num_nodes=num_nodes)
    workload = workload_factory(config, num_nodes)
    system.attach_workload(workload)
    system.run_to_completion()
    units = getattr(workload.params, units_attr)
    per_cpu_ps = max(cpu.total_ps for cpu in system.all_cpus())
    summary = system.execution_summary()
    total = summary["total_ps"] or 1
    mb = system.miss_breakdown()
    misses = sum(mb.values()) or 1
    return {
        "config": config.name,
        "time_per_unit_ns": per_cpu_ps / units / 1000.0,
        "throughput": config.cpus * num_nodes * 1e12 / (per_cpu_ps / units),
        "busy_frac": summary["busy_ps"] / total,
        "l2_frac": summary["l2_stall_ps"] / total,
        "mem_frac": summary["mem_stall_ps"] / total,
        "miss_mem_frac": mb["l2_miss"] / misses,
    }


def sweep_field(base: str, workload_factory: Callable, dotted: str,
                values: Sequence, num_nodes: int = 1,
                units_attr: str = "transactions") -> List[Dict]:
    """Sweep one config field over *values*; returns one record per point
    (with the swept value under ``"value"``)."""
    base_config = preset(base) if isinstance(base, str) else base
    out = []
    for value in values:
        config = replace_field(base_config, dotted, value)
        config = dataclasses.replace(config,
                                     name=f"{base_config.name}[{dotted}={value}]")
        record = run_config(config, workload_factory, num_nodes, units_attr)
        record["value"] = value
        out.append(record)
    return out
