"""Parameter-sweep utilities for sensitivity studies.

Runs one workload across a family of derived configurations (varying one
or more :class:`~repro.core.config.ChipConfig` fields) and collects
RunResult-style records — the machinery behind the cores-vs-cache and
keep-open sweeps, reusable for ad-hoc studies::

    from repro.harness.sweep import sweep_field
    results = sweep_field("P8", oltp_factory, "l2.size_bytes",
                          [512 << 10, 1 << 20, 2 << 20], jobs=4)

Sweep points are independent simulations, so they parallelise across
processes: pass ``jobs=N`` (or set ``REPRO_JOBS``) to fan out via
:mod:`repro.harness.parallel`.  Metric assembly is shared with
:func:`repro.harness.runner.simulate` — the serial, parallel and cached
paths all produce identical records.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Callable, Dict, List, Optional, Sequence

from ..core.config import ChipConfig, preset
from .cache import (cache_dir, cache_enabled, config_digest,
                    library_fingerprint, workload_token)
from .parallel import Job, run_jobs
from .runner import RunResult, run_configured


def parse_sweep_value(text: str):
    """Parse one swept value: int (with K/M/G suffix), float, or string.

    Shared by the CLI ``sweep`` verb and the service worker, so a sweep
    submitted over the wire (values as strings) resolves to exactly the
    values the equivalent command line would."""
    text = text.strip()
    suffixes = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    if text and text[-1].upper() in suffixes:
        try:
            return int(float(text[:-1]) * suffixes[text[-1].upper()])
        except ValueError:
            pass
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def replace_field(config: ChipConfig, dotted: str, value) -> ChipConfig:
    """Return a config with ``dotted`` (e.g. ``"l2.size_bytes"`` or
    ``"core.clock_mhz"``) replaced by *value*."""
    parts = dotted.split(".")
    if len(parts) > 2:
        raise ValueError(f"at most one level of nesting supported: {dotted!r}")
    if not all(parts):
        raise ValueError(f"empty component in field path: {dotted!r}")
    if len(parts) == 1:
        if parts[0] not in {f.name for f in dataclasses.fields(config)}:
            raise ValueError(
                f"unknown config field {parts[0]!r}; available: "
                f"{sorted(f.name for f in dataclasses.fields(config))}")
        return dataclasses.replace(config, **{parts[0]: value})
    group, leaf = parts
    sub = getattr(config, group, None)
    if sub is None or not dataclasses.is_dataclass(sub):
        raise ValueError(f"unknown config group {group!r} in {dotted!r}")
    if leaf not in {f.name for f in dataclasses.fields(sub)}:
        raise ValueError(
            f"unknown field {leaf!r} in config group {group!r}; available: "
            f"{sorted(f.name for f in dataclasses.fields(sub))}")
    new_sub = dataclasses.replace(sub, **{leaf: value})
    return dataclasses.replace(config, **{group: new_sub})


def record_from_result(result: RunResult) -> Dict:
    """Flatten a RunResult into the sweep's metrics-dict shape."""
    return {
        "config": result.config,
        "time_per_unit_ns": result.time_per_unit_ns,
        "throughput": result.throughput,
        "busy_frac": result.busy_frac,
        "l2_frac": result.l2_frac,
        "mem_frac": result.mem_frac,
        "miss_hit_frac": result.miss_hit_frac,
        "miss_fwd_frac": result.miss_fwd_frac,
        "miss_mem_frac": result.miss_mem_frac,
    }


def run_config(config: ChipConfig, workload_factory: Callable,
               num_nodes: int = 1, units_attr: str = "transactions",
               check_coherence: bool = False) -> Dict:
    """Simulate one configuration; returns a metrics dict.

    Delegates to :func:`repro.harness.runner.run_configured`, the single
    shared measurement implementation (metric assembly used to be
    duplicated here and could drift from the runner's)."""
    return record_from_result(
        run_configured(config, workload_factory, num_nodes=num_nodes,
                       units_attr=units_attr,
                       check_coherence=check_coherence))


def sweep_configs(base: ChipConfig, dotted: str,
                  values: Sequence) -> List[ChipConfig]:
    """Materialise the derived configuration for each swept value."""
    out = []
    for value in values:
        config = replace_field(base, dotted, value)
        out.append(dataclasses.replace(
            config, name=f"{base.name}[{dotted}={value}]"))
    return out


def sweep_key(base_config: ChipConfig, workload_factory: Callable,
              dotted: str, values: Sequence, num_nodes: int,
              units_attr: str, check_coherence: bool) -> Optional[str]:
    """Stable identity of one sweep (for its progress manifest), or None
    when the workload factory is opaque (nothing resumable to key on)."""
    token = workload_token(workload_factory)
    if token is None:
        return None
    payload = json.dumps(
        {
            "lib": library_fingerprint(),
            "base": config_digest(base_config),
            "field": dotted,
            "values": [str(v) for v in values],
            "workload": token,
            "nodes": num_nodes,
            "units_attr": units_attr,
            "check": bool(check_coherence),
            "scale": os.environ.get("REPRO_SCALE", "1.0"),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def manifest_path(key: str) -> str:
    return os.path.join(cache_dir(), "sweeps", key + ".json")


def load_manifest(key: Optional[str]) -> Optional[Dict]:
    """The progress manifest for a sweep key, or None."""
    if key is None:
        return None
    try:
        with open(manifest_path(key), "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def _write_manifest(key: str, manifest: Dict) -> None:
    path = manifest_path(key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(manifest, f, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def sweep_field(base, workload_factory: Callable, dotted: str,
                values: Sequence, num_nodes: int = 1,
                units_attr: str = "transactions",
                jobs: Optional[int] = None,
                check_coherence: bool = False,
                warmup: bool = False,
                resume: bool = False) -> List[Dict]:
    """Sweep one config field over *values*; returns one record per point
    (with the swept value under ``"value"``).

    ``jobs`` (default: the ``REPRO_JOBS`` environment variable, else 1)
    fans the points out across worker processes; records are identical to
    a serial sweep regardless of the worker count.  ``check_coherence``
    runs every point under the protocol sanitizer (any violation raises
    out of the sweep).

    ``warmup`` routes every point through the warm-checkpoint store —
    note the points of a *field* sweep have distinct configs and so
    distinct warm snapshots; the amortisation is across re-runs of the
    same sweep, i.e. exactly the ``resume`` scenario.  ``resume``
    (implies ``warmup``) additionally maintains a progress manifest under
    ``cache_dir()/sweeps/``: a killed sweep re-invoked with
    ``resume=True`` answers completed points from the result cache,
    restores interrupted points from their warm snapshots, and finishes
    only the remaining work.
    """
    if resume:
        warmup = True
    base_config = preset(base) if isinstance(base, str) else base
    configs = sweep_configs(base_config, dotted, values)

    key = None
    manifest = None
    on_result = None
    if resume and cache_enabled():
        key = sweep_key(base_config, workload_factory, dotted, values,
                        num_nodes, units_attr, check_coherence)
        if key is not None:
            manifest = load_manifest(key) or {
                "field": dotted,
                "values": [str(v) for v in values],
                "total": len(values),
                "done": [],
            }
            # a manifest from a partial run with different values (the
            # key folds values in, so this means a hash collision or
            # hand-editing): start clean rather than trust it
            if manifest.get("total") != len(values):
                manifest = {"field": dotted,
                            "values": [str(v) for v in values],
                            "total": len(values), "done": []}

            def on_result(i: int, _job: Job, _result: RunResult,
                          _key: str = key) -> None:
                done = set(manifest["done"])
                done.add(i)
                manifest["done"] = sorted(done)
                _write_manifest(_key, manifest)

    results = run_jobs(
        [Job(config=c, factory=workload_factory, num_nodes=num_nodes,
             units_attr=units_attr, check_coherence=check_coherence,
             warmup=warmup)
         for c in configs],
        jobs=jobs,
        on_result=on_result,
    )
    out = []
    for value, result in zip(values, results):
        record = record_from_result(result)
        record["value"] = value
        out.append(record)
    return out
