"""Experiment harness: runners, per-figure experiments, reporting."""

from .experiments import (
    FIGURE5_PAPER,
    FIGURE6A_PAPER,
    FIGURE6B_PAPER,
    FIGURE7_PAPER,
    FIGURE8_PAPER,
    figure5,
    figure6a,
    figure6b,
    figure7,
    figure8,
    pessimistic_sensitivity,
    run_dss,
    run_oltp,
    run_tpcc,
    table1_parameters,
    tpcc_sensitivity,
)
from .perfmon import node_report, render_report, system_report
from .report import breakdown_bar, format_table, paper_vs_measured, series
from .sweep import replace_field, run_config, sweep_field
from .runner import RunResult, clear_cache, run_workload, scale_factor

__all__ = [
    "FIGURE5_PAPER",
    "FIGURE6A_PAPER",
    "FIGURE6B_PAPER",
    "FIGURE7_PAPER",
    "FIGURE8_PAPER",
    "figure5",
    "figure6a",
    "figure6b",
    "figure7",
    "figure8",
    "pessimistic_sensitivity",
    "run_dss",
    "run_oltp",
    "run_tpcc",
    "table1_parameters",
    "tpcc_sensitivity",
    "node_report",
    "render_report",
    "system_report",
    "replace_field",
    "run_config",
    "sweep_field",
    "breakdown_bar",
    "format_table",
    "paper_vs_measured",
    "series",
    "RunResult",
    "clear_cache",
    "run_workload",
    "scale_factor",
]
