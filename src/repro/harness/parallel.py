"""Experiment-level parallelism: fan independent points across processes.

Each simulation point is an independent, deterministic, single-threaded
program — the ideal unit for process-level parallelism.  :func:`run_jobs`
takes a list of :class:`Job` specs, answers what it can from the memo /
disk caches, and fans the remaining points out over a
``ProcessPoolExecutor``.  Workers run the shared
:func:`~repro.harness.runner.simulate` implementation, so a parallel run
produces bit-for-bit the same measurement payload as a serial one (see
DESIGN.md, "Determinism").

Parallelism is opt-in: pass ``jobs=N``, or set ``REPRO_JOBS=N`` in the
environment (``REPRO_JOBS=0`` means one worker per CPU core).  With one
job — the default — everything runs serially in-process, exactly as
before this layer existed.

Jobs whose workload factory cannot be pickled (closures, lambdas) fall
back to serial execution transparently; the picklable factories in
:mod:`repro.harness.experiments` cover every standard workload.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.config import ChipConfig
from .runner import (
    RunResult,
    cached_result,
    run_configured,
    simulate,
    store_result,
)


@dataclass(frozen=True)
class Job:
    """One simulation point: a config, a workload factory, and bookkeeping."""

    config: ChipConfig
    factory: Callable[[ChipConfig, int], object]
    num_nodes: int = 1
    units_attr: str = "transactions"
    check_coherence: bool = False
    cache_key_extra: tuple = ()
    trace_capacity: int = 0
    probe_rate: int = 0
    sample_interval_ps: int = 0
    #: route through the warm-checkpoint store (restore-or-snapshot at the
    #: warm-up boundary); execution strategy only — never part of a cache
    #: key, results are byte-identical either way
    warmup: bool = False
    #: causal span tracer: keep up to N transaction span trees in
    #: ``extras["trace"]`` (0 disables); deterministic, so it folds into
    #: the cache key and survives the ProcessPool round-trip like metrics
    trace_spans: int = 0
    #: host self-profiler 1-in-N event sampling rate (0 disables);
    #: ``extras["host_profile"]`` comes back through the result pickle
    profile: int = 0
    #: telemetry stream target (a *path string* for parallel jobs —
    #: open handles don't pickle); workers stream from their own process
    telemetry: Optional[str] = None


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else 1.

    0 (or a negative value) means "use every CPU core".
    """
    if jobs is None:
        try:
            jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
        except ValueError:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _execute(job: Job) -> RunResult:
    """Worker-side entry: plain simulation.  Cache reads and writes stay
    in the parent so workers never race on the cache directory — with
    one exception: warm checkpoints are written worker-side (atomic
    tmp+rename, and distinct points never share a key), because shipping
    multi-megabyte snapshots back through the result pickle would cost
    more than the race it avoids."""
    return simulate(job.config, job.factory, job.num_nodes, job.units_attr,
                    job.check_coherence, job.trace_capacity,
                    job.probe_rate, job.sample_interval_ps,
                    warmup=job.warmup, trace_spans=job.trace_spans,
                    profile=job.profile, telemetry=job.telemetry)


def _run_serial(job: Job) -> RunResult:
    return run_configured(
        job.config, job.factory, num_nodes=job.num_nodes,
        units_attr=job.units_attr, check_coherence=job.check_coherence,
        cache_key_extra=job.cache_key_extra,
        trace_capacity=job.trace_capacity,
        probe_rate=job.probe_rate,
        sample_interval_ps=job.sample_interval_ps,
        warmup=job.warmup, trace_spans=job.trace_spans,
        profile=job.profile, telemetry=job.telemetry,
    )


def _picklable(job: Job) -> bool:
    try:
        pickle.dumps(job)
        return True
    except Exception:
        return False


def run_jobs(jobs_list: Sequence[Job], jobs: Optional[int] = None,
             on_result: Optional[Callable[[int, Job, RunResult], None]] = None,
             ) -> List[RunResult]:
    """Execute every job, in order, using up to *jobs* worker processes.

    Results are returned in input order.  Cached points (memo or disk)
    are answered immediately and never dispatched; fresh results are
    written back to both caches by the parent.

    *on_result* is invoked in the parent as ``on_result(index, job,
    result)`` for every completed point (cached answers included), after
    the result has been persisted to the caches — resumable sweeps hang
    their progress manifest on this, so a point marked done in the
    manifest is guaranteed to be answerable from the cache on re-run.
    Completion order is not input order for parallel points.
    """
    jobs_list = list(jobs_list)
    n_workers = resolve_jobs(jobs)
    results: List[Optional[RunResult]] = [None] * len(jobs_list)

    def done(i: int, result: RunResult) -> None:
        results[i] = result
        if on_result is not None:
            on_result(i, jobs_list[i], result)

    misses: List[int] = []
    for i, job in enumerate(jobs_list):
        cached = cached_result(
            job.config, job.factory, job.num_nodes, job.units_attr,
            job.check_coherence, job.cache_key_extra, job.trace_capacity,
            job.probe_rate, job.sample_interval_ps, job.trace_spans,
            job.profile, job.telemetry)
        if cached is not None:
            done(i, cached)
        else:
            misses.append(i)

    if not misses:
        return results  # type: ignore[return-value]

    parallel_idx = [i for i in misses if _picklable(jobs_list[i])]
    serial_idx = [i for i in misses if i not in set(parallel_idx)]
    if n_workers <= 1 or len(parallel_idx) <= 1:
        serial_idx = misses
        parallel_idx = []

    if parallel_idx:
        workers = min(n_workers, len(parallel_idx))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            fresh = pool.map(_execute, [jobs_list[i] for i in parallel_idx])
            for i, result in zip(parallel_idx, fresh):
                job = jobs_list[i]
                store_result(result, job.config, job.factory, job.num_nodes,
                             job.units_attr, job.check_coherence,
                             job.cache_key_extra, job.trace_capacity,
                             job.probe_rate, job.sample_interval_ps,
                             job.trace_spans, job.profile, job.telemetry)
                done(i, result)

    for i in serial_idx:
        done(i, _run_serial(jobs_list[i]))

    return results  # type: ignore[return-value]
