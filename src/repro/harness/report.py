"""Plain-text reporting: tables and paper-vs-measured comparisons.

The benchmark harness prints the same rows/series the paper's tables and
figures report, side by side with the paper's values.  Absolute numbers
are not expected to match (the substrate is a synthetic simulator); the
*shape* — who wins, by what factor, where the crossovers fall — is the
reproduction target.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table renderer."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def paper_vs_measured(title: str,
                      rows: Iterable[Sequence[object]]) -> str:
    """Rows of (metric, paper value, measured value [, note])."""
    rows = list(rows)
    has_note = any(len(r) > 3 for r in rows)
    headers = ["metric", "paper", "measured"] + (["note"] if has_note else [])
    padded = [list(r) + [""] * (len(headers) - len(r)) for r in rows]
    return format_table(headers, padded, title=title)


def breakdown_bar(label: str, busy: float, l2: float, mem: float,
                  width: int = 40) -> str:
    """ASCII stacked bar of the Figure 5 execution-time breakdown."""
    total = busy + l2 + mem
    if total <= 0:
        return f"{label:12s} (empty)"
    n_busy = round(width * busy / total)
    n_l2 = round(width * l2 / total)
    n_mem = width - n_busy - n_l2
    bar = "#" * n_busy + "=" * n_l2 + "." * n_mem
    return (f"{label:12s} [{bar}] busy:{busy:.2f} l2:{l2:.2f} mem:{mem:.2f}")


def series(label: str, values: Dict[object, float], fmt: str = "{:.2f}") -> str:
    points = "  ".join(f"{k}:{fmt.format(v)}" for k, v in values.items())
    return f"{label}: {points}"
