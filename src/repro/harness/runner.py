"""Experiment runner: build a system, attach a workload, measure.

All figure/table regeneration (``repro.harness.experiments``) goes through
:func:`run_workload` / :func:`run_configured`, which return a
:class:`RunResult` with the normalised execution-time breakdown (Figure
5's CPU-busy / L2-hit / L2-miss decomposition), the L1-miss service
decomposition (Figure 6b), and a throughput figure of merit.

Simulations are deterministic, so results are cached at two levels:

* an in-process **memo** (:class:`MemoCache`) so pytest-benchmark can
  re-invoke a bench without re-simulating, and
* the persistent **disk cache** (:mod:`repro.harness.cache`) so fresh
  processes — re-runs of benchmarks, examples, CI — skip simulation
  entirely when the code, config and workload are unchanged.

Set ``REPRO_NO_CACHE=1`` to disable both; :func:`memo_cache_info`
exposes the memo's contents and hit/miss counters, and every returned
``RunResult`` carries the current counters in ``extras`` (telemetry
only — the measurement payload of a RunResult is deterministic, extras
and ``sim_wall_s`` are not).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..core.checker import CoherenceChecker
from ..core.config import ChipConfig, preset
from ..core.system import PiranhaSystem
from .cache import (
    DISK_CACHE,
    cache_enabled,
    config_digest,
    result_key,
    workload_token,
)


def scale_factor() -> float:
    """Workload scale: set ``REPRO_SCALE=0.5`` (for example) to shrink the
    measured phases for quick runs; results get noisier but shapes hold."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


@dataclass
class RunResult:
    """Outcome of one simulated configuration.

    Every field except ``sim_wall_s`` and ``extras`` is a deterministic
    function of (config, workload, nodes, library code): serial, parallel
    and cached executions of the same point agree bit-for-bit on the
    measurement payload.  ``sim_wall_s`` is host wall-clock;``extras``
    carries harness telemetry (cache counters).
    """

    config: str
    cpus: int
    nodes: int
    workload: str
    units: int                   # transactions / rows measured per CPU
    time_per_unit_ns: float      # per-CPU steady-state time per unit
    throughput: float            # units per second, whole system
    busy_frac: float
    l2_frac: float               # on-chip stall fraction (L2 hit + fwd)
    mem_frac: float
    miss_hit_frac: float         # L1 misses serviced by the L2
    miss_fwd_frac: float         # ... by another on-chip L1
    miss_mem_frac: float         # ... by local/remote memory
    sim_wall_s: float = 0.0
    #: harness telemetry and structured payloads (sanitizer counters,
    #: the "metrics" document from the observability layer); values are
    #: floats or JSON-shaped nested dicts — everything pickles/serialises
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def normalized_breakdown(self) -> Tuple[float, float, float]:
        return (self.busy_frac, self.l2_frac, self.mem_frac)

    def payload_tuple(self) -> tuple:
        """The deterministic fields (everything except wall time/extras)."""
        return (self.config, self.cpus, self.nodes, self.workload,
                self.units, self.time_per_unit_ns, self.throughput,
                self.busy_frac, self.l2_frac, self.mem_frac,
                self.miss_hit_frac, self.miss_fwd_frac, self.miss_mem_frac)


class MemoCache:
    """In-process RunResult memo with hit/miss counters."""

    def __init__(self) -> None:
        self._store: Dict[tuple, RunResult] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Optional[RunResult]:
        result = self._store.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: tuple, result: RunResult) -> None:
        self._store[key] = result

    def clear(self) -> None:
        self._store.clear()

    def info(self) -> Dict[str, object]:
        """Snapshot: entry count, hit/miss counters, cached point names."""
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "keys": sorted(str(k) for k in self._store),
        }


_MEMO = MemoCache()


def clear_cache() -> None:
    """Drop every memoised result (the disk cache is left alone)."""
    _MEMO.clear()


def memo_cache_info() -> Dict[str, object]:
    """Inspect the in-process memo (entries, hits, misses, keys)."""
    return _MEMO.info()


def _memo_key(config: ChipConfig, workload_factory: Callable,
              num_nodes: int, units_attr: str, check_coherence: bool,
              cache_key_extra: tuple) -> tuple:
    token = workload_token(workload_factory)
    if token is None:
        # opaque callable: fall back to its qualname; cache_key_extra is
        # the caller's discriminator (as it was before disk caching)
        token = getattr(workload_factory, "__qualname__",
                        type(workload_factory).__qualname__)
    return (config_digest(config), token, num_nodes, units_attr,
            check_coherence, cache_key_extra)


def _trace_key_extra(cache_key_extra: tuple, trace_capacity: int) -> tuple:
    """Fold the trace setting into the cache discriminator: a traced run
    records different extras (``trace_events``) than an untraced one."""
    if not trace_capacity:
        return cache_key_extra
    return cache_key_extra + (("trace", trace_capacity),)


def _obs_key_extra(cache_key_extra: tuple, probe_rate: int,
                   sample_interval_ps: int) -> tuple:
    """Fold the observability settings into the cache discriminator: a
    probed/sampled run carries the ``metrics`` document in its extras,
    so it must not answer (or be answered by) an unprobed cache entry."""
    if probe_rate:
        cache_key_extra = cache_key_extra + (("probes", probe_rate),)
    if sample_interval_ps:
        cache_key_extra = cache_key_extra + (("sample", sample_interval_ps),)
    return cache_key_extra


def _flightdeck_key_extra(cache_key_extra: tuple, trace_spans: int,
                          profile: int, telemetry) -> tuple:
    """Fold the flight-deck settings into the cache discriminator.

    A span-traced run carries ``extras["trace"]`` and a profiled run
    ``extras["host_profile"]``, so neither may answer (or be answered
    by) a plain entry.  Span tracing also implies probes (the tracer
    consumes probe completions), which changes the payload-adjacent
    metrics document.  Telemetry folds as a bare enable marker — the
    stream target is host-specific and the simulated payload identical
    — so a repeat of a streamed run answers from cache (without
    re-streaming; the CLI reports the hit instead).
    """
    if trace_spans:
        cache_key_extra = cache_key_extra + (("spans", trace_spans),)
    if profile:
        cache_key_extra = cache_key_extra + (("profile", profile),)
    if telemetry is not None:
        cache_key_extra = cache_key_extra + (("telemetry", 1),)
    return cache_key_extra


#: probe rate implied by ``trace_spans`` when probes were not requested
#: explicitly: the tracer needs probe completions to promote.
SPAN_PROBE_RATE = 64

#: sampled-mode defaults, applied identically by :func:`simulate` (to the
#: run) and :func:`_sampled_key_extra` (to the cache key) so a default
#: change can never let an old cache entry answer for a new default
SAMPLED_WINDOW = 800
SAMPLED_PERIOD = 6000


def _sampled_key_extra(cache_key_extra: tuple, mode: str, window: int,
                       period: int, warming: str) -> tuple:
    """Fold the sampled-mode settings into the cache discriminator: a
    sampled run's payload is a statistical estimate (with its own
    ``extras["sampling"]`` document), so it must never answer for — or be
    answered by — a detailed run of the same point.  Window/period fold
    at their *effective* (default-resolved) values."""
    if mode == "detailed":
        return cache_key_extra
    return cache_key_extra + (("sampled", mode, window or SAMPLED_WINDOW,
                               period or SAMPLED_PERIOD, warming),)


def build_system(
    config: ChipConfig,
    workload_factory: Callable[[ChipConfig, int], object],
    num_nodes: int = 1,
    check_coherence: bool = False,
    trace_capacity: int = 0,
    probe_rate: int = 0,
    sample_interval_ps: int = 0,
    trace_spans: int = 0,
    profile: int = 0,
) -> Tuple[PiranhaSystem, object]:
    """Assemble a ready-to-run (system, workload) pair.

    Shared by the cold path of :func:`simulate` and the CLI's
    ``checkpoint save`` verb, so a warm snapshot is taken of exactly the
    machine a measurement run would build.

    ``trace_spans=N`` attaches the causal span tracer (keeping up to N
    transactions), implying probes at :data:`SPAN_PROBE_RATE` when none
    were requested; ``profile=N`` attaches the host self-profiler at a
    1-in-N event sampling rate.
    """
    workload = workload_factory(config, num_nodes)
    checker = None
    if check_coherence or trace_capacity:
        checker = (CoherenceChecker.with_trace(trace_capacity)
                   if trace_capacity else CoherenceChecker())
    system = PiranhaSystem(config, num_nodes=num_nodes, checker=checker)
    system.attach_workload(workload)
    bind_system = getattr(workload, "bind_system", None)
    if bind_system is not None:
        # workloads that observe the live system (the fuzz reference
        # checker) wire themselves up once everything is built
        bind_system(system)
    if check_coherence:
        system.enable_continuous_audit()
    if trace_spans and not probe_rate:
        probe_rate = SPAN_PROBE_RATE
    if probe_rate:
        system.enable_probes(probe_rate)
    if trace_spans:
        system.enable_span_trace(trace_spans)
    if sample_interval_ps:
        system.enable_sampler(sample_interval_ps)
    if profile:
        from ..observe.hostprof import HostProfiler

        system.sim.profiler = HostProfiler(profile)
    return system, workload


def assemble_result(
    system: PiranhaSystem,
    workload,
    config: ChipConfig,
    num_nodes: int,
    units_attr: str,
    probe_rate: int = 0,
    sample_interval_ps: int = 0,
    wall: float = 0.0,
    trace_spans: int = 0,
) -> RunResult:
    """Measure a drained system into a :class:`RunResult`.

    One assembly implementation for the cold, warm-restored and
    checkpoint-restored paths: whatever route the machine took to the
    drained state, the measurement payload is computed identically.
    """
    sanitizer: Dict[str, float] = {}
    if system.checker is not None:
        sanitizer = system.verify()

    units = getattr(workload.params, units_attr)
    per_cpu_ps = max(cpu.total_ps for cpu in system.all_cpus())
    time_per_unit_ns = per_cpu_ps / units / 1000.0
    total_cpus = config.cpus * num_nodes
    throughput = total_cpus * 1e9 / time_per_unit_ns

    summary = system.execution_summary()
    total_ps = summary["total_ps"] or 1
    mb = system.miss_breakdown()
    misses = sum(mb.values()) or 1

    result = RunResult(
        config=config.name,
        cpus=config.cpus,
        nodes=num_nodes,
        workload=getattr(workload, "name", "?"),
        units=units,
        time_per_unit_ns=time_per_unit_ns,
        throughput=throughput,
        busy_frac=summary["busy_ps"] / total_ps,
        l2_frac=summary["l2_stall_ps"] / total_ps,
        mem_frac=summary["mem_stall_ps"] / total_ps,
        miss_hit_frac=mb["l2_hit"] / misses,
        miss_fwd_frac=mb["l2_fwd"] / misses,
        miss_mem_frac=mb["l2_miss"] / misses,
        sim_wall_s=wall,
        extras=dict(sanitizer),
    )
    if probe_rate or sample_interval_ps:
        from .metrics import metrics_doc

        # deterministic (simulation-state-only), so it is safe to cache
        # and identical across the serial and ProcessPool paths
        result.extras["metrics"] = metrics_doc(
            system, result, probe_rate, sample_interval_ps)
    _attach_flightdeck_extras(result, system, config, num_nodes, probe_rate,
                              trace_spans)
    post_run = getattr(workload, "post_run", None)
    if post_run is not None:
        # end-of-run workload audit (fuzz residue check + telemetry);
        # may raise, and may add deterministic extras
        post_run(system, result)
    return result


def simulate(
    config: ChipConfig,
    workload_factory: Callable[[ChipConfig, int], object],
    num_nodes: int = 1,
    units_attr: str = "transactions",
    check_coherence: bool = False,
    trace_capacity: int = 0,
    probe_rate: int = 0,
    sample_interval_ps: int = 0,
    warmup: bool = False,
    mode: str = "detailed",
    window: int = 0,
    period: int = 0,
    warming: str = "functional",
    trace_spans: int = 0,
    profile: int = 0,
    telemetry=None,
) -> RunResult:
    """Run one simulation point, uncached.

    This is the single shared measurement implementation: the runner, the
    sweep harness and the parallel workers all assemble their metrics
    here, so the busy/L2/mem fractions and the miss breakdown cannot
    drift between entry points.

    ``check_coherence=True`` attaches the protocol sanitizer: the
    continuous mid-run audit set plus the full quiesce audit via
    :meth:`~repro.core.system.PiranhaSystem.verify` — exactly what the
    CLI ``--check`` path runs — with the audit telemetry merged into
    ``RunResult.extras`` (so it survives the ProcessPool round-trip).
    ``trace_capacity`` additionally attaches a ring-buffered protocol
    trace of that many events; violations then carry the per-line event
    history.

    ``probe_rate=N`` tags one of every N L1 misses with a latency probe,
    and ``sample_interval_ps`` attaches the interval time-series sampler;
    either one makes the structured metrics document appear in
    ``extras["metrics"]`` (see :mod:`repro.harness.metrics`).

    ``warmup=True`` routes through the warm-checkpoint store
    (:mod:`repro.checkpoint.store`): on a hit the machine is restored at
    its warm-up boundary and only the measurement phase is simulated; on
    a miss the cold run additionally snapshots itself at the boundary so
    every later run of this (config, workload) point — other sweep
    points, ``--resume``, parallel workers — skips the warm-up.  The
    measurement payload is byte-identical either way (tested), so the
    flag is deliberately *not* part of any result-cache key.

    ``mode="sampled"`` switches to SMARTS-style sampled simulation
    (:mod:`repro.fastforward`): the machine fast-forwards through
    functional warming and runs only short detailed measurement windows
    (``window`` items per CPU) every ``period`` items, handing off
    between regimes through the checkpoint subsystem.  The result's
    totals are extrapolated estimates and ``extras["sampling"]`` carries
    per-metric-class 95% confidence intervals.  ``warmup=True`` composes
    with sampled mode through the same warm store (under a variant key —
    sampled snapshots park their CPUs at the boundary, so they never
    answer a detailed ``warmup=True`` run or vice versa): the first
    sampled run pays the functional warm-up and persists the boundary
    snapshot; every later sampled run of the point restores it and pays
    only the measurement windows, which is where the large sampled
    speedups live.

    ``trace_spans=N`` keeps a causal span trace of up to N transactions
    in ``extras["trace"]`` (a ``repro-trace/1`` document, also
    Perfetto-loadable); ``profile=N`` attaches the host self-profiler at
    a 1-in-N event rate and reports via ``extras["host_profile"]``;
    ``telemetry`` (a path, fd, file-like object, or
    :class:`~repro.observe.telemetry.TelemetryStream`) streams live
    heartbeat/interval/window/run-end records as the simulation runs.
    """
    wall0 = time.time()
    if trace_spans and not probe_rate:
        probe_rate = SPAN_PROBE_RATE
    stream = _open_telemetry(telemetry)
    try:
        result = _simulate_inner(
            config, workload_factory, num_nodes, units_attr,
            check_coherence, trace_capacity, probe_rate,
            sample_interval_ps, warmup, mode, window, period, warming,
            trace_spans, profile, stream, wall0)
    finally:
        if stream is not None and stream is not telemetry:
            stream.close()
    return result


def _open_telemetry(telemetry):
    """Normalise a telemetry target into a TelemetryStream (or None).
    Callers close streams they opened; a caller-supplied stream is left
    open (the CLI reuses its stream for the cached-answer banner)."""
    if telemetry is None:
        return None
    from ..observe.telemetry import TelemetryStream

    if isinstance(telemetry, TelemetryStream):
        return telemetry
    return TelemetryStream(telemetry)


def _simulate_inner(
    config, workload_factory, num_nodes, units_attr, check_coherence,
    trace_capacity, probe_rate, sample_interval_ps, warmup, mode, window,
    period, warming, trace_spans, profile, stream, wall0,
) -> RunResult:
    if stream is not None:
        stream.emit(
            "run_start", config=config.name,
            workload=workload_token(workload_factory), num_nodes=num_nodes,
            mode=mode, probe_rate=probe_rate,
            sample_interval_ps=sample_interval_ps, trace_spans=trace_spans,
            profile=profile)
    if mode == "sampled":
        from ..fastforward import SampledRun

        skip_warm = False
        on_warm = None
        system = None
        if warmup:
            from ..checkpoint import (WARM_STORE, build_manifest,
                                      restore_system, snapshot_bytes,
                                      warm_key)
            from .cache import library_fingerprint

            key = warm_key(config, workload_factory, num_nodes, units_attr,
                           check_coherence, trace_capacity, probe_rate,
                           sample_interval_ps, variant="sampled-" + warming)
            hit = WARM_STORE.get(key)
            if hit is not None:
                _manifest, payload = hit
                system = restore_system(payload)
                workload = system.workload
                skip_warm = True
            elif key is not None:
                def on_warm(sys_, _key=key):
                    payload = snapshot_bytes(sys_)
                    WARM_STORE.put(_key, build_manifest(
                        payload,
                        fingerprint=library_fingerprint(),
                        config_digest=config_digest(config),
                        workload=workload_token(workload_factory),
                        nodes=sys_.num_nodes,
                        sim_now=sys_.sim.now,
                    ), payload)
        if system is None:
            system, workload = build_system(
                config, workload_factory, num_nodes, check_coherence,
                trace_capacity, probe_rate, sample_interval_ps)
        _arm_flightdeck(system, trace_spans, profile, stream)
        # handoff="none": batch measurement needs no in-memory window
        # captures (those serve the gate / CLI inspection paths); the
        # persistent warm-boundary snapshot above is unaffected
        run = SampledRun(system, window=window or SAMPLED_WINDOW,
                         period=period or SAMPLED_PERIOD, warming=warming,
                         handoff="none", skip_warm=skip_warm, on_warm=on_warm,
                         telemetry=stream)
        run.run()
        result = run.to_result(config, num_nodes, units_attr, probe_rate,
                               sample_interval_ps, time.time() - wall0)
        _attach_flightdeck_extras(result, system, config, num_nodes,
                                  probe_rate, trace_spans)
        _emit_run_end(stream, result)
        return result
    if mode != "detailed":
        raise ValueError(f"unknown simulation mode {mode!r}")
    if warmup:
        from ..checkpoint import (WARM_STORE, WarmCapture, build_manifest,
                                  restore_system, warm_key)
        from .cache import library_fingerprint

        key = warm_key(config, workload_factory, num_nodes, units_attr,
                       check_coherence, trace_capacity, probe_rate,
                       sample_interval_ps)
        hit = WARM_STORE.get(key)
        if hit is not None:
            _manifest, payload = hit
            system = restore_system(payload)
            workload = system.workload
            _arm_flightdeck(system, trace_spans, profile, stream)
            system.run_to_completion()  # start() is a no-op: pure resume
        else:
            system, workload = build_system(
                config, workload_factory, num_nodes, check_coherence,
                trace_capacity, probe_rate, sample_interval_ps)

            def persist(payload: bytes, sim_now: int) -> None:
                # at the boundary, before the measurement phase: a run
                # killed mid-measurement still leaves warm state behind
                WARM_STORE.put(key, build_manifest(
                    payload,
                    fingerprint=library_fingerprint(),
                    config_digest=config_digest(config),
                    workload=workload_token(workload_factory),
                    nodes=system.num_nodes,
                    sim_now=sim_now,
                ), payload)

            if key is not None:
                # opaque workloads (no stable token) cannot be stored;
                # skip the snapshot cost entirely
                WarmCapture(system, sink=persist)
            _arm_flightdeck(system, trace_spans, profile, stream)
            system.run_to_completion()
    else:
        system, workload = build_system(
            config, workload_factory, num_nodes, check_coherence,
            trace_capacity, probe_rate, sample_interval_ps)
        _arm_flightdeck(system, trace_spans, profile, stream)
        system.run_to_completion()
    wall = time.time() - wall0
    result = assemble_result(system, workload, config, num_nodes, units_attr,
                             probe_rate, sample_interval_ps, wall,
                             trace_spans=trace_spans)
    _emit_run_end(stream, result)
    return result


def _arm_flightdeck(system: PiranhaSystem, trace_spans: int, profile: int,
                    stream) -> None:
    """(Re)arm or disarm the flight-deck observers on a system.

    Covers two situations the cold :func:`build_system` path cannot: a
    system restored from a warm snapshot (whose pickled state reflects
    whatever observers the *snapshotting* run had armed — this run's
    settings must win), and attaching the host-side telemetry stream,
    which is never built into a system.
    """
    if trace_spans:
        if system.spans is None and system.probes is not None:
            system.enable_span_trace(trace_spans)
    elif system.spans is not None:
        system.spans = None
        if system.probes is not None:
            system.probes.on_finish = None
    if profile:
        if system.sim.profiler is None:
            from ..observe.hostprof import HostProfiler

            system.sim.profiler = HostProfiler(profile)
    else:
        system.sim.profiler = None
    if stream is not None and system.sampler is not None:
        system.sampler.on_record = stream.on_interval


def _attach_flightdeck_extras(result: RunResult, system: PiranhaSystem,
                              config: ChipConfig, num_nodes: int,
                              probe_rate: int, trace_spans: int) -> None:
    """Attach the span-trace document and the host-profile report.

    Shared by :func:`assemble_result` (detailed runs) and the sampled
    path (``SampledRun.to_result`` assembles its own payload, so the
    extras are grafted on afterwards).  The trace doc is deterministic
    for the same reason the metrics doc is — built purely from
    simulation state (probe stamps carry simulated time, kept txns drop
    the process-global txn_id) — so it is safe to cache.  The host
    profile is wall-clock and therefore NOT deterministic: fine in
    ``extras`` (like ``sim_wall_s``), never in the payload.
    """
    if trace_spans and system.spans is not None:
        from ..observe.spans import trace_doc

        protocol_events = None
        if system.checker is not None and system.checker.trace is not None:
            protocol_events = system.checker.trace.events()
        result.extras["trace"] = trace_doc(
            system.spans, config.name, num_nodes, probe_rate,
            protocol_events)
    profiler = system.sim.profiler
    if profiler is not None:
        result.extras["host_profile"] = profiler.as_dict()


def _emit_run_end(stream, result: RunResult, cached: bool = False) -> None:
    if stream is None:
        return
    stream.emit("run_end", config=result.config, workload=result.workload,
                items=result.units, throughput=result.throughput,
                sim_wall_s=result.sim_wall_s, cached=cached)


def _attach_telemetry(result: RunResult) -> RunResult:
    result.extras["cache_memo_hits"] = float(_MEMO.hits)
    result.extras["cache_memo_misses"] = float(_MEMO.misses)
    result.extras["cache_disk_hits"] = float(DISK_CACHE.hits)
    return result


def cached_result(
    config: ChipConfig,
    workload_factory: Callable,
    num_nodes: int = 1,
    units_attr: str = "transactions",
    check_coherence: bool = False,
    cache_key_extra: tuple = (),
    trace_capacity: int = 0,
    probe_rate: int = 0,
    sample_interval_ps: int = 0,
    trace_spans: int = 0,
    profile: int = 0,
    telemetry=None,
) -> Optional[RunResult]:
    """Memo/disk lookup for one point; None on miss (or caching off)."""
    if not cache_enabled():
        return None
    if trace_spans and not probe_rate:
        probe_rate = SPAN_PROBE_RATE
    cache_key_extra = _trace_key_extra(cache_key_extra, trace_capacity)
    cache_key_extra = _obs_key_extra(cache_key_extra, probe_rate,
                                     sample_interval_ps)
    cache_key_extra = _flightdeck_key_extra(cache_key_extra, trace_spans,
                                            profile, telemetry)
    memo_key = _memo_key(config, workload_factory, num_nodes, units_attr,
                         check_coherence, cache_key_extra)
    result = _MEMO.get(memo_key)
    if result is not None:
        return _attach_telemetry(result)
    disk_key = result_key(config, workload_factory, num_nodes, units_attr,
                          check_coherence, cache_key_extra)
    result = DISK_CACHE.get(disk_key)
    if result is not None:
        _MEMO.put(memo_key, result)
        return _attach_telemetry(result)
    return None


def store_result(
    result: RunResult,
    config: ChipConfig,
    workload_factory: Callable,
    num_nodes: int = 1,
    units_attr: str = "transactions",
    check_coherence: bool = False,
    cache_key_extra: tuple = (),
    trace_capacity: int = 0,
    probe_rate: int = 0,
    sample_interval_ps: int = 0,
    trace_spans: int = 0,
    profile: int = 0,
    telemetry=None,
) -> None:
    """Record a freshly simulated point in the memo and disk caches."""
    if not cache_enabled():
        return
    if trace_spans and not probe_rate:
        probe_rate = SPAN_PROBE_RATE
    cache_key_extra = _trace_key_extra(cache_key_extra, trace_capacity)
    cache_key_extra = _obs_key_extra(cache_key_extra, probe_rate,
                                     sample_interval_ps)
    cache_key_extra = _flightdeck_key_extra(cache_key_extra, trace_spans,
                                            profile, telemetry)
    _MEMO.put(_memo_key(config, workload_factory, num_nodes, units_attr,
                        check_coherence, cache_key_extra), result)
    DISK_CACHE.put(
        result_key(config, workload_factory, num_nodes, units_attr,
                   check_coherence, cache_key_extra), result)


def run_configured(
    config: ChipConfig,
    workload_factory: Callable[[ChipConfig, int], object],
    num_nodes: int = 1,
    units_attr: str = "transactions",
    check_coherence: bool = False,
    cache_key_extra: tuple = (),
    trace_capacity: int = 0,
    probe_rate: int = 0,
    sample_interval_ps: int = 0,
    warmup: bool = False,
    mode: str = "detailed",
    window: int = 0,
    period: int = 0,
    warming: str = "functional",
    trace_spans: int = 0,
    profile: int = 0,
    telemetry=None,
) -> RunResult:
    """Simulate one explicit configuration, with two-level caching.

    ``warmup`` is execution strategy, not measurement identity: it feeds
    :func:`simulate` but stays out of the cache keys, because the warm
    and cold paths produce byte-identical results.  The sampled-mode
    settings *are* measurement identity (the payload is an estimate), so
    they fold into the cache keys via :func:`_sampled_key_extra` — as do
    the flight-deck settings (:func:`_flightdeck_key_extra`), whose
    extras documents ride the cached result.  A cache hit for a
    telemetry-enabled point answers without streaming; the terminal
    ``run_end`` record (marked ``cached``) is still emitted so a watcher
    sees the run conclude.
    """
    cache_key_extra = _sampled_key_extra(cache_key_extra, mode, window,
                                         period, warming)
    cached = cached_result(config, workload_factory, num_nodes, units_attr,
                           check_coherence, cache_key_extra, trace_capacity,
                           probe_rate, sample_interval_ps, trace_spans,
                           profile, telemetry)
    if cached is not None:
        if telemetry is not None:
            stream = _open_telemetry(telemetry)
            try:
                _emit_run_end(stream, cached, cached=True)
            finally:
                if stream is not telemetry:
                    stream.close()
        return cached
    result = simulate(config, workload_factory, num_nodes, units_attr,
                      check_coherence, trace_capacity, probe_rate,
                      sample_interval_ps, warmup=warmup, mode=mode,
                      window=window, period=period, warming=warming,
                      trace_spans=trace_spans, profile=profile,
                      telemetry=telemetry)
    store_result(result, config, workload_factory, num_nodes, units_attr,
                 check_coherence, cache_key_extra, trace_capacity,
                 probe_rate, sample_interval_ps, trace_spans, profile,
                 telemetry)
    return _attach_telemetry(result)


def run_workload(
    config_name: str,
    workload_factory: Callable[[ChipConfig, int], object],
    num_nodes: int = 1,
    units_attr: str = "transactions",
    check_coherence: bool = False,
    cache_key_extra: tuple = (),
    trace_capacity: int = 0,
    probe_rate: int = 0,
    sample_interval_ps: int = 0,
    warmup: bool = False,
    mode: str = "detailed",
    window: int = 0,
    period: int = 0,
    warming: str = "functional",
    trace_spans: int = 0,
    profile: int = 0,
    telemetry=None,
) -> RunResult:
    """Simulate one preset configuration under one workload.

    ``workload_factory(config, num_nodes)`` builds the workload; its
    ``params.<units_attr>`` gives the measured units per CPU.
    """
    return run_configured(
        preset(config_name), workload_factory, num_nodes=num_nodes,
        units_attr=units_attr, check_coherence=check_coherence,
        cache_key_extra=cache_key_extra, trace_capacity=trace_capacity,
        probe_rate=probe_rate, sample_interval_ps=sample_interval_ps,
        warmup=warmup, mode=mode, window=window, period=period,
        warming=warming, trace_spans=trace_spans, profile=profile,
        telemetry=telemetry,
    )
