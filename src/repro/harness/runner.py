"""Experiment runner: build a system, attach a workload, measure.

All figure/table regeneration (``repro.harness.experiments``) goes through
:func:`run_workload`, which returns a :class:`RunResult` with the
normalised execution-time breakdown (Figure 5's CPU-busy / L2-hit / L2-miss
decomposition), the L1-miss service decomposition (Figure 6b), and a
throughput figure of merit.

Simulations are deterministic, so results are memoised per
(configuration, workload, nodes) within a process — pytest-benchmark can
re-invoke a bench without re-simulating.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from ..core.checker import CoherenceChecker
from ..core.config import ChipConfig, preset
from ..core.system import PiranhaSystem


def scale_factor() -> float:
    """Workload scale: set ``REPRO_SCALE=0.5`` (for example) to shrink the
    measured phases for quick runs; results get noisier but shapes hold."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


@dataclass
class RunResult:
    """Outcome of one simulated configuration."""

    config: str
    cpus: int
    nodes: int
    workload: str
    units: int                   # transactions / rows measured per CPU
    time_per_unit_ns: float      # per-CPU steady-state time per unit
    throughput: float            # units per second, whole system
    busy_frac: float
    l2_frac: float               # on-chip stall fraction (L2 hit + fwd)
    mem_frac: float
    miss_hit_frac: float         # L1 misses serviced by the L2
    miss_fwd_frac: float         # ... by another on-chip L1
    miss_mem_frac: float         # ... by local/remote memory
    sim_wall_s: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def normalized_breakdown(self) -> Tuple[float, float, float]:
        return (self.busy_frac, self.l2_frac, self.mem_frac)


_CACHE: Dict[tuple, RunResult] = {}


def run_workload(
    config_name: str,
    workload_factory: Callable[[ChipConfig, int], object],
    num_nodes: int = 1,
    units_attr: str = "transactions",
    check_coherence: bool = False,
    cache_key_extra: tuple = (),
) -> RunResult:
    """Simulate one configuration under one workload.

    ``workload_factory(config, num_nodes)`` builds the workload; its
    ``params.<units_attr>`` gives the measured units per CPU.
    """
    key = (config_name, num_nodes, units_attr, cache_key_extra)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    config = preset(config_name)
    workload = workload_factory(config, num_nodes)
    checker = CoherenceChecker() if check_coherence else None
    system = PiranhaSystem(config, num_nodes=num_nodes, checker=checker)
    system.attach_workload(workload)
    wall0 = time.time()
    system.run_to_completion()
    wall = time.time() - wall0
    if checker is not None:
        checker.verify_quiesced()

    units = getattr(workload.params, units_attr)
    per_cpu_ps = max(cpu.total_ps for cpu in system.all_cpus())
    time_per_unit_ns = per_cpu_ps / units / 1000.0
    total_cpus = config.cpus * num_nodes
    throughput = total_cpus * 1e9 / time_per_unit_ns

    summary = system.execution_summary()
    total_ps = summary["total_ps"] or 1
    mb = system.miss_breakdown()
    misses = sum(mb.values()) or 1

    result = RunResult(
        config=config_name,
        cpus=config.cpus,
        nodes=num_nodes,
        workload=getattr(workload, "name", "?"),
        units=units,
        time_per_unit_ns=time_per_unit_ns,
        throughput=throughput,
        busy_frac=summary["busy_ps"] / total_ps,
        l2_frac=summary["l2_stall_ps"] / total_ps,
        mem_frac=summary["mem_stall_ps"] / total_ps,
        miss_hit_frac=mb["l2_hit"] / misses,
        miss_fwd_frac=mb["l2_fwd"] / misses,
        miss_mem_frac=mb["l2_miss"] / misses,
        sim_wall_s=wall,
    )
    _CACHE[key] = result
    return result


def clear_cache() -> None:
    _CACHE.clear()
