"""Area / floor-plan model (Figure 9)."""

from .floorplan import (
    ARRAY_OVERHEAD,
    LOGIC_GATE_UM2,
    SRAM_CELL_UM2,
    ModuleArea,
    estimate_modules,
    floorplan_summary,
)

__all__ = [
    "ARRAY_OVERHEAD",
    "LOGIC_GATE_UM2",
    "SRAM_CELL_UM2",
    "ModuleArea",
    "estimate_modules",
    "floorplan_summary",
]
