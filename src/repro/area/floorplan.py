"""Area model and floor-plan accounting (Figure 9 and Section 5).

The paper's floor-plan dedicates roughly 75% of the Piranha processing
node's area to the Alpha cores and the L1/L2 caches, with the remainder
split among the memory controllers, intra-chip interconnect, router and
protocol engines.  The prototype targets IBM's SA-27E 0.18 um ASIC process
(high-density SRAM cells of ~4.2 um^2 and 81 ps worst-case unloaded 2-input
NAND delays).

This module reproduces the accounting: per-module area estimates derived
from SRAM bit counts plus synthesized-logic allowances, rolled up into the
Figure 9 budget.  Absolute values are estimates (the paper publishes no
table of module areas); the *shares* are the reproducible quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.config import ChipConfig

#: SA-27E high-density SRAM cell (um^2/bit), Section 5 / reference [6].
SRAM_CELL_UM2 = 4.2
#: effective area per synthesized logic gate including routing (um^2)
LOGIC_GATE_UM2 = 50.0
#: SRAM array overhead (decoders, sense amps, wordline drivers)
ARRAY_OVERHEAD = 1.35


def _sram_mm2(bits: float) -> float:
    return bits * SRAM_CELL_UM2 * ARRAY_OVERHEAD / 1e6


def _logic_mm2(gates: float) -> float:
    return gates * LOGIC_GATE_UM2 / 1e6


@dataclass(frozen=True)
class ModuleArea:
    name: str
    group: str          # "cpu", "cache", "memory", "interconnect", "engine", "misc"
    area_mm2: float
    count: int = 1

    @property
    def total_mm2(self) -> float:
        return self.area_mm2 * self.count


def estimate_modules(config: ChipConfig) -> List[ModuleArea]:
    """Per-module area estimates for one processing node."""
    l1_bits = config.l1.size_bytes * 8
    # tag + state per line: ~36 bits for a 40-bit physical address
    l1_tag_bits = (config.l1.size_bytes // 64) * 36
    l1_area = _sram_mm2(l1_bits + l1_tag_bits) + _logic_mm2(25_000)

    # single-issue in-order 8-stage core w/ FP: ~250k gates synthesized
    cpu_gates = 250_000 if config.core.model == "inorder" else 1_200_000
    cpu_area = _logic_mm2(cpu_gates)

    l2_bank_bytes = config.l2.size_bytes // config.l2.banks
    l2_bits = l2_bank_bytes * 8
    l2_tag_bits = (l2_bank_bytes // 64) * 40
    # duplicate L1 tags for the bank's share of lines (Section 2.3)
    dup_bits = (config.l1.size_bytes // 64) * 2 * config.cpus * 39 // config.l2.banks
    l2_area = _sram_mm2(l2_bits + l2_tag_bits + dup_bits) + _logic_mm2(80_000)

    mc_area = _logic_mm2(60_000) + 1.2  # engine + Rambus RAC macro

    engine_area = (
        _sram_mm2(1024 * 21)            # microcode store
        + _sram_mm2(16 * 512)            # TSRF
        + _logic_mm2(90_000)
    )

    ics_area = _logic_mm2(150_000) + 2.0     # datapaths along the spine
    router_area = _logic_mm2(200_000) + 1.5  # buffers + channel interfaces
    queue_area = _sram_mm2(64 * 640) + _logic_mm2(30_000)
    sc_area = _logic_mm2(50_000)

    return [
        ModuleArea("CPU core", "cpu", cpu_area, config.cpus),
        ModuleArea("iL1", "cache", l1_area, config.cpus),
        ModuleArea("dL1", "cache", l1_area, config.cpus),
        ModuleArea("L2 bank", "cache", l2_area, config.l2.banks),
        ModuleArea("Memory controller", "memory", mc_area, config.l2.banks),
        ModuleArea("Home engine", "engine", engine_area),
        ModuleArea("Remote engine", "engine", engine_area),
        ModuleArea("Intra-chip switch", "interconnect", ics_area),
        ModuleArea("Router", "interconnect", router_area),
        ModuleArea("Input/output queues", "interconnect", queue_area),
        ModuleArea("System control", "misc", sc_area),
    ]


def floorplan_summary(config: ChipConfig) -> Dict[str, object]:
    """Roll-up: Figure 9's headline is that ~75% of the area is CPUs +
    L1/L2 caches."""
    modules = estimate_modules(config)
    total = sum(m.total_mm2 for m in modules)
    by_group: Dict[str, float] = {}
    for m in modules:
        by_group[m.group] = by_group.get(m.group, 0.0) + m.total_mm2
    cores_and_caches = by_group.get("cpu", 0.0) + by_group.get("cache", 0.0)
    return {
        "modules": modules,
        "total_mm2": total,
        "by_group_mm2": by_group,
        "cores_and_caches_fraction": cores_and_caches / total,
    }
