"""Instruction encoding for the Alpha-like subset ISA.

Piranha's cores execute the Alpha instruction set [39]; this reproduction
implements a representative subset sufficient for kernels, lock code and
the ``wh64`` write-hint that drives the protocol's exclusive-without-data
request.  The 32-bit fixed encodings follow the Alpha format families:

* **memory** format: ``opcode(6) ra(5) rb(5) disp(16)`` — loads/stores,
  ``lda``, ``wh64``;
* **branch** format: ``opcode(6) ra(5) disp(21)``;
* **operate** format: ``opcode(6) ra(5) rb(5) sbz(3) lit(1) func(7) rc(5)``
  with an 8-bit literal replacing ``rb`` when ``lit`` is set.

Register 31 reads as zero and discards writes, exactly as on Alpha.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

NUM_REGS = 32
ZERO_REG = 31


class Format(enum.Enum):
    MEMORY = "memory"
    BRANCH = "branch"
    OPERATE = "operate"
    MISC = "misc"


class Mnemonic(enum.Enum):
    # memory
    LDA = "lda"
    LDQ = "ldq"
    STQ = "stq"
    LDQ_L = "ldq_l"    # load locked
    STQ_C = "stq_c"    # store conditional
    WH64 = "wh64"      # write hint: exclusive-without-data
    # operate
    ADDQ = "addq"
    SUBQ = "subq"
    MULQ = "mulq"
    AND = "and"
    BIS = "bis"        # or
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    CMPEQ = "cmpeq"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    # branch
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BR = "br"
    # misc
    JMP = "jmp"
    HALT = "halt"
    NOP = "nop"
    MB = "mb"      # memory barrier


OPCODES = {
    Mnemonic.LDA: 0x08,
    Mnemonic.LDQ: 0x29,
    Mnemonic.LDQ_L: 0x2B,
    Mnemonic.STQ: 0x2D,
    Mnemonic.STQ_C: 0x2F,
    Mnemonic.WH64: 0x18,   # MISC family on real Alpha; memory format here
    Mnemonic.ADDQ: 0x10,
    Mnemonic.SUBQ: 0x10,
    Mnemonic.MULQ: 0x13,
    Mnemonic.AND: 0x11,
    Mnemonic.BIS: 0x11,
    Mnemonic.XOR: 0x11,
    Mnemonic.SLL: 0x12,
    Mnemonic.SRL: 0x12,
    Mnemonic.CMPEQ: 0x10,
    Mnemonic.CMPLT: 0x10,
    Mnemonic.CMPLE: 0x10,
    Mnemonic.BEQ: 0x39,
    Mnemonic.BNE: 0x3D,
    Mnemonic.BLT: 0x3A,
    Mnemonic.BGE: 0x3E,
    Mnemonic.BR: 0x30,
    Mnemonic.JMP: 0x1A,
    Mnemonic.HALT: 0x00,
    Mnemonic.NOP: 0x1F,
    Mnemonic.MB: 0x19,
}

FUNC_CODES = {
    Mnemonic.ADDQ: 0x20,
    Mnemonic.SUBQ: 0x29,
    Mnemonic.MULQ: 0x20,
    Mnemonic.AND: 0x00,
    Mnemonic.BIS: 0x20,
    Mnemonic.XOR: 0x40,
    Mnemonic.SLL: 0x39,
    Mnemonic.SRL: 0x34,
    Mnemonic.CMPEQ: 0x2D,
    Mnemonic.CMPLT: 0x4D,
    Mnemonic.CMPLE: 0x6D,
    Mnemonic.JMP: 0x00,
    Mnemonic.HALT: 0x00,
    Mnemonic.NOP: 0x20,
    Mnemonic.MB: 0x00,
}

FORMATS = {
    Mnemonic.LDA: Format.MEMORY,
    Mnemonic.LDQ: Format.MEMORY,
    Mnemonic.LDQ_L: Format.MEMORY,
    Mnemonic.STQ: Format.MEMORY,
    Mnemonic.STQ_C: Format.MEMORY,
    Mnemonic.WH64: Format.MEMORY,
    Mnemonic.ADDQ: Format.OPERATE,
    Mnemonic.SUBQ: Format.OPERATE,
    Mnemonic.MULQ: Format.OPERATE,
    Mnemonic.AND: Format.OPERATE,
    Mnemonic.BIS: Format.OPERATE,
    Mnemonic.XOR: Format.OPERATE,
    Mnemonic.SLL: Format.OPERATE,
    Mnemonic.SRL: Format.OPERATE,
    Mnemonic.CMPEQ: Format.OPERATE,
    Mnemonic.CMPLT: Format.OPERATE,
    Mnemonic.CMPLE: Format.OPERATE,
    Mnemonic.BEQ: Format.BRANCH,
    Mnemonic.BNE: Format.BRANCH,
    Mnemonic.BLT: Format.BRANCH,
    Mnemonic.BGE: Format.BRANCH,
    Mnemonic.BR: Format.BRANCH,
    Mnemonic.JMP: Format.MISC,
    Mnemonic.HALT: Format.MISC,
    Mnemonic.NOP: Format.MISC,
    Mnemonic.MB: Format.MISC,
}

# Operate-family mnemonics share opcodes; decode needs (opcode, func).
_OPERATE_BY_KEY = {
    (OPCODES[m], FUNC_CODES[m]): m
    for m in FUNC_CODES
    if FORMATS[m] == Format.OPERATE
}
_NON_OPERATE_BY_OPCODE = {
    OPCODES[m]: m for m in Mnemonic if FORMATS[m] != Format.OPERATE
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    mnem: Mnemonic
    ra: int = ZERO_REG
    rb: int = ZERO_REG
    rc: int = ZERO_REG
    disp: int = 0
    literal: Optional[int] = None  # operate-format 8-bit literal

    def __post_init__(self) -> None:
        for reg, name in ((self.ra, "ra"), (self.rb, "rb"), (self.rc, "rc")):
            if not 0 <= reg < NUM_REGS:
                raise ValueError(f"{name}={reg} out of range")
        if self.literal is not None and not 0 <= self.literal < 256:
            raise ValueError(f"literal {self.literal} exceeds 8 bits")

    @property
    def format(self) -> Format:
        return FORMATS[self.mnem]


def _signed(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def encode(instr: Instruction) -> int:
    """Encode to the 32-bit word."""
    op = OPCODES[instr.mnem] << 26
    fmt = instr.format
    if fmt == Format.MEMORY:
        disp = instr.disp & 0xFFFF
        return op | (instr.ra << 21) | (instr.rb << 16) | disp
    if fmt == Format.BRANCH:
        disp = instr.disp & 0x1FFFFF
        return op | (instr.ra << 21) | disp
    # OPERATE and MISC use the operate layout
    func = FUNC_CODES[instr.mnem] << 5
    if instr.literal is not None:
        return (op | (instr.ra << 21) | (instr.literal << 13) | (1 << 12)
                | func | instr.rc)
    return op | (instr.ra << 21) | (instr.rb << 16) | func | instr.rc


def decode(word: int) -> Instruction:
    """Decode a 32-bit word back to an :class:`Instruction`."""
    if not 0 <= word < (1 << 32):
        raise ValueError("instruction word must be 32 bits")
    opcode = word >> 26
    ra = (word >> 21) & 31
    mnem = _NON_OPERATE_BY_OPCODE.get(opcode)
    if mnem is not None and FORMATS[mnem] == Format.MEMORY:
        return Instruction(mnem, ra=ra, rb=(word >> 16) & 31,
                           disp=_signed(word, 16))
    if mnem is not None and FORMATS[mnem] == Format.BRANCH:
        return Instruction(mnem, ra=ra, disp=_signed(word, 21))
    func = (word >> 5) & 0x7F
    key_mnem = _OPERATE_BY_KEY.get((opcode, func))
    if key_mnem is None and mnem is not None:
        key_mnem = mnem  # MISC family
    if key_mnem is None:
        raise ValueError(f"cannot decode word {word:#010x}")
    rc = word & 31
    if word & (1 << 12):
        return Instruction(key_mnem, ra=ra, literal=(word >> 13) & 0xFF, rc=rc)
    return Instruction(key_mnem, ra=ra, rb=(word >> 16) & 31, rc=rc)
