"""Alpha-like subset ISA: encoding, assembler, functional core, adapter."""

from .assembler import AssemblyError, assemble
from .cpu import (
    CpuState,
    ExecutedOp,
    FunctionalCpu,
    IsaThread,
    MemoryPort,
    SharedMemory,
    make_isa_workload,
)
from .encoding import (
    FORMATS,
    NUM_REGS,
    OPCODES,
    ZERO_REG,
    Format,
    Instruction,
    Mnemonic,
    decode,
    encode,
)
from .programs import (
    consumer,
    memcpy_wh64,
    producer,
    spinlock_increment,
    vector_sum,
)

__all__ = [
    "AssemblyError",
    "assemble",
    "CpuState",
    "ExecutedOp",
    "FunctionalCpu",
    "IsaThread",
    "MemoryPort",
    "SharedMemory",
    "make_isa_workload",
    "FORMATS",
    "NUM_REGS",
    "OPCODES",
    "ZERO_REG",
    "Format",
    "Instruction",
    "Mnemonic",
    "decode",
    "encode",
    "consumer",
    "memcpy_wh64",
    "producer",
    "spinlock_increment",
    "vector_sum",
]
