"""Functional execution of the Alpha-like subset, plus the adapter that
turns a program into a timing-simulation workload thread.

The functional core is architectural-state only (registers, PC, the
load-locked flag); memory goes through a :class:`MemoryPort`.  The
:class:`IsaThread` adapter runs a program instruction-at-a-time *as the
timing CPU consumes it*, yielding one workload item per instruction — so
functional stores and loads interleave across CPUs in simulated-time
order, and lock code (``ldq_l``/``stq_c``) behaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..core.messages import AccessKind
from ..mem.addr import line_addr
from .encoding import Instruction, Mnemonic, ZERO_REG, decode

MASK64 = (1 << 64) - 1


def _to_signed(value: int) -> int:
    value &= MASK64
    return value - (1 << 64) if value & (1 << 63) else value


class MemoryPort:
    """Abstract data-memory interface (quadword granularity)."""

    def load_q(self, addr: int) -> int:
        raise NotImplementedError

    def store_q(self, addr: int, value: int) -> None:
        raise NotImplementedError

    def wh64(self, addr: int) -> None:
        """Zero the 64-byte block (the architectural effect of wh64 is that
        the old contents may be discarded)."""
        base = line_addr(addr)
        for offset in range(0, 64, 8):
            self.store_q(base + offset, 0)


class SharedMemory(MemoryPort):
    """Simple quadword-addressed shared memory with lock-flag support."""

    def __init__(self) -> None:
        self.words: Dict[int, int] = {}
        #: per-agent lock registration: agent -> locked line address
        self.lock_flags: Dict[int, int] = {}

    def load_q(self, addr: int) -> int:
        if addr & 7:
            raise ValueError(f"unaligned quadword load at {addr:#x}")
        return self.words.get(addr, 0)

    def store_q(self, addr: int, value: int) -> None:
        if addr & 7:
            raise ValueError(f"unaligned quadword store at {addr:#x}")
        self.words[addr] = value & MASK64
        # any store to a locked line breaks other agents' lock flags
        line = line_addr(addr)
        for agent, locked in list(self.lock_flags.items()):
            if locked == line:
                del self.lock_flags[agent]

    # -- load-locked / store-conditional ---------------------------------

    def load_locked(self, agent: int, addr: int) -> int:
        value = self.load_q(addr)
        self.lock_flags[agent] = line_addr(addr)
        return value

    def store_conditional(self, agent: int, addr: int, value: int) -> bool:
        if self.lock_flags.get(agent) != line_addr(addr):
            return False
        # clear own flag first so our store doesn't self-invalidate
        del self.lock_flags[agent]
        self.store_q(addr, value)
        return True


@dataclass
class CpuState:
    """Architectural state of one functional core."""

    regs: List[int] = field(default_factory=lambda: [0] * 32)
    pc: int = 0
    halted: bool = False
    instructions_retired: int = 0
    stq_c_failures: int = 0

    def read(self, reg: int) -> int:
        return 0 if reg == ZERO_REG else self.regs[reg]

    def write(self, reg: int, value: int) -> None:
        if reg != ZERO_REG:
            self.regs[reg] = value & MASK64


@dataclass
class ExecutedOp:
    """Memory side-effect of one retired instruction (None if none)."""

    kind: Optional[AccessKind]
    addr: int = 0


class FunctionalCpu:
    """Executes decoded instructions against a MemoryPort."""

    def __init__(self, program: List[int], memory: MemoryPort,
                 agent: int = 0, code_base: int = 0) -> None:
        self.program = [decode(w) for w in program]
        self.memory = memory
        self.agent = agent
        self.code_base = code_base
        self.state = CpuState()

    def step(self) -> ExecutedOp:
        """Retire one instruction; returns its memory side-effect."""
        st = self.state
        if st.halted:
            return ExecutedOp(None)
        if not 0 <= st.pc < len(self.program):
            raise RuntimeError(f"PC {st.pc} outside program")
        instr = self.program[st.pc]
        st.pc += 1
        st.instructions_retired += 1
        return self._execute(instr)

    # -- semantics --------------------------------------------------------

    def _operand_b(self, instr: Instruction) -> int:
        if instr.literal is not None:
            return instr.literal
        return self.state.read(instr.rb)

    def _execute(self, instr: Instruction) -> ExecutedOp:
        st = self.state
        m = instr.mnem
        mem = self.memory
        if m == Mnemonic.LDA:
            st.write(instr.ra, st.read(instr.rb) + instr.disp)
            return ExecutedOp(None)
        if m == Mnemonic.LDQ:
            addr = (st.read(instr.rb) + instr.disp) & MASK64
            st.write(instr.ra, mem.load_q(addr))
            return ExecutedOp(AccessKind.LOAD, addr)
        if m == Mnemonic.LDQ_L:
            addr = (st.read(instr.rb) + instr.disp) & MASK64
            if isinstance(mem, SharedMemory):
                st.write(instr.ra, mem.load_locked(self.agent, addr))
            else:
                st.write(instr.ra, mem.load_q(addr))
            return ExecutedOp(AccessKind.LOAD_LOCKED, addr)
        if m == Mnemonic.STQ:
            addr = (st.read(instr.rb) + instr.disp) & MASK64
            mem.store_q(addr, st.read(instr.ra))
            return ExecutedOp(AccessKind.STORE, addr)
        if m == Mnemonic.STQ_C:
            addr = (st.read(instr.rb) + instr.disp) & MASK64
            if isinstance(mem, SharedMemory):
                ok = mem.store_conditional(self.agent, addr, st.read(instr.ra))
            else:
                mem.store_q(addr, st.read(instr.ra))
                ok = True
            if not ok:
                st.stq_c_failures += 1
            st.write(instr.ra, 1 if ok else 0)
            return ExecutedOp(AccessKind.STORE_COND, addr)
        if m == Mnemonic.WH64:
            addr = (st.read(instr.rb) + instr.disp) & MASK64
            mem.wh64(addr)
            return ExecutedOp(AccessKind.WH64, addr)
        if m in (Mnemonic.ADDQ, Mnemonic.SUBQ, Mnemonic.MULQ, Mnemonic.AND,
                 Mnemonic.BIS, Mnemonic.XOR, Mnemonic.SLL, Mnemonic.SRL,
                 Mnemonic.CMPEQ, Mnemonic.CMPLT, Mnemonic.CMPLE):
            a = st.read(instr.ra)
            b = self._operand_b(instr)
            if m == Mnemonic.ADDQ:
                result = a + b
            elif m == Mnemonic.SUBQ:
                result = a - b
            elif m == Mnemonic.MULQ:
                result = a * b
            elif m == Mnemonic.AND:
                result = a & b
            elif m == Mnemonic.BIS:
                result = a | b
            elif m == Mnemonic.XOR:
                result = a ^ b
            elif m == Mnemonic.SLL:
                result = a << (b & 63)
            elif m == Mnemonic.SRL:
                result = a >> (b & 63)
            elif m == Mnemonic.CMPEQ:
                result = 1 if a == b else 0
            elif m == Mnemonic.CMPLT:
                result = 1 if _to_signed(a) < _to_signed(b) else 0
            else:  # CMPLE
                result = 1 if _to_signed(a) <= _to_signed(b) else 0
            st.write(instr.rc, result)
            return ExecutedOp(None)
        if m in (Mnemonic.BEQ, Mnemonic.BNE, Mnemonic.BLT, Mnemonic.BGE,
                 Mnemonic.BR):
            a = _to_signed(st.read(instr.ra))
            taken = (
                m == Mnemonic.BR
                or (m == Mnemonic.BEQ and a == 0)
                or (m == Mnemonic.BNE and a != 0)
                or (m == Mnemonic.BLT and a < 0)
                or (m == Mnemonic.BGE and a >= 0)
            )
            if taken:
                st.pc += instr.disp
            return ExecutedOp(None)
        if m == Mnemonic.JMP:
            st.pc = st.read(instr.rb)
            return ExecutedOp(None)
        if m == Mnemonic.HALT:
            st.halted = True
            return ExecutedOp(None)
        if m == Mnemonic.NOP:
            return ExecutedOp(None)
        if m == Mnemonic.MB:
            return ExecutedOp(AccessKind.MEMBAR)
        raise RuntimeError(f"unimplemented mnemonic {m}")  # pragma: no cover

    def run(self, max_instructions: int = 1_000_000) -> CpuState:
        """Functional-only run to HALT (no timing)."""
        for _ in range(max_instructions):
            if self.state.halted:
                return self.state
            self.step()
        raise RuntimeError("program did not halt within the instruction cap")


class IsaThread:
    """Workload-thread adapter: one timing item per retired instruction.

    The functional step happens lazily as the timing CPU consumes items,
    so shared-memory interleavings follow simulated time (within the hit-
    folding batch window).  Instruction fetches touch the program's code
    lines (4-byte instructions, 16 per line) so the timing iL1 sees a real
    instruction stream.
    """

    ilp = 1.3

    def __init__(self, cpu: FunctionalCpu,
                 max_instructions: int = 200_000) -> None:
        self.cpu = cpu
        self.max_instructions = max_instructions
        self.name = f"isa-agent{cpu.agent}"
        self._iter: Optional[Iterator] = None

    def __iter__(self) -> "IsaThread":
        return self

    def _gen(self) -> Iterator:
        count = 0
        while not self.cpu.state.halted:
            count += 1
            if count > self.max_instructions:
                raise RuntimeError("ISA thread exceeded instruction cap")
            fetch_line = self.cpu.code_base + (self.cpu.state.pc // 16) * 64
            op = self.cpu.step()
            if op.kind is not None and op.addr >= (1 << 48):
                raise RuntimeError(
                    f"negative/sign-extended address {op.addr:#x} — build "
                    f"pointers that fit lda's signed 16-bit displacement"
                )
            if op.kind is None:
                yield (1, AccessKind.IFETCH, fetch_line, True)
            else:
                yield (1, AccessKind.IFETCH, fetch_line, True)
                yield (0, op.kind, op.addr, True)


    def __next__(self):
        # a true iterator: the underlying generator is created lazily on
        # the first next() so construction stays side-effect-free, and
        # __iter__ can return self (one instruction stream per thread)
        if self._iter is None:
            self._iter = self._gen()
        return next(self._iter)


def make_isa_workload(programs, memory: Optional[SharedMemory] = None,
                      data_base: int = 0, code_base: int = 0x7000_0000):
    """Build a workload object running one assembled program per CPU.

    ``programs`` maps ``(node, cpu)`` to a list of instruction words.
    Returns ``(workload, cpus)`` where ``cpus`` maps the same keys to the
    :class:`FunctionalCpu` instances (for post-run state inspection).
    """
    memory = memory or SharedMemory()
    cpus: Dict[tuple, FunctionalCpu] = {}

    class _IsaWorkload:
        name = "isa"
        ilp = 1.3

        def thread_for(self, node: int, cpu: int):
            key = (node, cpu)
            if key not in programs:
                return None
            agent = node * 1024 + cpu
            fcpu = FunctionalCpu(programs[key], memory, agent=agent,
                                 code_base=code_base + agent * 0x10000)
            cpus[key] = fcpu
            thread = IsaThread(fcpu)
            gen = iter(thread)
            from ..workloads.base import WorkloadThread

            return WorkloadThread(gen, ilp=self.ilp, name=thread.name)

    return _IsaWorkload(), cpus, memory
