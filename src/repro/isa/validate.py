"""Cross-model validation: functional reference vs timed machine.

Every kernel in :mod:`repro.isa.kernels` runs through both execution
models and the results are compared three ways:

1. **Architectural ground truth** — the final memory image of the timed
   run must be *bit-identical* to the functional reference (which itself
   must be identical across several seeded interleavings: the kernels
   are determinate, so any divergence is a model bug, not noise).
2. **Exact structural counters** — event counts that follow from the
   program text alone (``mb`` retirements, ``wh64`` issues, zero
   ``stq_c`` failures for lock-free kernels) must match exactly.
3. **Statistical-model tolerances** — measured miss rates, the
   sharing/forwarding mix and the stall decomposition must land inside
   per-kernel declared ranges (:data:`TOLERANCES`), the same style of
   prediction the statistical workload models in :mod:`repro.workloads`
   encode.  The ranges are deliberately generous — they gate on the
   *shape* of the behaviour (communication kernels must communicate,
   private kernels must not), not on exact latencies.

:func:`run_suite` emits a ``repro-xval/1`` JSON document;
:func:`validate_report` structurally checks one (the CI artifact gate).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from .kernels import (
    KERNEL_NAMES,
    KERNELS,
    IsaKernelFactory,
    IsaKernelParams,
    expected_membars,
    expected_wh64,
    run_functional,
    scaled_params,
)

XVAL_SCHEMA = "repro-xval/1"

#: declared tolerance ranges per kernel (see DESIGN.md section 4j).
#: ``l1_miss_rate`` bounds misses/lookups; ``fwd_frac`` bounds the
#: L1-to-L1 share of the miss-service mix (result.miss_fwd_frac);
#: ``mem_stall_frac`` bounds memory's share of total stall time;
#: ``comm_per_unit`` bounds communication misses (L1 forwards + remote
#: dirty) per communication unit (lock handoff / barrier arrival /
#: message / increment).  Communication checks apply only when more
#: than one CPU runs (a single CPU cannot share).
TOLERANCES: Dict[str, Dict[str, Tuple[float, float]]] = {
    "spinlock": {
        "l1_miss_rate": (1e-5, 0.5),
        "fwd_frac": (0.02, 1.0),
        "mem_stall_frac": (0.0, 0.9),
        "comm_per_unit": (0.2, 60.0),
    },
    "barrier": {
        "l1_miss_rate": (1e-5, 0.5),
        "fwd_frac": (0.02, 1.0),
        "mem_stall_frac": (0.0, 0.9),
        "comm_per_unit": (0.3, 60.0),
    },
    "ring": {
        "l1_miss_rate": (1e-5, 0.5),
        "fwd_frac": (0.02, 1.0),
        "mem_stall_frac": (0.0, 0.9),
        "comm_per_unit": (0.3, 30.0),
    },
    "memcpy": {
        "l1_miss_rate": (1e-4, 0.3),
        "fwd_frac": (0.0, 0.0),         # fully private: no forwarding
        "mem_stall_frac": (0.1, 1.0),   # cold fills dominate
        "comm_per_unit": (0.0, 0.0),
    },
    "false_sharing": {
        "l1_miss_rate": (1e-4, 0.7),
        "fwd_frac": (0.02, 1.0),
        "mem_stall_frac": (0.0, 0.9),
        "comm_per_unit": (0.02, 10.0),
    },
}


def comm_units(kernel: str, nthreads: int, params: IsaKernelParams) -> int:
    """The kernel's natural communication-event count (the denominator
    of the ``comm_per_unit`` prediction)."""
    m = params.iterations
    if kernel in ("spinlock", "barrier", "false_sharing"):
        return nthreads * m
    if kernel == "ring":
        return max(1, (nthreads // 2) * m)
    return max(1, nthreads * m)     # memcpy: lines copied


def fit_params(kernel: str, nthreads: int,
               params: IsaKernelParams) -> IsaKernelParams:
    """Clamp parameters to the shared data layout for a thread count
    (memcpy's per-CPU blocks must all fit the source/dest regions)."""
    if kernel == "memcpy":
        cap = max(1, 64 // max(1, nthreads))
        if params.iterations > cap:
            params = dataclasses.replace(params, iterations=cap)
    return dataclasses.replace(params, kernel=kernel)


@dataclasses.dataclass
class Check:
    """One cross-model comparison: exact or range."""

    name: str
    kind: str                      # "exact" | "range"
    measured: float
    expected: Optional[float] = None   # exact checks
    lo: Optional[float] = None         # range checks
    hi: Optional[float] = None

    @property
    def ok(self) -> bool:
        if self.kind == "exact":
            return self.measured == self.expected
        return self.lo <= self.measured <= self.hi

    def as_dict(self) -> dict:
        doc = {"name": self.name, "kind": self.kind,
               "measured": self.measured, "ok": self.ok}
        if self.kind == "exact":
            doc["expected"] = self.expected
        else:
            doc["lo"] = self.lo
            doc["hi"] = self.hi
        return doc


def kernel_checks(kernel: str, nthreads: int, nodes: int,
                  params: IsaKernelParams, result, isa: dict) -> List[Check]:
    """Build the check list for one timed run (see module docstring)."""
    tol = TOLERANCES[kernel]
    counters = isa["counters"]
    checks = [
        Check("membars", "exact", isa["membars"],
              expected=expected_membars(kernel, nthreads, params)),
        Check("wh64_issued", "exact", isa["wh64_issued"],
              expected=expected_wh64(kernel, nthreads, params)),
        Check("halted_cpus", "exact",
              sum(1 for c in isa["cpus"].values() if c["halted"]),
              expected=nthreads),
    ]
    if not KERNELS[kernel].uses_llsc:
        failures = sum(c["stq_c_failures"] for c in isa["cpus"].values())
        checks.append(Check("stq_c_failures", "exact", failures,
                            expected=0))

    lookups = max(1, counters["l1_lookups"])
    misses = counters["l1_lookups"] - counters["l1_hits"]
    lo, hi = tol["l1_miss_rate"]
    checks.append(Check("l1_miss_rate", "range", misses / lookups,
                        lo=lo, hi=hi))

    stall = isa["stall_ps"]
    total_stall = max(1, sum(stall.values()))
    mem_stall = (stall["local_mem"] + stall["remote_mem"]
                 + stall["remote_dirty"])
    lo, hi = tol["mem_stall_frac"]
    checks.append(Check("mem_stall_frac", "range", mem_stall / total_stall,
                        lo=lo, hi=hi))

    comm = counters["l2_fwds"] + counters["l2_remote_dirty"]
    if nthreads > 1:
        lo, hi = tol["fwd_frac"]
        checks.append(Check("fwd_frac", "range", result.miss_fwd_frac,
                            lo=lo, hi=hi))
        lo, hi = tol["comm_per_unit"]
        units = comm_units(kernel, nthreads, params)
        checks.append(Check("comm_per_unit", "range", comm / units,
                            lo=lo, hi=hi))
        if kernel in ("spinlock", "barrier", "false_sharing"):
            # write sharing must force ownership changes somewhere
            checks.append(Check("upgrades_present", "range",
                                counters["l1_upgrades"]
                                + counters["l2_upgrades"],
                                lo=1, hi=float("inf")))
    else:
        checks.append(Check("comm_misses_single_cpu", "exact", comm,
                            expected=0))
    if kernel == "memcpy":
        # the negative control: a private kernel must never forward
        checks.append(Check("l2_fwds", "exact", counters["l2_fwds"],
                            expected=0))
    if nodes == 1:
        remote = (counters["l2_remote_mem"] + counters["l2_remote_dirty"])
        checks.append(Check("remote_misses_single_node", "exact", remote,
                            expected=0))
    return checks


def cross_validate(kernel: str, config: str = "P8", nodes: int = 1,
                   params: Optional[IsaKernelParams] = None,
                   seeds: Sequence[int] = (0, 1, 2),
                   probe_rate: int = 64, **run_kw) -> dict:
    """Run one kernel through both models; return its report block."""
    from ..core.config import preset
    from ..harness.runner import run_workload

    nthreads = preset(config).cpus * nodes
    params = fit_params(kernel, nthreads,
                        params or IsaKernelParams(kernel=kernel))

    runs = [run_functional(kernel, nthreads, params, seed=seed)
            for seed in seeds]
    reference = runs[0]
    images_identical = all(run.image == reference.image for run in runs)

    timed = run_workload(config, IsaKernelFactory(params), num_nodes=nodes,
                         units_attr="iterations", probe_rate=probe_rate,
                         **run_kw)
    isa = timed.extras["isa"]
    memory_match = (images_identical
                    and isa["mem_digest"] == reference.digest)

    checks = kernel_checks(kernel, nthreads, nodes, params, timed, isa)
    ok = memory_match and all(check.ok for check in checks)

    probes = {}
    metrics = timed.extras.get("metrics")
    if metrics and metrics.get("probes"):
        probes = {cls: blk["count"]
                  for cls, blk in metrics["probes"]["classes"].items()
                  if blk["count"]}

    return {
        "kernel": kernel,
        "config": config,
        "nodes": nodes,
        "nthreads": nthreads,
        "params": dataclasses.asdict(params),
        "functional": {
            "seeds": list(seeds),
            "mem_digest": reference.digest,
            "images_identical": images_identical,
            "retired": reference.retired,
            "stq_c_failures": reference.stq_c_failures,
            "interleaved_steps": [run.steps for run in runs],
        },
        "timed": {
            "mem_digest": isa["mem_digest"],
            "units": timed.units,
            "time_per_unit_ns": timed.time_per_unit_ns,
            "busy_frac": timed.busy_frac,
            "miss_hit_frac": timed.miss_hit_frac,
            "miss_fwd_frac": timed.miss_fwd_frac,
            "miss_mem_frac": timed.miss_mem_frac,
            "counters": isa["counters"],
            "membars": isa["membars"],
            "wh64_issued": isa["wh64_issued"],
            "stall_ps": isa["stall_ps"],
            "stq_c_failures": {tid: c["stq_c_failures"]
                               for tid, c in isa["cpus"].items()},
            "probes": probes,
        },
        "memory_match": memory_match,
        "checks": [check.as_dict() for check in checks],
        "ok": ok,
    }


def run_suite(kernels: Sequence[str] = KERNEL_NAMES, config: str = "P8",
              nodes: int = 1, scale: float = 1.0,
              seeds: Sequence[int] = (0, 1, 2),
              probe_rate: int = 64, **run_kw) -> dict:
    """Cross-validate a set of kernels; return the ``repro-xval/1`` doc."""
    reports = {}
    for kernel in kernels:
        reports[kernel] = cross_validate(
            kernel, config=config, nodes=nodes,
            params=scaled_params(kernel, scale), seeds=seeds,
            probe_rate=probe_rate, **run_kw)
    checks = sum(len(r["checks"]) for r in reports.values())
    failed = sum(1 for r in reports.values()
                 for c in r["checks"] if not c["ok"])
    return {
        "schema": XVAL_SCHEMA,
        "config": config,
        "nodes": nodes,
        "scale": scale,
        "kernels": reports,
        "summary": {
            "kernels": len(reports),
            "passed": sum(1 for r in reports.values() if r["ok"]),
            "checks": checks,
            "checks_failed": failed,
        },
        "ok": all(r["ok"] for r in reports.values()),
    }


_REPORT_KEYS = ("kernel", "config", "nodes", "nthreads", "params",
                "functional", "timed", "memory_match", "checks", "ok")


def validate_report(doc: dict) -> List[str]:
    """Structural validation of a ``repro-xval/1`` document; returns a
    list of problems (empty = valid).  Used by the CI artifact gate."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["report is not an object"]
    if doc.get("schema") != XVAL_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, "
                        f"expected {XVAL_SCHEMA!r}")
    kernels = doc.get("kernels")
    if not isinstance(kernels, dict) or not kernels:
        problems.append("no kernel reports")
        return problems
    for name, report in kernels.items():
        for key in _REPORT_KEYS:
            if key not in report:
                problems.append(f"{name}: missing key {key!r}")
        checks = report.get("checks", [])
        if not isinstance(checks, list) or not checks:
            problems.append(f"{name}: no checks")
            continue
        for check in checks:
            if not {"name", "kind", "measured", "ok"} <= set(check):
                problems.append(f"{name}: malformed check {check!r}")
                break
            if check["kind"] == "exact" and "expected" not in check:
                problems.append(
                    f"{name}: exact check {check['name']!r} "
                    f"without expected value")
            if check["kind"] == "range" and not {"lo", "hi"} <= set(check):
                problems.append(
                    f"{name}: range check {check['name']!r} "
                    f"without bounds")
        checks_ok = all(c["ok"] for c in checks)
        expect_ok = bool(report.get("memory_match")) and checks_ok
        if bool(report.get("ok")) != expect_ok:
            problems.append(f"{name}: ok flag inconsistent with checks")
        funcdoc = report.get("functional", {})
        timeddoc = report.get("timed", {})
        if report.get("memory_match"):
            if funcdoc.get("mem_digest") != timeddoc.get("mem_digest"):
                problems.append(
                    f"{name}: memory_match set but digests differ")
    if bool(doc.get("ok")) != all(bool(r.get("ok"))
                                  for r in kernels.values()):
        problems.append("top-level ok flag inconsistent with kernels")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        problems.append("missing summary block")
    return problems
