"""Sample assembly programs for examples and tests."""

from __future__ import annotations

from .assembler import assemble


def vector_sum(base: int, count: int) -> list:
    """Sum ``count`` quadwords starting at ``base`` into r1; halt."""
    return assemble(f"""
        lda   r2, {base}(r31)       ; pointer
        lda   r3, {count}(r31)      ; counter
        bis   r31, r31, r1          ; sum = 0
    loop:
        ldq   r4, 0(r2)
        addq  r1, r4, r1
        lda   r2, 8(r2)
        subq  r3, #1, r3
        bne   r3, loop
        halt
    """)


def memcpy_wh64(src: int, dst: int, lines: int) -> list:
    """Copy ``lines`` cache lines using the wh64 write hint on the
    destination (the classic copy-routine use of exclusive-without-data)."""
    return assemble(f"""
        lda   r1, {src}(r31)
        lda   r2, {dst}(r31)
        lda   r3, {lines}(r31)
    line:
        wh64  0(r2)                 ; take the whole line without fetching it
        lda   r4, 8(r31)            ; 8 quadwords per line
    qw:
        ldq   r5, 0(r1)
        stq   r5, 0(r2)
        lda   r1, 8(r1)
        lda   r2, 8(r2)
        subq  r4, #1, r4
        bne   r4, qw
        subq  r3, #1, r3
        bne   r3, line
        halt
    """)


def spinlock_increment(lock: int, counter: int, times: int) -> list:
    """Acquire a ldq_l/stq_c spinlock, bump a shared counter, release;
    repeat ``times`` times."""
    return assemble(f"""
        lda   r10, {lock}(r31)
        lda   r11, {counter}(r31)
        lda   r12, {times}(r31)
    again:
    acquire:
        ldq_l r1, 0(r10)
        bne   r1, acquire           ; lock held: spin
        lda   r1, 1(r31)
        stq_c r1, 0(r10)
        beq   r1, acquire           ; stq_c failed: retry
        ldq   r2, 0(r11)            ; critical section
        addq  r2, #1, r2
        stq   r2, 0(r11)
        stq   r31, 0(r10)           ; release
        subq  r12, #1, r12
        bne   r12, again
        halt
    """)


def producer(buffer: int, flagaddr: int, value: int) -> list:
    """Write a value then raise the flag (message-passing producer)."""
    return assemble(f"""
        lda   r1, {buffer}(r31)
        lda   r2, {value}(r31)
        stq   r2, 0(r1)
        lda   r3, {flagaddr}(r31)
        lda   r4, 1(r31)
        stq   r4, 0(r3)
        halt
    """)


def consumer(buffer: int, flagaddr: int) -> list:
    """Spin on the flag, then read the value into r5."""
    return assemble(f"""
        lda   r3, {flagaddr}(r31)
    wait:
        ldq   r4, 0(r3)
        beq   r4, wait
        lda   r1, {buffer}(r31)
        ldq   r5, 0(r1)
        halt
    """)
