"""Two-pass assembler for the Alpha-like subset.

Syntax (one instruction per line, ``;`` comments)::

    loop:   ldq   r1, 0(r2)       ; load
            addq  r1, #1, r1      ; operate with 8-bit literal
            stq   r1, 0(r2)
            lda   r2, 64(r2)      ; address arithmetic
            subq  r3, #1, r3
            bne   r3, loop        ; branch to label
            halt

Branch displacements are in instructions relative to the *following*
instruction, as on Alpha; the assembler resolves labels.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .encoding import FORMATS, Format, Instruction, Mnemonic, ZERO_REG, encode

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_REG_RE = re.compile(r"^r([0-9]|[12][0-9]|3[01])$")
_MEM_RE = re.compile(r"^(-?\w+)\((r\d+)\)$")


class AssemblyError(ValueError):
    """Bad assembly input."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _parse_reg(token: str, lineno: int) -> int:
    m = _REG_RE.match(token)
    if not m:
        raise AssemblyError(lineno, f"expected register, got {token!r}")
    return int(m.group(1))


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(lineno, f"expected integer, got {token!r}") from None


def _check_disp(disp: int, bits: int, what: str, lineno: int) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= disp <= hi:
        raise AssemblyError(
            lineno, f"{what} displacement {disp} outside [{lo}, {hi}]")
    return disp


def _instr(lineno: int, *args, **kwargs) -> Instruction:
    """Instruction constructor that reports operand-range errors (bad
    register index, oversized literal) against the source line."""
    try:
        return Instruction(*args, **kwargs)
    except ValueError as exc:
        raise AssemblyError(lineno, str(exc)) from None


def assemble(source: str) -> List[int]:
    """Assemble *source* into a list of 32-bit instruction words."""
    lines = source.splitlines()
    stripped: List[Tuple[int, str]] = []
    labels: Dict[str, int] = {}

    # pass 1: strip comments, collect labels, count instructions
    pc = 0
    for lineno, raw in enumerate(lines, start=1):
        text = raw.split(";", 1)[0].strip()
        if not text:
            continue
        while ":" in text:
            label, _, rest = text.partition(":")
            label = label.strip()
            if not _LABEL_RE.match(label):
                raise AssemblyError(lineno, f"bad label {label!r}")
            if label in labels:
                raise AssemblyError(lineno, f"duplicate label {label!r}")
            labels[label] = pc
            text = rest.strip()
        if text:
            stripped.append((lineno, text))
            pc += 1

    # pass 2: encode
    words: List[int] = []
    for pc, (lineno, text) in enumerate(stripped):
        parts = text.replace(",", " ").split()
        mnem_token, args = parts[0].lower(), parts[1:]
        try:
            mnem = Mnemonic(mnem_token)
        except ValueError:
            raise AssemblyError(lineno, f"unknown mnemonic {mnem_token!r}") from None
        fmt = FORMATS[mnem]

        if fmt == Format.MEMORY:
            if mnem == Mnemonic.WH64 and len(args) == 1 and _MEM_RE.match(args[0]):
                m = _MEM_RE.match(args[0])
                instr = _instr(lineno, mnem, ra=ZERO_REG,
                               rb=_parse_reg(m.group(2), lineno),
                               disp=_check_disp(
                                   _parse_int(m.group(1), lineno),
                                   16, "memory", lineno))
            else:
                if len(args) != 2:
                    raise AssemblyError(lineno, f"{mnem_token} needs 'ra, disp(rb)'")
                ra = _parse_reg(args[0], lineno)
                m = _MEM_RE.match(args[1])
                if not m:
                    raise AssemblyError(lineno, f"bad address operand {args[1]!r}")
                instr = _instr(lineno, mnem, ra=ra,
                               rb=_parse_reg(m.group(2), lineno),
                               disp=_check_disp(
                                   _parse_int(m.group(1), lineno),
                                   16, "memory", lineno))
        elif fmt == Format.BRANCH:
            if mnem == Mnemonic.BR:
                if len(args) != 1:
                    raise AssemblyError(lineno, "br needs a target")
                ra, target = ZERO_REG, args[0]
            else:
                if len(args) != 2:
                    raise AssemblyError(lineno, f"{mnem_token} needs 'ra, target'")
                ra, target = _parse_reg(args[0], lineno), args[1]
            if target in labels:
                disp = labels[target] - (pc + 1)
            else:
                disp = _parse_int(target, lineno)
            instr = _instr(lineno, mnem, ra=ra,
                           disp=_check_disp(disp, 21, "branch", lineno))
        elif fmt == Format.OPERATE:
            if len(args) != 3:
                raise AssemblyError(lineno, f"{mnem_token} needs 'ra, rb|#lit, rc'")
            ra = _parse_reg(args[0], lineno)
            rc = _parse_reg(args[2], lineno)
            if args[1].startswith("#"):
                instr = _instr(lineno, mnem, ra=ra, rc=rc,
                               literal=_parse_int(args[1][1:], lineno))
            else:
                instr = _instr(lineno, mnem, ra=ra,
                               rb=_parse_reg(args[1], lineno), rc=rc)
        else:  # MISC
            if mnem == Mnemonic.JMP:
                if len(args) != 1:
                    raise AssemblyError(lineno, "jmp needs '(rb)' or rb")
                token = args[0].strip("()")
                instr = _instr(lineno, mnem,
                               rb=_parse_reg(token, lineno))
            elif len(args) != 0:
                raise AssemblyError(lineno, f"{mnem_token} takes no operands")
            else:
                instr = _instr(lineno, mnem)
        words.append(encode(instr))
    return words
